(** Verilog export and ATPG test compaction. *)

open Util
module N = Orap_netlist.Netlist
module Verilog = Orap_netlist.Verilog
module Atpg = Orap_atpg.Atpg
module Fault = Orap_faultsim.Fault
module Fsim = Orap_faultsim.Fsim

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_verilog_structure () =
  let nl = random_netlist ~inputs:6 ~outputs:4 ~gates:30 7 in
  let v = Verilog.of_netlist ~module_name:"dut" nl in
  check Alcotest.bool "module header" true (contains v "module dut(");
  check Alcotest.bool "endmodule" true (contains v "endmodule");
  check Alcotest.bool "inputs declared" true (contains v "input pi0;");
  check Alcotest.bool "outputs assigned" true (contains v "assign po0 = ");
  (* one primitive instance per logic gate (excluding Mux/consts) *)
  let gates = ref 0 in
  for i = 0 to N.num_nodes nl - 1 do
    match N.kind nl i with
    | Orap_netlist.Gate.Input | Orap_netlist.Gate.Const0
    | Orap_netlist.Gate.Const1 | Orap_netlist.Gate.Mux ->
      ()
    | _ -> incr gates
  done;
  let count_instances =
    List.length
      (List.filter
         (fun line -> contains line "g" && contains line "(")
         (String.split_on_char '\n' v))
  in
  check Alcotest.bool "instances emitted" true (count_instances >= !gates)

let test_verilog_deterministic () =
  let nl = random_netlist ~inputs:6 ~outputs:4 ~gates:30 7 in
  check Alcotest.bool "stable output" true
    (Verilog.of_netlist nl = Verilog.of_netlist nl)

let test_compaction_preserves_coverage () =
  let nl = random_netlist ~inputs:14 ~outputs:10 ~gates:160 9 in
  (* force deterministic phase to generate many patterns *)
  let r = Atpg.run ~random_words:1 ~backtrack_limit:128 nl in
  let original = r.Atpg.patterns in
  let compacted = Atpg.compact_patterns nl original in
  check Alcotest.bool "not longer" true
    (List.length compacted <= List.length original);
  (* coverage of the compacted set equals the original set's *)
  let covered patterns =
    let faults = Fault.collapsed_list nl in
    let remaining = Array.make (Array.length faults) true in
    let fsim = Fsim.create nl in
    List.iter
      (fun p -> ignore (Fsim.simulate_pattern fsim p faults remaining))
      patterns;
    Array.fold_left (fun acc r -> if r then acc else acc + 1) 0 remaining
  in
  check Alcotest.int "same deterministic coverage" (covered original)
    (covered compacted)

let suite =
  ( "tools",
    [
      tc "verilog structure" `Quick test_verilog_structure;
      tc "verilog deterministic" `Quick test_verilog_deterministic;
      tc "compaction preserves coverage" `Quick test_compaction_preserves_coverage;
    ] )
