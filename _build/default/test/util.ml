(** Shared helpers for the test suites. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Sim = Orap_sim.Sim
module Prng = Orap_sim.Prng

let check = Alcotest.check
let tc = Alcotest.test_case

(** A deterministic random netlist for property tests. *)
let random_netlist ?(inputs = 8) ?(outputs = 5) ?(gates = 60) seed =
  Orap_benchgen.Benchgen.generate
    { Orap_benchgen.Benchgen.seed; num_inputs = inputs; num_outputs = outputs;
      num_gates = gates }

(** Do two netlists with the same input count agree on [n] random patterns? *)
let equivalent_on_random ?(seed = 424) ?(n = 128) a b =
  if N.num_inputs a <> N.num_inputs b then false
  else begin
    let rng = Prng.create seed in
    let ok = ref true in
    for _ = 1 to n do
      let inp = Prng.bool_array rng (N.num_inputs a) in
      if Sim.eval_bools a inp <> Sim.eval_bools b inp then ok := false
    done;
    !ok
  end

(** QCheck generator for small seeds. *)
let seed_gen = QCheck.(int_range 0 10_000)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
