open Util
module Pulse_gen = Orap_dft.Pulse_gen
module Scan = Orap_dft.Scan

let test_pulse_rising_edge_only () =
  let g = Pulse_gen.create () in
  check Alcotest.bool "initial low" false (Pulse_gen.observe g ~scan_enable:false);
  check Alcotest.bool "rising fires" true (Pulse_gen.observe g ~scan_enable:true);
  check Alcotest.bool "hold silent" false (Pulse_gen.observe g ~scan_enable:true);
  check Alcotest.bool "falling silent" false (Pulse_gen.observe g ~scan_enable:false);
  check Alcotest.bool "second rising fires" true (Pulse_gen.observe g ~scan_enable:true)

let test_pulse_width_and_cost () =
  let g = Pulse_gen.create ~inverter_chain:5 () in
  check Alcotest.int "width" 5 (Pulse_gen.pulse_width g);
  check Alcotest.int "gate cost" 1 Pulse_gen.gate_cost;
  Alcotest.check_raises "even chain rejected"
    (Invalid_argument "Pulse_gen.create: odd chain length required") (fun () ->
      ignore (Pulse_gen.create ~inverter_chain:4 ()))

let count_cells chain =
  Array.fold_left
    (fun (k, s) c -> match c with Scan.Key _ -> (k + 1, s) | Scan.State _ -> (k, s + 1))
    (0, 0) (Scan.order chain)

let test_chain_styles_complete () =
  List.iter
    (fun style ->
      let c = Scan.build ~style ~num_key:10 ~num_state:25 () in
      check Alcotest.int "length" 35 (Scan.length c);
      let k, s = count_cells c in
      check Alcotest.int "keys" 10 k;
      check Alcotest.int "states" 25 s)
    [ Scan.Key_first; Scan.Interleaved; Scan.Key_last ]

let test_key_first_ordering () =
  let c = Scan.build ~style:Scan.Key_first ~num_key:3 ~num_state:3 () in
  check Alcotest.(list int) "keys lead" [ 0; 1; 2 ] (Scan.key_positions c)

let test_interleaving_spreads () =
  let c = Scan.build ~style:Scan.Interleaved ~num_key:4 ~num_state:12 () in
  let positions = Scan.key_positions c in
  check Alcotest.int "all keys present" 4 (List.length positions);
  (* interleaved keys must not be contiguous *)
  let contiguous =
    match positions with
    | a :: rest ->
      let rec all_adjacent prev = function
        | [] -> true
        | x :: tl -> x = prev + 1 && all_adjacent x tl
      in
      all_adjacent a rest
    | [] -> false
  in
  check Alcotest.bool "not contiguous" false contiguous

let test_bypass_mux_count_guideline () =
  (* interleaving maximises scenario-(b) MUX count versus grouping *)
  let inter = Scan.build ~style:Scan.Interleaved ~num_key:8 ~num_state:24 () in
  let grouped = Scan.build ~style:Scan.Key_first ~num_key:8 ~num_state:24 () in
  check Alcotest.bool "interleaved costs more"
    true
    (Scan.bypass_mux_count inter > Scan.bypass_mux_count grouped);
  check Alcotest.int "grouped needs one mux" 1 (Scan.bypass_mux_count grouped);
  check Alcotest.int "fully interleaved needs one per key" 8
    (Scan.bypass_mux_count inter)

let test_shift_moves_data () =
  let c = Scan.build ~style:Scan.Key_first ~num_key:2 ~num_state:2 () in
  let key = Array.make 2 false and state = Array.make 2 false in
  let read = function Scan.Key i -> key.(i) | Scan.State j -> state.(j) in
  let write cell v =
    match cell with Scan.Key i -> key.(i) <- v | Scan.State j -> state.(j) <- v
  in
  (* shift in 1,0,0,0: after 4 shifts the 1 sits in the last cell *)
  let out1 = Scan.shift c ~read ~write ~scan_in:true in
  check Alcotest.bool "first out is old last" false out1;
  ignore (Scan.shift c ~read ~write ~scan_in:false);
  ignore (Scan.shift c ~read ~write ~scan_in:false);
  ignore (Scan.shift c ~read ~write ~scan_in:false);
  check Alcotest.bool "bit reached last state cell" true state.(1);
  let out = Scan.shift c ~read ~write ~scan_in:false in
  check Alcotest.bool "and leaves on the next shift" true out

let suite =
  ( "dft",
    [
      tc "pulse generator edge detection" `Quick test_pulse_rising_edge_only;
      tc "pulse width and cost" `Quick test_pulse_width_and_cost;
      tc "chain styles cover all cells" `Quick test_chain_styles_complete;
      tc "key-first ordering" `Quick test_key_first_ordering;
      tc "interleaving spreads keys" `Quick test_interleaving_spreads;
      tc "bypass MUX guideline" `Quick test_bypass_mux_count_guideline;
      tc "shift semantics" `Quick test_shift_moves_data;
    ] )
