open Util
module Lfsr = Orap_lfsr.Lfsr
module Keyseq = Orap_lfsr.Keyseq
module Symbolic = Orap_lfsr.Symbolic
module Bitset = Orap_lfsr.Bitset
module Prng = Orap_sim.Prng

(* --- bitset --- *)

let test_bitset_basics () =
  let s = Bitset.singleton 100 63 in
  check Alcotest.bool "mem 63" true (Bitset.mem s 63);
  check Alcotest.bool "not mem 64" false (Bitset.mem s 64);
  check Alcotest.int "popcount" 1 (Bitset.popcount s);
  Bitset.set s 64;
  check Alcotest.int "popcount 2" 2 (Bitset.popcount s);
  check Alcotest.(list int) "to_list" [ 63; 64 ] (Bitset.to_list s);
  let x = Bitset.xor s (Bitset.singleton 100 63) in
  check Alcotest.(list int) "xor cancels" [ 64 ] (Bitset.to_list x);
  check Alcotest.bool "empty" true (Bitset.is_empty (Bitset.create 10))

let prop_bitset_xor_involution =
  qtest "bitset xor is an involution" QCheck.(pair seed_gen (int_range 1 200))
    (fun (seed, width) ->
      let rng = Prng.create seed in
      let a = Bitset.create width and b = Bitset.create width in
      for _ = 1 to 20 do
        Bitset.set a (Prng.int rng width);
        Bitset.set b (Prng.int rng width)
      done;
      Bitset.equal a (Bitset.xor (Bitset.xor a b) b))

let test_bitset_eval () =
  let e = Bitset.xor (Bitset.singleton 4 0) (Bitset.singleton 4 2) in
  check Alcotest.bool "x0^x2 on 1010" true
    (Bitset.eval e [| true; false; true; false |] = false);
  check Alcotest.bool "x0^x2 on 1000" true
    (Bitset.eval e [| true; false; false; false |] = true)

(* --- LFSR --- *)

let test_default_taps () =
  let taps = Lfsr.default_taps ~size:32 ~stride:8 in
  check Alcotest.int "taps every 8" 3
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 taps);
  check Alcotest.bool "tap at 7" true taps.(7);
  check Alcotest.bool "no tap at 31 (last)" false taps.(31)

let test_step_shift_semantics () =
  (* no taps active when state has 0 feedback: plain shift *)
  let l = Lfsr.create ~size:8 () in
  let s = Array.make 8 false in
  s.(0) <- true;
  Lfsr.set_state l s;
  Lfsr.step l;
  let s' = Lfsr.state l in
  check Alcotest.bool "shifted to cell 1" true s'.(1);
  check Alcotest.bool "cell 0 now 0" false s'.(0)

let test_feedback () =
  let l = Lfsr.create ~size:9 () in
  (* put a 1 in the last cell; feedback should re-enter at 0 and XOR at tap 7 *)
  let s = Array.make 9 false in
  s.(8) <- true;
  Lfsr.set_state l s;
  Lfsr.step l;
  let s' = Lfsr.state l in
  check Alcotest.bool "feedback into 0" true s'.(0);
  check Alcotest.bool "tap 7 toggled by feedback" true s'.(7)

let test_reset () =
  let l = Lfsr.create ~size:16 () in
  Lfsr.set_state l (Array.make 16 true);
  Lfsr.reset l;
  check Alcotest.bool "cleared" true
    (Array.for_all not (Lfsr.state l))

let test_injection () =
  let l = Lfsr.create ~size:8 () in
  let inj = Array.make 8 false in
  inj.(3) <- true;
  Lfsr.step ~injection:inj l;
  check Alcotest.bool "injected at 3" true (Lfsr.state l).(3)

let test_nonzero_period () =
  (* a free-running LFSR from a nonzero state must not get stuck *)
  let l = Lfsr.create ~size:16 () in
  let s = Array.make 16 false in
  s.(5) <- true;
  Lfsr.set_state l s;
  let states = Hashtbl.create 64 in
  let repeated = ref false in
  for _ = 1 to 200 do
    if Hashtbl.mem states (Lfsr.state l) then repeated := true
    else Hashtbl.replace states (Lfsr.state l) ();
    Lfsr.step l
  done;
  ignore !repeated;
  check Alcotest.bool "never all-zero" true
    (Hashtbl.fold (fun s () acc -> acc && Array.exists (fun b -> b) s) states true)

let test_xor_gate_count () =
  let l = Lfsr.create ~size:32 () in
  (* 32 reseed points + 3 taps *)
  check Alcotest.int "xor count" 35 (Lfsr.xor_gate_count l)

(* --- key sequences --- *)

let prop_solve_for_key =
  qtest ~count:25 "solve_for_key reaches arbitrary targets"
    QCheck.(pair seed_gen (int_range 8 96))
    (fun (seed, size) ->
      let l = Lfsr.create ~size () in
      let rng = Prng.create seed in
      let target = Prng.bool_array rng size in
      let ks = Keyseq.solve_for_key ~seed ~num_seeds:3 l ~target_key:target in
      Keyseq.apply l ks = target)

let prop_symbolic_matches_concrete =
  qtest ~count:25 "symbolic LFSR matches concrete simulation" seed_gen
    (fun seed ->
      let size = 24 in
      let l = Lfsr.create ~size () in
      let num_seeds = 3 in
      let ks = Keyseq.random ~seed ~num_seeds l in
      let key = Keyseq.apply l ks in
      let free_runs =
        List.map (fun e -> e.Keyseq.free_run) (Keyseq.entries ks)
      in
      let exprs = Symbolic.of_schedule l ~num_seeds ~free_runs in
      let width = Lfsr.num_reseed_points l in
      let assignment = Array.make (num_seeds * width) false in
      List.iteri
        (fun s e ->
          Array.iteri (fun k b -> assignment.((s * width) + k) <- b) e.Keyseq.seed)
        (Keyseq.entries ks);
      Array.for_all2
        (fun expr bit -> Bitset.eval expr assignment = bit)
        exprs key)

let test_unlock_cycles () =
  let l = Lfsr.create ~size:16 () in
  let ks = Keyseq.random ~max_free_run:0 ~seed:4 ~num_seeds:5 l in
  check Alcotest.int "cycles, no free runs" 5 (Keyseq.unlock_cycles ks);
  check Alcotest.int "seeds" 5 (Keyseq.num_seeds ks);
  check Alcotest.int "seed bits" (5 * 16) (Keyseq.total_seed_bits ks)

let prop_linear_solver =
  qtest ~count:30 "Symbolic.solve solves random consistent systems" seed_gen
    (fun seed ->
      let rng = Prng.create seed in
      let num_vars = 20 and rows = 16 in
      let exprs =
        Array.init rows (fun _ ->
            let e = Bitset.create num_vars in
            for _ = 1 to 6 do
              Bitset.set e (Prng.int rng num_vars)
            done;
            e)
      in
      let x = Prng.bool_array rng num_vars in
      let target = Array.map (fun e -> Bitset.eval e x) exprs in
      match Symbolic.solve exprs ~num_vars target with
      | None -> false
      | Some sol -> Array.for_all2 (fun e t -> Bitset.eval e sol = t) exprs target)

let test_solver_detects_inconsistency () =
  (* x0 = 0 and x0 = 1 *)
  let e = Bitset.singleton 4 0 in
  let exprs = [| e; Bitset.copy e |] in
  check Alcotest.bool "inconsistent" true
    (Symbolic.solve exprs ~num_vars:4 [| true; false |] = None)

let test_xor_tree_gates () =
  let exprs = [| Bitset.create 8; Bitset.singleton 8 0 |] in
  Bitset.set exprs.(0) 1;
  Bitset.set exprs.(0) 2;
  Bitset.set exprs.(0) 3;
  (* 3 terms -> 2 XORs; single term -> 0 *)
  check Alcotest.int "gate count" 2 (Symbolic.xor_tree_gates exprs);
  check (Alcotest.float 1e-9) "mean terms" 2.0 (Symbolic.mean_terms exprs)

let suite =
  ( "lfsr",
    [
      tc "bitset basics" `Quick test_bitset_basics;
      prop_bitset_xor_involution;
      tc "bitset eval" `Quick test_bitset_eval;
      tc "default taps" `Quick test_default_taps;
      tc "shift semantics" `Quick test_step_shift_semantics;
      tc "feedback taps" `Quick test_feedback;
      tc "reset clears" `Quick test_reset;
      tc "reseeding injection" `Quick test_injection;
      tc "free-run stays nonzero" `Quick test_nonzero_period;
      tc "xor gate accounting" `Quick test_xor_gate_count;
      prop_solve_for_key;
      prop_symbolic_matches_concrete;
      tc "key sequence sizes" `Quick test_unlock_cycles;
      prop_linear_solver;
      tc "inconsistent system rejected" `Quick test_solver_detects_inconsistency;
      tc "xor tree accounting" `Quick test_xor_tree_gates;
    ] )
