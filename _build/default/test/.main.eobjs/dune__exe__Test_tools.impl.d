test/test_tools.ml: Alcotest Array List Orap_atpg Orap_faultsim Orap_netlist String Util
