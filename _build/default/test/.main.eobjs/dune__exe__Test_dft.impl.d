test/test_dft.ml: Alcotest Array List Orap_dft Util
