test/test_core.ml: Alcotest Array Orap_core Orap_dft Orap_locking Orap_netlist Orap_sim Util
