test/test_sim.ml: Alcotest Array Int64 Orap_netlist Orap_sim QCheck Util
