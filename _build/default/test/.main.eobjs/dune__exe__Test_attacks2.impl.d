test/test_attacks2.ml: Alcotest Array List Orap_attacks Orap_core Orap_experiments Orap_locking Orap_netlist Orap_sim Orap_synth Util
