test/test_locking.ml: Alcotest Array Orap_locking Orap_netlist Orap_sim Util
