test/util.ml: Alcotest Orap_benchgen Orap_netlist Orap_sim QCheck QCheck_alcotest
