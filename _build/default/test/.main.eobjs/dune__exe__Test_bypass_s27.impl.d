test/test_bypass_s27.ml: Alcotest Array List Orap_atpg Orap_attacks Orap_core Orap_locking Orap_netlist Util
