test/test_experiments.ml: Alcotest List Orap_benchgen Orap_core Orap_experiments String Util
