test/test_synth.ml: Alcotest Array List Orap_netlist Orap_sim Orap_synth QCheck Util
