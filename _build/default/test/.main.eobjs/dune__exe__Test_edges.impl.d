test/test_edges.ml: Alcotest Array List Orap_core Orap_faultsim Orap_locking Orap_netlist Orap_sat Orap_sim Orap_synth QCheck Util
