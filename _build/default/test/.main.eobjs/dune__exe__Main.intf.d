test/main.mli:
