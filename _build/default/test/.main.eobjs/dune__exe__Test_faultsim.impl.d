test/test_faultsim.ml: Alcotest Array Int64 List Orap_faultsim Orap_netlist Orap_sim Util
