test/test_netlist.ml: Alcotest Array Int64 List Orap_netlist Orap_sim String Util
