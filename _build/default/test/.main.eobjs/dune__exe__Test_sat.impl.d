test/test_sat.ml: Alcotest Array Format List Orap_netlist Orap_sat Orap_sim Util
