test/test_lfsr.ml: Alcotest Array Hashtbl List Orap_lfsr Orap_sim QCheck Util
