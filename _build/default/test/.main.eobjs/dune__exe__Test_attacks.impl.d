test/test_attacks.ml: Alcotest Array List Orap_attacks Orap_core Orap_locking Orap_netlist Orap_sim String Util
