test/test_atpg.ml: Alcotest Array Int64 Orap_atpg Orap_faultsim Orap_netlist Orap_sim Util
