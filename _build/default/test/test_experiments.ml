open Util
module E = Orap_experiments
module Benchgen = Orap_benchgen.Benchgen

let tiny_t1_params =
  { E.Table1.quick_params with E.Table1.scale = 32; hd_words = 16; hd_keys = 2 }

let tiny_t2_params =
  { E.Table2.quick_params with E.Table2.scale = 48; random_words = 8 }

let small_profiles =
  List.filter
    (fun p -> List.mem p.Benchgen.name [ "s38417"; "b20" ])
    Benchgen.table1_profiles

let test_table1_shape () =
  let rows = E.Table1.run ~params:tiny_t1_params ~profiles:small_profiles () in
  check Alcotest.int "one row per profile" 2 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.bool "HD in band" true
        (r.E.Table1.hd_pct > 1.0 && r.E.Table1.hd_pct <= 55.0);
      check Alcotest.bool "area overhead positive" true (r.E.Table1.area_pct > 0.0);
      check Alcotest.bool "delay overhead non-negative" true
        (r.E.Table1.delay_pct >= 0.0))
    rows;
  let rendered = E.Report.render (E.Table1.report rows) in
  check Alcotest.bool "rendered" true (String.length rendered > 100)

let test_table2_shape () =
  let rows = E.Table2.run ~params:tiny_t2_params ~profiles:small_profiles () in
  List.iter
    (fun r ->
      check Alcotest.bool "original coverage sane" true
        (r.E.Table2.original.E.Table2.fc_pct > 60.0);
      check Alcotest.bool "protected coverage sane" true
        (r.E.Table2.protected_.E.Table2.fc_pct > 60.0);
      check Alcotest.bool "faults counted" true
        (r.E.Table2.original.E.Table2.total_faults > 0))
    rows

let test_security_figs () =
  let fx = E.Security.make_fixture ~num_gates:300 ~key_size:24 () in
  let f1 = E.Security.fig1 fx in
  check Alcotest.bool "F1 unlock" true f1.E.Security.unlock_key_correct;
  check Alcotest.bool "F1 clear" true f1.E.Security.key_cleared_on_scan;
  check Alcotest.bool "F1 locked scan" true f1.E.Security.scan_responses_locked;
  let f2 = E.Security.fig2 () in
  check Alcotest.bool "F2" true
    (f2.E.Security.fires_on_rising_edge && f2.E.Security.silent_on_level_hold
    && f2.E.Security.silent_on_falling_edge);
  let f3 = E.Security.fig3 fx in
  check Alcotest.bool "F3 honest" true f3.E.Security.honest_unlock_correct;
  check Alcotest.bool "F3 freeze breaks" true f3.E.Security.frozen_ffs_break_unlock;
  check Alcotest.bool "F3 basic immune" true f3.E.Security.responses_differ_from_basic

let test_trojan_table_verdicts () =
  let fx = E.Security.make_fixture ~num_gates:300 ~key_size:24 () in
  let rows = E.Trojan_table.run fx in
  check Alcotest.int "5 scenarios x 2 schemes" 10 (List.length rows);
  (* the paper's verdict: everything defeated except (e) on the basic scheme *)
  List.iter
    (fun r ->
      let defeated = Orap_core.Threat.defeated r.E.Trojan_table.outcome in
      match (r.E.Trojan_table.scenario, r.E.Trojan_table.scheme) with
      | Orap_core.Threat.Freeze_state_ffs, "basic" ->
        check Alcotest.bool "(e) wins vs basic" false defeated
      | _ -> check Alcotest.bool "defeated" true defeated)
    rows

let test_report_rendering () =
  let t =
    E.Report.create ~title:"t" ~header:[ "a"; "bb" ] ~aligns:[ E.Report.L; E.Report.R ]
  in
  E.Report.add_row t [ "xxx"; "1" ];
  let s = E.Report.render t in
  check Alcotest.bool "contains title" true
    (String.length s > 0 && String.sub s 0 4 = "== t");
  Alcotest.check_raises "row width mismatch" (Invalid_argument "Report.add_row")
    (fun () -> E.Report.add_row t [ "only-one" ])

let suite =
  ( "experiments",
    [
      tc "table1 shape" `Slow test_table1_shape;
      tc "table2 shape" `Slow test_table2_shape;
      tc "security figures" `Quick test_security_figs;
      tc "trojan verdict table" `Quick test_trojan_table_verdicts;
      tc "report rendering" `Quick test_report_rendering;
    ] )
