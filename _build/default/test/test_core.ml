open Util
module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Weighted = Orap_locking.Weighted
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Oracle = Orap_core.Oracle
module Threat = Orap_core.Threat
module Scan = Orap_dft.Scan
module Prng = Orap_sim.Prng

let fixture kind =
  let nl = random_netlist ~inputs:40 ~outputs:30 ~gates:320 77 in
  let lk = Weighted.lock nl ~key_size:24 ~ctrl_inputs:3 in
  let design =
    Orap.protect
      ~config:{ (Orap.default_config ~kind ~num_ffs:14 ()) with Orap.seed = 5 }
      lk
  in
  (lk, design)

let test_unlock_basic () =
  let lk, design = fixture Orap.Basic in
  let chip = Chip.create design in
  check Alcotest.bool "not unlocked initially" false (Chip.is_unlocked chip);
  Chip.unlock chip;
  check Alcotest.bool "unlocked" true (Chip.is_unlocked chip);
  check Alcotest.bool "correct key" true
    (Chip.key_register chip = lk.Locked.correct_key)

let test_unlock_modified () =
  let lk, design = fixture Orap.Modified in
  let chip = Chip.create design in
  Chip.unlock chip;
  check Alcotest.bool "correct key" true
    (Chip.key_register chip = lk.Locked.correct_key)

let test_scan_enable_clears_key () =
  let lk, design = fixture Orap.Basic in
  let chip = Chip.create design in
  Chip.unlock chip;
  check Alcotest.bool "key loaded" true
    (Chip.key_register chip = lk.Locked.correct_key);
  Chip.set_scan_enable chip true;
  check Alcotest.bool "key cleared" true
    (Array.for_all not (Chip.key_register chip));
  (* falling edge does not re-fire; key remains whatever is shifted *)
  Chip.set_scan_enable chip false;
  check Alcotest.bool "still cleared" true
    (Array.for_all not (Chip.key_register chip))

let test_functional_cycle_matches_locked_eval () =
  let lk, design = fixture Orap.Basic in
  let chip = Chip.create design in
  Chip.unlock chip;
  let rng = Prng.create 31 in
  for _ = 1 to 10 do
    let ext = Prng.bool_array rng (Orap.num_ext_inputs design) in
    let ffs_before = Chip.ff_state chip in
    let ext_outs = Chip.functional_cycle chip ~ext_inputs:ext in
    let full =
      Locked.eval lk ~key:lk.Locked.correct_key
        ~inputs:(Array.append ext ffs_before)
    in
    let expect_ext, expect_ffs = Orap.split_outputs design full in
    check Alcotest.bool "external outputs" true (ext_outs = expect_ext);
    check Alcotest.bool "next state" true (Chip.ff_state chip = expect_ffs)
  done

let test_scan_roundtrip_state () =
  let _, design = fixture Orap.Basic in
  let chip = Chip.create design in
  let rng = Prng.create 9 in
  let state = Prng.bool_array rng (Orap.num_ffs design) in
  let ext = Prng.bool_array rng (Orap.num_ext_inputs design) in
  let _, captured = Chip.scan_test chip ~state ~ext_inputs:ext in
  (* the captured state is the locked circuit's next-state under key 0 *)
  let key0 = Array.make (Orap.key_size design) false in
  let full =
    Locked.eval design.Orap.locked ~key:key0 ~inputs:(Array.append ext state)
  in
  let _, expect = Orap.split_outputs design full in
  check Alcotest.bool "locked capture" true (captured = expect)

let test_scan_oracle_locked_responses () =
  let lk, design = fixture Orap.Basic in
  let chip = Chip.create design in
  Chip.unlock chip;
  let oracle = Oracle.scan_chip chip in
  let reference = Oracle.functional lk in
  let rng = Prng.create 12 in
  let width = Orap.num_ext_inputs design + Orap.num_ffs design in
  let corrupted = ref 0 in
  for _ = 1 to 16 do
    let x = Prng.bool_array rng width in
    if Oracle.query oracle x <> Oracle.query reference x then incr corrupted
  done;
  check Alcotest.bool "responses locked" true (!corrupted > 12);
  check Alcotest.int "query counting" 16 (Oracle.num_queries oracle)

let test_unprotected_scan_access_would_leak () =
  (* the same query, answered functionally, is correct — the contrast OraP
     exists for *)
  let lk, _ = fixture Orap.Basic in
  let oracle = Oracle.functional lk in
  let rng = Prng.create 12 in
  let x = Prng.bool_array rng lk.Locked.num_regular_inputs in
  check Alcotest.bool "functional oracle correct" true
    (Oracle.query oracle x = Locked.eval lk ~key:lk.Locked.correct_key ~inputs:x)

let test_hardware_accounting () =
  let _, design = fixture Orap.Basic in
  let h = Orap.hardware design in
  check Alcotest.int "pulse gens" 24 h.Orap.pulse_gen_gates;
  check Alcotest.int "reseed xors" 24 h.Orap.reseed_xors;
  check Alcotest.int "tap xors" 2 h.Orap.tap_xors;
  check Alcotest.int "gate total" 50 (Orap.hardware_gate_count h);
  check Alcotest.int "and-node units" (24 + (3 * 26)) (Orap.hardware_and_nodes h)

let test_unlock_cycles_positive () =
  let _, basic = fixture Orap.Basic in
  let _, modified = fixture Orap.Modified in
  check Alcotest.bool "basic cycles" true (Orap.unlock_cycles basic > 0);
  check Alcotest.bool "modified has two phases" true
    (Orap.unlock_cycles modified > 12)

let test_chain_contains_all_cells () =
  let _, design = fixture Orap.Basic in
  check Alcotest.int "chain length" (24 + 14) (Scan.length design.Orap.chain)

(* --- threat scenarios: the paper's verdict table --- *)

let test_scenario_a_steals_key_but_detectable () =
  let _, design = fixture Orap.Basic in
  let o = Threat.run design Threat.Suppress_cell_resets in
  check Alcotest.bool "oracle obtained" true o.Threat.oracle_obtained;
  check Alcotest.bool "payload scales with key" true
    (o.Threat.payload_nand2 = 12.0);
  check Alcotest.bool "defeated by side channel" true (Threat.defeated o)

let test_scenario_b () =
  let _, design = fixture Orap.Basic in
  let o = Threat.run design Threat.Exclude_lfsr_from_scan in
  check Alcotest.bool "oracle obtained" true o.Threat.oracle_obtained;
  check Alcotest.bool "detectable" true o.Threat.detectable

let test_scenario_c () =
  let _, design = fixture Orap.Basic in
  let o = Threat.run design Threat.Shadow_register in
  check Alcotest.bool "oracle obtained" true o.Threat.oracle_obtained;
  check Alcotest.bool "big payload" true (o.Threat.payload_nand2 >= 24.0 *. 9.0)

let test_scenario_d () =
  let _, design = fixture Orap.Basic in
  let o = Threat.run design Threat.Xor_tree_key in
  check Alcotest.bool "oracle obtained" true o.Threat.oracle_obtained;
  check Alcotest.bool "largest payload" true (o.Threat.payload_nand2 > 200.0)

let test_scenario_e_basic_vs_modified () =
  let _, basic = fixture Orap.Basic in
  let ob = Threat.run basic Threat.Freeze_state_ffs in
  check Alcotest.bool "succeeds on basic scheme" true ob.Threat.oracle_obtained;
  check Alcotest.bool "stealthy" false ob.Threat.detectable;
  check Alcotest.bool "basic scheme loses" false (Threat.defeated ob);
  let _, modified = fixture Orap.Modified in
  let om = Threat.run modified Threat.Freeze_state_ffs in
  check Alcotest.bool "fails on modified scheme" false om.Threat.oracle_obtained;
  check Alcotest.bool "modified scheme wins" true (Threat.defeated om)

let test_honest_chip_has_no_trojan_effects () =
  let lk, design = fixture Orap.Basic in
  let chip = Chip.create design in
  Chip.unlock chip;
  (* scan dump of an honest chip reveals a cleared key register *)
  let dump = Chip.scan_dump chip in
  Array.iter
    (fun (cell, bit) ->
      match cell with
      | Scan.Key _ -> check Alcotest.bool "key bit cleared" false bit
      | Scan.State _ -> ())
    dump;
  ignore lk

let test_interleaving_raises_bypass_cost () =
  let nl = random_netlist ~inputs:40 ~outputs:30 ~gates:320 77 in
  let lk = Weighted.lock nl ~key_size:24 ~ctrl_inputs:3 in
  let mk style =
    Orap.protect
      ~config:
        { (Orap.default_config ~kind:Orap.Basic ~num_ffs:14 ()) with
          Orap.chain_style = style; seed = 5 }
      lk
  in
  let inter = Threat.payload (mk Scan.Interleaved) Threat.Exclude_lfsr_from_scan in
  let grouped = Threat.payload (mk Scan.Key_first) Threat.Exclude_lfsr_from_scan in
  check Alcotest.bool "guideline works" true (inter > grouped)

let suite =
  ( "core",
    [
      tc "basic unlock" `Quick test_unlock_basic;
      tc "modified unlock" `Quick test_unlock_modified;
      tc "scan enable clears key (Fig.1)" `Quick test_scan_enable_clears_key;
      tc "functional cycles" `Quick test_functional_cycle_matches_locked_eval;
      tc "scan capture is locked" `Quick test_scan_roundtrip_state;
      tc "scan oracle answers locked" `Quick test_scan_oracle_locked_responses;
      tc "functional oracle contrast" `Quick test_unprotected_scan_access_would_leak;
      tc "hardware accounting" `Quick test_hardware_accounting;
      tc "unlock cycle counts" `Quick test_unlock_cycles_positive;
      tc "chain covers all cells" `Quick test_chain_contains_all_cells;
      tc "scenario (a)" `Quick test_scenario_a_steals_key_but_detectable;
      tc "scenario (b)" `Quick test_scenario_b;
      tc "scenario (c)" `Quick test_scenario_c;
      tc "scenario (d)" `Quick test_scenario_d;
      tc "scenario (e): basic vs modified" `Quick test_scenario_e_basic_vs_modified;
      tc "honest chip leaks nothing" `Quick test_honest_chip_has_no_trojan_effects;
      tc "interleaving guideline" `Quick test_interleaving_raises_bypass_cost;
    ] )
