open Util
module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Sim = Orap_sim.Sim
module Prng = Orap_sim.Prng
module Hamming = Orap_sim.Hamming

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 7 and b = Prng.create 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next64 a = Prng.next64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 2)

let test_prng_int_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.float rng in
    check Alcotest.bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_bool_balance () =
  let rng = Prng.create 5 in
  let ones = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.bool rng then incr ones
  done;
  let ratio = float_of_int !ones /. float_of_int n in
  check Alcotest.bool "roughly balanced" true (ratio > 0.45 && ratio < 0.55)

let test_popcount () =
  check Alcotest.int "zero" 0 (Sim.popcount64 0L);
  check Alcotest.int "ones" 64 (Sim.popcount64 Int64.minus_one);
  check Alcotest.int "one bit" 1 (Sim.popcount64 0x8000000000000000L);
  check Alcotest.int "pattern" 32 (Sim.popcount64 0x5555555555555555L)

(* word-parallel and single-pattern simulation must agree *)
let test_word_vs_bool_agree () =
  let nl = random_netlist ~inputs:10 ~outputs:6 ~gates:80 42 in
  let rng = Prng.create 9 in
  for _ = 1 to 10 do
    let words = Array.init 10 (fun _ -> Prng.next64 rng) in
    let values = Sim.eval_word nl ~input_word:(fun i -> words.(i)) in
    let outs_w = Sim.output_words nl values in
    for bit = 0 to 63 do
      let inp =
        Array.init 10 (fun i ->
            Int64.logand (Int64.shift_right_logical words.(i) bit) 1L <> 0L)
      in
      let outs_b = Sim.eval_bools nl inp in
      Array.iteri
        (fun j w ->
          let expected = Int64.logand (Int64.shift_right_logical w bit) 1L <> 0L in
          check Alcotest.bool "bit agrees" expected outs_b.(j))
        outs_w
    done
  done

let test_random_words_callback_count () =
  let nl = random_netlist 3 in
  let calls = ref 0 in
  Sim.random_words nl ~seed:1 ~words:7 ~f:(fun ~word_index:_ ~outputs:_ ->
      incr calls);
  check Alcotest.int "one call per word" 7 !calls

(* --- Hamming --- *)

let shared_config nl =
  Hamming.config nl (Array.init (N.num_inputs nl) (fun i -> Hamming.Shared i))

let test_hamming_self_zero () =
  let nl = random_netlist 11 in
  let c = shared_config nl in
  check (Alcotest.float 1e-9) "self distance" 0.0
    (Hamming.distance ~words:8 c c)

let test_hamming_complement_one () =
  (* circuit vs itself with all outputs inverted: HD = 1 *)
  let nl = random_netlist ~inputs:6 ~outputs:4 ~gates:30 13 in
  let b = N.Builder.create () in
  let map = Array.make (N.num_nodes nl) (-1) in
  let map = N.copy_into b nl map in
  Array.iter
    (fun o -> N.Builder.mark_output b (N.Builder.add_node b Gate.Not [| map.(o) |]))
    (N.outputs nl);
  let inv = N.Builder.finish b in
  check (Alcotest.float 1e-9) "complement distance" 1.0
    (Hamming.distance ~words:8 (shared_config nl) (shared_config inv))

let test_hamming_symmetric () =
  let a = random_netlist ~inputs:6 ~outputs:4 ~gates:30 17 in
  let b = random_netlist ~inputs:6 ~outputs:4 ~gates:30 18 in
  let d1 = Hamming.distance ~seed:3 ~words:16 (shared_config a) (shared_config b) in
  let d2 = Hamming.distance ~seed:3 ~words:16 (shared_config b) (shared_config a) in
  check (Alcotest.float 1e-9) "symmetric" d1 d2

let test_hamming_fixed_binding () =
  (* fix one input at both polarities: only matching patterns compared *)
  let b = N.Builder.create () in
  let x = N.Builder.add_input b in
  let y = N.Builder.add_input b in
  let o = N.Builder.add_node b Gate.Xor [| x; y |] in
  N.Builder.mark_output b o;
  let nl = N.Builder.finish b in
  let cfg v = Hamming.config nl [| Hamming.Shared 0; Hamming.Fixed v |] in
  check (Alcotest.float 1e-9) "same fixing -> 0" 0.0
    (Hamming.distance ~words:4 (cfg true) (cfg true));
  check (Alcotest.float 1e-9) "opposite fixing -> 1" 1.0
    (Hamming.distance ~words:4 (cfg true) (cfg false))

let test_equal_exhaustive () =
  let nl = random_netlist ~inputs:8 ~outputs:4 ~gates:40 23 in
  let c = shared_config nl in
  check Alcotest.bool "self equal" true (Hamming.equal_exhaustive c c);
  (* distinct circuits very unlikely equal *)
  let other = random_netlist ~inputs:8 ~outputs:4 ~gates:40 24 in
  check Alcotest.bool "different" false
    (Hamming.equal_exhaustive c (shared_config other))

let prop_distance_in_unit_interval =
  qtest "distance lies in [0,1]" QCheck.(pair seed_gen seed_gen)
    (fun (s1, s2) ->
      let a = random_netlist ~inputs:5 ~outputs:3 ~gates:25 s1 in
      let b = random_netlist ~inputs:5 ~outputs:3 ~gates:25 s2 in
      let d = Hamming.distance ~words:4 (shared_config a) (shared_config b) in
      d >= 0.0 && d <= 1.0)

let prop_exhaustive_matches_distance_zero =
  qtest ~count:25 "exhaustive equality iff distance 0" seed_gen (fun seed ->
      let nl = random_netlist ~inputs:6 ~outputs:3 ~gates:30 seed in
      let c = shared_config nl in
      Hamming.equal_exhaustive c c
      && Hamming.distance ~words:8 c c = 0.0)

let suite =
  ( "sim",
    [
      tc "prng determinism" `Quick test_prng_deterministic;
      tc "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
      tc "prng int range" `Quick test_prng_int_range;
      tc "prng float range" `Quick test_prng_float_range;
      tc "prng bool balance" `Quick test_prng_bool_balance;
      tc "popcount64" `Quick test_popcount;
      tc "word vs single-pattern agreement" `Quick test_word_vs_bool_agree;
      tc "random_words callback count" `Quick test_random_words_callback_count;
      tc "hamming self = 0" `Quick test_hamming_self_zero;
      tc "hamming complement = 1" `Quick test_hamming_complement_one;
      tc "hamming symmetric" `Quick test_hamming_symmetric;
      tc "hamming fixed bindings" `Quick test_hamming_fixed_binding;
      tc "exhaustive equivalence" `Quick test_equal_exhaustive;
      prop_distance_in_unit_interval;
      prop_exhaustive_matches_distance_zero;
    ] )
