open Util
module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Five = Orap_atpg.Five
module Scoap = Orap_atpg.Scoap
module Podem = Orap_atpg.Podem
module Atpg = Orap_atpg.Atpg
module Fault = Orap_faultsim.Fault
module Sim = Orap_sim.Sim

(* --- five-valued algebra --- *)

let test_five_and_table () =
  let open Five in
  check Alcotest.bool "D & 1 = D" true (v_and D T = D);
  check Alcotest.bool "D & 0 = 0" true (v_and D F = F);
  check Alcotest.bool "D & D' = 0" true (v_and D Db = F);
  check Alcotest.bool "D & D = D" true (v_and D D = D);
  check Alcotest.bool "D & X = X" true (v_and D X = X);
  check Alcotest.bool "0 & X = 0" true (v_and F X = F)

let test_five_or_xor_not () =
  let open Five in
  check Alcotest.bool "D | D' = 1" true (v_or D Db = T);
  check Alcotest.bool "D | 0 = D" true (v_or D F = D);
  check Alcotest.bool "1 | X = 1" true (v_or T X = T);
  check Alcotest.bool "D ^ 1 = D'" true (v_xor D T = Db);
  check Alcotest.bool "D ^ D = 0" true (v_xor D D = F);
  check Alcotest.bool "~D = D'" true (v_not D = Db);
  check Alcotest.bool "~X = X" true (v_not X = X)

let test_five_faulted () =
  let open Five in
  check Alcotest.bool "good 1, sa0 -> D" true (faulted T ~stuck:false = D);
  check Alcotest.bool "good 0, sa1 -> D'" true (faulted F ~stuck:true = Db);
  check Alcotest.bool "good 0, sa0 -> 0" true (faulted F ~stuck:false = F);
  check Alcotest.bool "good X -> X" true (faulted X ~stuck:false = X)

let test_five_gate_eval () =
  let open Five in
  check Alcotest.bool "mux sel D" true
    (eval_gate Gate.Mux [| D; F; T |] = D);
  check Alcotest.bool "nand D 1" true (eval_gate Gate.Nand [| D; T |] = Db);
  check Alcotest.bool "xor3" true (eval_gate Gate.Xor [| T; T; D |] = D)

(* --- SCOAP --- *)

let test_scoap_basics () =
  let b = N.Builder.create () in
  let a = N.Builder.add_input b in
  let c = N.Builder.add_input b in
  let g = N.Builder.add_node b Gate.And [| a; c |] in
  N.Builder.mark_output b g;
  let nl = N.Builder.finish b in
  let s = Scoap.compute nl in
  check Alcotest.int "PI cc0" 1 s.Scoap.cc0.(a);
  check Alcotest.int "AND cc1 = sum + 1" 3 s.Scoap.cc1.(g);
  check Alcotest.int "AND cc0 = min + 1" 2 s.Scoap.cc0.(g);
  check Alcotest.int "output distance" 0 s.Scoap.dist_po.(g);
  check Alcotest.int "input distance" 1 s.Scoap.dist_po.(a)

(* --- PODEM vs brute force --- *)

let brute_detectable nl fault =
  let ni = N.num_inputs nl in
  let eval_with_fault inp =
    let n = N.num_nodes nl in
    let values = Array.make n false in
    let pos = ref 0 in
    for i = 0 to n - 1 do
      let v =
        match N.kind nl i with
        | Gate.Input ->
          let v = inp.(!pos) in
          incr pos;
          v
        | k ->
          let fan = N.fanins nl i in
          let ops =
            Array.mapi
              (fun p f ->
                match fault.Fault.site with
                | Fault.Input (fn, fp) when fn = i && fp = p ->
                  fault.Fault.stuck
                | Fault.Input _ | Fault.Output _ -> values.(f))
              fan
          in
          Gate.eval_bool k ops
      in
      let v =
        match fault.Fault.site with
        | Fault.Output fn when fn = i -> fault.Fault.stuck
        | Fault.Output _ | Fault.Input _ -> v
      in
      values.(i) <- v
    done;
    Array.map (fun o -> values.(o)) (N.outputs nl)
  in
  let found = ref false in
  for m = 0 to (1 lsl ni) - 1 do
    if not !found then begin
      let inp = Array.init ni (fun i -> (m lsr i) land 1 = 1) in
      if eval_with_fault inp <> Sim.eval_bools nl inp then found := true
    end
  done;
  !found

let prop_podem_complete_and_sound =
  qtest ~count:12 "PODEM agrees with brute-force detectability" seed_gen
    (fun seed ->
      let nl = random_netlist ~inputs:9 ~outputs:5 ~gates:60 seed in
      let faults = Fault.collapsed_list nl in
      let engine = Podem.create nl in
      let ok = ref true in
      Array.iteri
        (fun i fault ->
          if i mod 4 = 0 then begin
            let brute = brute_detectable nl fault in
            match Podem.run engine fault ~backtrack_limit:2000 with
            | Podem.Test _ -> if not brute then ok := false
            | Podem.Redundant -> if brute then ok := false
            | Podem.Aborted -> () (* inconclusive is acceptable *)
          end)
        faults;
      !ok)

let prop_podem_tests_detect =
  qtest ~count:12 "PODEM tests actually detect their faults" seed_gen
    (fun seed ->
      let nl = random_netlist ~inputs:9 ~outputs:5 ~gates:60 seed in
      let faults = Fault.collapsed_list nl in
      let engine = Podem.create nl in
      let fsim = Orap_faultsim.Fsim.create nl in
      let ok = ref true in
      Array.iteri
        (fun i fault ->
          if i mod 5 = 0 then begin
            match Podem.run engine fault ~backtrack_limit:2000 with
            | Podem.Test assignment ->
              (* fill X with 0 and confirm detection by fault simulation *)
              let pattern =
                Array.map (function Some b -> b | None -> false) assignment
              in
              let good =
                Sim.eval_word nl ~input_word:(fun i ->
                    if pattern.(i) then Int64.minus_one else 0L)
              in
              if
                Int64.logand (Orap_faultsim.Fsim.detect_word fsim good fault) 1L
                = 0L
              then ok := false
            | Podem.Redundant | Podem.Aborted -> ()
          end)
        faults;
      !ok)

let test_podem_redundant_circuit () =
  (* y = a & ~a = 0: the AND output s-a-0 is undetectable *)
  let b = N.Builder.create () in
  let a = N.Builder.add_input b in
  let c = N.Builder.add_input b in
  let na = N.Builder.add_node b Gate.Not [| a |] in
  let g = N.Builder.add_node b Gate.And [| a; na |] in
  let o = N.Builder.add_node b Gate.Or [| g; c |] in
  N.Builder.mark_output b o;
  let nl = N.Builder.finish b in
  let engine = Podem.create nl in
  (match Podem.run engine { Fault.site = Fault.Output g; stuck = false }
           ~backtrack_limit:100 with
  | Podem.Redundant -> ()
  | Podem.Test _ -> Alcotest.fail "constant-0 node s-a-0 cannot be testable"
  | Podem.Aborted -> Alcotest.fail "trivial redundancy must not abort");
  (* while s-a-1 on it is testable *)
  match Podem.run engine { Fault.site = Fault.Output g; stuck = true }
          ~backtrack_limit:100 with
  | Podem.Test _ -> ()
  | Podem.Redundant | Podem.Aborted -> Alcotest.fail "s-a-1 is testable"

let test_atpg_driver_accounting () =
  let nl = random_netlist ~inputs:12 ~outputs:8 ~gates:150 5 in
  let r = Atpg.run ~random_words:4 ~backtrack_limit:100 nl in
  check Alcotest.int "accounting" r.Atpg.total_faults
    (r.Atpg.detected + r.Atpg.redundant + r.Atpg.aborted);
  check Alcotest.bool "coverage sane" true
    (Atpg.coverage r > 50.0 && Atpg.coverage r <= 100.0);
  check Alcotest.bool "random phase found most" true
    (r.Atpg.random_detected * 2 > r.Atpg.total_faults)

let test_atpg_deterministic () =
  let nl = random_netlist ~inputs:10 ~outputs:6 ~gates:90 6 in
  let r1 = Atpg.run ~seed:9 nl and r2 = Atpg.run ~seed:9 nl in
  check Alcotest.int "same detected" r1.Atpg.detected r2.Atpg.detected;
  check Alcotest.int "same aborted" r1.Atpg.aborted r2.Atpg.aborted

let suite =
  ( "atpg",
    [
      tc "five-valued AND" `Quick test_five_and_table;
      tc "five-valued OR/XOR/NOT" `Quick test_five_or_xor_not;
      tc "fault-site transform" `Quick test_five_faulted;
      tc "five-valued gate eval" `Quick test_five_gate_eval;
      tc "SCOAP measures" `Quick test_scoap_basics;
      prop_podem_complete_and_sound;
      prop_podem_tests_detect;
      tc "redundant fault identified" `Quick test_podem_redundant_circuit;
      tc "ATPG driver accounting" `Quick test_atpg_driver_accounting;
      tc "ATPG determinism" `Quick test_atpg_deterministic;
    ] )
