(** SPS and removal attacks, and the scan-test flow (late additions). *)

open Util
module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Sps = Orap_attacks.Sps
module Removal = Orap_attacks.Removal
module Orap = Orap_core.Orap
module E = Orap_experiments

let base = random_netlist ~inputs:24 ~outputs:18 ~gates:250 101

let test_sps_flags_antisat () =
  let lk = Orap_locking.Antisat.lock base ~key_size:24 in
  let r = Sps.analyze lk.Locked.netlist in
  (* the Anti-SAT Y = g & ~g' signal is heavily skewed toward 0 *)
  check Alcotest.bool "skewed signal found" true (List.length r.Sps.findings > 0);
  check Alcotest.bool "max skew near half" true (r.Sps.max_skew > 0.45)

let test_sps_attack_repairs_antisat () =
  let lk = Orap_locking.Antisat.lock base ~key_size:24 in
  match Sps.attack lk with
  | None -> Alcotest.fail "SPS should find the flip signal"
  | Some (repaired, finding) ->
    check Alcotest.bool "extreme skew" true
      (finding.Sps.probability < 0.1 || finding.Sps.probability > 0.9);
    (* tying the skewed signal to its constant behaves as the original on
       (vastly dominant) random inputs, independent of the dangling keys *)
    let rng = Orap_sim.Prng.create 4 in
    let ok = ref true in
    for _ = 1 to 64 do
      let inp = Orap_sim.Prng.bool_array rng (N.num_inputs repaired) in
      let orig_in = Array.sub inp 0 (N.num_inputs base) in
      if
        Orap_sim.Sim.eval_bools repaired inp
        <> Orap_sim.Sim.eval_bools base orig_in
      then ok := false
    done;
    check Alcotest.bool "anti-sat stripped" true !ok

let test_sps_quiet_on_weighted () =
  (* weighted locking does not ADD skewed signals (Section II-A): the
     locked circuit's extreme-skew findings are those of the base circuit *)
  let lk = Orap_locking.Weighted.lock base ~key_size:18 ~ctrl_inputs:3 in
  let locked_r = Sps.analyze ~epsilon:0.002 lk.Locked.netlist in
  let base_r = Sps.analyze ~epsilon:0.002 base in
  check Alcotest.bool "no new extreme-skew signals" true
    (List.length locked_r.Sps.findings <= List.length base_r.Sps.findings + 1)

let test_sps_probabilities_range () =
  let p = Sps.signal_probabilities base in
  check Alcotest.bool "in [0,1]" true
    (Array.for_all (fun x -> x >= 0.0 && x <= 1.0) p)

let test_removal_on_naked_netlist () =
  (* structurally identifiable key gates: removal recovers the original *)
  let lk = Orap_locking.Random_ll.lock base ~key_size:12 in
  let r = Removal.attack lk in
  check Alcotest.int "all key gates found" 12 r.Removal.removed_key_gates;
  check Alcotest.bool "original recovered" true (Removal.recovers_original lk r)

let test_removal_on_weighted () =
  let lk = Orap_locking.Weighted.lock base ~key_size:12 ~ctrl_inputs:3 in
  let r = Removal.attack lk in
  check Alcotest.int "key gates found" 4 r.Removal.removed_key_gates;
  check Alcotest.bool "original recovered" true (Removal.recovers_original lk r)

let test_removal_fails_after_resynthesis () =
  (* after strash/refactor the key logic dissolves; the heuristic finds
     little and the result no longer matches the original *)
  let lk = Orap_locking.Weighted.lock base ~key_size:12 ~ctrl_inputs:3 in
  let resynth = Orap_synth.Aig.to_netlist (Orap_synth.Abc_script.optimize lk.Locked.netlist) in
  (* rebuild a Locked.t view of the resynthesised netlist *)
  let lk' = { lk with Locked.netlist = resynth } in
  let r = Removal.attack lk' in
  check Alcotest.bool "does not recover the original" false
    (r.Removal.removed_key_gates = 4 && Removal.recovers_original lk' r)

let test_scan_flow () =
  let fx = E.Security.make_fixture ~num_gates:260 ~key_size:18 () in
  let r = E.Scan_flow.run fx.E.Security.basic in
  check Alcotest.bool "patterns applied" true (r.E.Scan_flow.patterns_applied > 0);
  check Alcotest.bool "responses match" true r.E.Scan_flow.responses_match_prediction;
  check Alcotest.bool "secret never exposed" true
    r.E.Scan_flow.key_register_never_secret;
  check Alcotest.bool "coverage sane" true (r.E.Scan_flow.atpg_coverage_pct > 60.0)

let test_ablation_site_selection () =
  let rows = E.Ablation.site_selection ~num_gates:600 ~key_size:18 () in
  check Alcotest.int "three policies" 3 (List.length rows);
  (* slack-aware policy must not be slower than the unrestricted one *)
  match rows with
  | [ aware; unrestricted; _random ] ->
    check Alcotest.bool "slack-aware no slower" true
      (aware.E.Ablation.delay_overhead_pct
       <= unrestricted.E.Ablation.delay_overhead_pct +. 1e-9
       || unrestricted.E.Ablation.delay_overhead_pct = 0.0)
  | _ -> Alcotest.fail "unexpected rows"

let test_ablation_register_structure () =
  match E.Ablation.key_register_structure () with
  | [ lfsr; shift ] ->
    check Alcotest.bool "LFSR mixes more" true
      (lfsr.E.Ablation.xor_gates > 4 * shift.E.Ablation.xor_gates)
  | _ -> Alcotest.fail "unexpected rows"

let test_ablation_scheme_comparison () =
  let fx = E.Security.make_fixture ~num_gates:260 ~key_size:18 () in
  match E.Ablation.scheme_comparison fx with
  | [ basic; modified ] ->
    check Alcotest.bool "(e) beats basic" false basic.E.Ablation.freeze_defeated;
    check Alcotest.bool "(e) loses to modified" true
      modified.E.Ablation.freeze_defeated
  | _ -> Alcotest.fail "unexpected rows"

let suite =
  ( "attacks2",
    [
      tc "SPS flags Anti-SAT" `Quick test_sps_flags_antisat;
      tc "SPS attack strips Anti-SAT" `Quick test_sps_attack_repairs_antisat;
      tc "SPS quiet on weighted locking" `Quick test_sps_quiet_on_weighted;
      tc "SPS probability bounds" `Quick test_sps_probabilities_range;
      tc "removal on naked random LL" `Quick test_removal_on_naked_netlist;
      tc "removal on naked weighted LL" `Quick test_removal_on_weighted;
      tc "removal fails after resynthesis" `Quick test_removal_fails_after_resynthesis;
      tc "scan-test flow end to end" `Slow test_scan_flow;
      tc "ablation: site selection" `Slow test_ablation_site_selection;
      tc "ablation: register structure" `Quick test_ablation_register_structure;
      tc "ablation: scheme comparison" `Quick test_ablation_scheme_comparison;
    ] )
