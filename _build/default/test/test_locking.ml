open Util
module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Weighted = Orap_locking.Weighted
module Random_ll = Orap_locking.Random_ll
module Sarlock = Orap_locking.Sarlock
module Antisat = Orap_locking.Antisat
module Fault_impact = Orap_locking.Fault_impact
module Prng = Orap_sim.Prng

let base = random_netlist ~inputs:24 ~outputs:16 ~gates:220 55

let test_weighted_correct_key () =
  let lk = Weighted.lock base ~key_size:18 ~ctrl_inputs:3 in
  check Alcotest.bool "equivalent under correct key" true
    (Locked.equivalent_under_key lk lk.Locked.correct_key)

let test_weighted_wrong_key_corrupts () =
  let lk = Weighted.lock base ~key_size:18 ~ctrl_inputs:3 in
  let wrong = Array.map not lk.Locked.correct_key in
  check Alcotest.bool "complement key corrupts" true
    (Locked.hamming_vs_original lk wrong > 5.0)

let test_weighted_single_group_actuation () =
  (* flipping one bit actuates exactly its group's key gate *)
  let lk = Weighted.lock base ~key_size:18 ~ctrl_inputs:3 in
  let k = Array.copy lk.Locked.correct_key in
  k.(4) <- not k.(4);
  let hd = Locked.hamming_vs_original lk k in
  check Alcotest.bool "one wrong bit corrupts" true (hd > 0.0);
  (* a fully wrong group corrupts no more gates than one wrong bit in it *)
  let k2 = Array.copy lk.Locked.correct_key in
  k2.(3) <- not k2.(3);
  k2.(4) <- not k2.(4);
  k2.(5) <- not k2.(5);
  check Alcotest.bool "same group actuation" true
    (Locked.hamming_vs_original lk k2 > 0.0)

let test_weighted_structure () =
  let lk = Weighted.lock base ~key_size:18 ~ctrl_inputs:3 in
  check Alcotest.int "key inputs appended" (N.num_inputs base + 18)
    (N.num_inputs lk.Locked.netlist);
  check Alcotest.int "outputs preserved" (N.num_outputs base)
    (N.num_outputs lk.Locked.netlist);
  (* 6 control gates + 6 key gates *)
  check Alcotest.int "gate increase" (N.gate_count base + 12)
    (N.gate_count lk.Locked.netlist)

let test_key_groups_math () =
  check Alcotest.int "even split" 6 (Weighted.num_key_gates ~key_size:18 ~ctrl_inputs:3);
  check Alcotest.int "remainder group" 7 (Weighted.num_key_gates ~key_size:19 ~ctrl_inputs:3);
  check Alcotest.int "w=1" 18 (Weighted.num_key_gates ~key_size:18 ~ctrl_inputs:1)

let test_weighted_too_small_circuit () =
  let tiny = random_netlist ~inputs:4 ~outputs:2 ~gates:6 1 in
  match Weighted.lock tiny ~key_size:64 ~ctrl_inputs:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_random_ll () =
  let lk = Random_ll.lock base ~key_size:16 in
  check Alcotest.bool "equivalent under correct key" true
    (Locked.equivalent_under_key lk lk.Locked.correct_key);
  let k = Array.copy lk.Locked.correct_key in
  k.(0) <- not k.(0);
  check Alcotest.bool "one wrong bit corrupts" true
    (Locked.hamming_vs_original lk k > 0.0)

let test_sarlock_point_function () =
  let lk = Sarlock.lock base ~key_size:12 in
  check Alcotest.bool "equivalent under correct key" true
    (Locked.equivalent_under_key lk lk.Locked.correct_key);
  (* a wrong key corrupts at most one input pattern: HD is tiny *)
  let wrong = Array.map not lk.Locked.correct_key in
  let hd = Locked.hamming_vs_original ~words:16 lk wrong in
  check Alcotest.bool "point-function corruption" true (hd < 0.5);
  (* and the corrupted input is exactly the wrong key guess *)
  let inputs = Array.make (N.num_inputs base) false in
  Array.iteri (fun j b -> if j < 12 then inputs.(j) <- b) wrong;
  let y = Locked.eval lk ~key:wrong ~inputs in
  let y_ref = Locked.eval lk ~key:lk.Locked.correct_key ~inputs in
  check Alcotest.bool "flips at its own guess" true (y <> y_ref)

let test_antisat () =
  let lk = Antisat.lock base ~key_size:16 in
  check Alcotest.bool "equivalent under correct key" true
    (Locked.equivalent_under_key lk lk.Locked.correct_key);
  (* any key with equal halves is also correct (the Anti-SAT key class) *)
  let n = Array.length lk.Locked.correct_key / 2 in
  let rng = Prng.create 5 in
  let half = Prng.bool_array rng n in
  check Alcotest.bool "equal halves unlock" true
    (Locked.equivalent_under_key lk (Array.append half half));
  (* unequal halves corrupt *)
  let half2 = Array.copy half in
  half2.(0) <- not half2.(0);
  check Alcotest.bool "unequal halves corrupt" false
    (Locked.equivalent_under_key lk (Array.append half half2))

let test_fault_impact_ranking () =
  let scores = Fault_impact.scores base in
  check Alcotest.bool "non-negative" true (Array.for_all (fun s -> s >= 0) scores);
  (* inputs are never scored *)
  Array.iter
    (fun i -> check Alcotest.int "input unscored" 0 scores.(i))
    (N.inputs base)

let test_top_sites_distinct () =
  let sites = Fault_impact.top_sites base ~count:20 in
  check Alcotest.int "requested count" 20 (Array.length sites);
  let sorted = Array.copy sites in
  Array.sort compare sorted;
  let dups = ref 0 in
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then incr dups
  done;
  check Alcotest.int "distinct" 0 !dups

let test_top_sites_avoid_critical () =
  let slack = N.slacks base in
  let sites = Fault_impact.top_sites ~min_slack:2 base ~count:8 in
  (* with plenty of candidates, picked sites should be off-critical *)
  Array.iter
    (fun s -> check Alcotest.bool "off critical" true (slack.(s) >= 2))
    sites

let prop_weighted_equivalence =
  qtest ~count:15 "weighted locking is invisible under the correct key"
    seed_gen (fun seed ->
      let nl = random_netlist ~inputs:12 ~outputs:8 ~gates:100 seed in
      let lk = Weighted.lock nl ~key_size:9 ~ctrl_inputs:3 in
      Locked.equivalent_under_key lk lk.Locked.correct_key)

let prop_random_wrong_keys_corrupt =
  qtest ~count:15 "complement keys corrupt outputs" seed_gen (fun seed ->
      let nl = random_netlist ~inputs:12 ~outputs:8 ~gates:100 seed in
      let lk = Weighted.lock nl ~key_size:9 ~ctrl_inputs:3 in
      (* the complement actuates every key gate; 256 words make even
         low-observability sites show up *)
      let k = Array.map not lk.Locked.correct_key in
      Locked.hamming_vs_original ~words:256 lk k > 0.0)

let suite =
  ( "locking",
    [
      tc "weighted: correct key equivalence" `Quick test_weighted_correct_key;
      tc "weighted: wrong key corrupts" `Quick test_weighted_wrong_key_corrupts;
      tc "weighted: group actuation" `Quick test_weighted_single_group_actuation;
      tc "weighted: structure" `Quick test_weighted_structure;
      tc "weighted: key group math" `Quick test_key_groups_math;
      tc "weighted: too-small circuit" `Quick test_weighted_too_small_circuit;
      tc "random locking" `Quick test_random_ll;
      tc "sarlock point function" `Quick test_sarlock_point_function;
      tc "anti-sat key class" `Quick test_antisat;
      tc "fault-impact ranking" `Quick test_fault_impact_ranking;
      tc "top sites distinct" `Quick test_top_sites_distinct;
      tc "top sites avoid critical path" `Quick test_top_sites_avoid_critical;
      prop_weighted_equivalence;
      prop_random_wrong_keys_corrupt;
    ] )
