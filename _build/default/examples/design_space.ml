(** Design-space exploration for the OraP + weighted-locking stack:

    - control-gate width w vs output corruption and key-gate count (the
      paper picks w=3 for most circuits, w=5 for the largest two);
    - key-sequence length vs the XOR-tree payload a scenario-(d) Trojan
      must embed (the reason the key register is an LFSR and not a plain
      shift register, Section III-d). *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Locked = Orap_locking.Locked
module Lfsr = Orap_lfsr.Lfsr
module Symbolic = Orap_lfsr.Symbolic
module Prng = Orap_sim.Prng
module E = Orap_experiments

let () =
  let nl =
    Benchgen.generate
      { Benchgen.seed = 3; num_inputs = 96; num_outputs = 64; num_gates = 1500 }
  in
  let rng = Prng.create 8 in
  let key_size = 60 in
  let t1 =
    E.Report.create ~title:"Control-gate width vs corruption (key = 60 bits)"
      ~header:[ "w"; "Key gates"; "Actuation prob"; "HD random key (%)" ]
      ~aligns:[ E.Report.R; E.Report.R; E.Report.R; E.Report.R ]
  in
  List.iter
    (fun w ->
      let locked = Weighted.lock nl ~key_size ~ctrl_inputs:w in
      let hd_sum = ref 0.0 in
      let keys = 4 in
      for _ = 1 to keys do
        hd_sum :=
          !hd_sum
          +. Locked.hamming_vs_original locked (Prng.bool_array rng key_size)
      done;
      E.Report.add_row t1
        [ E.Report.d w;
          E.Report.d (Weighted.num_key_gates ~key_size ~ctrl_inputs:w);
          Printf.sprintf "%.3f" (1.0 -. (1.0 /. float_of_int (1 lsl w)));
          E.Report.f1 (!hd_sum /. float_of_int keys) ])
    [ 1; 2; 3; 5; 6 ];
  E.Report.print t1;

  (* LFSR vs shift register: seed mixing and the XOR-tree payload *)
  let t2 =
    E.Report.create
      ~title:"Scenario-(d) XOR-tree payload: LFSR vs plain shift register"
      ~header:
        [ "Seeds"; "Free-run"; "LFSR mean terms"; "LFSR XOR gates";
          "Shift-reg XOR gates" ]
      ~aligns:[ E.Report.R; E.Report.R; E.Report.R; E.Report.R; E.Report.R ]
  in
  let size = 64 in
  List.iter
    (fun (num_seeds, fr) ->
      let free_runs = List.init num_seeds (fun _ -> fr) in
      let lfsr = Lfsr.create ~size () in
      let exprs = Symbolic.of_schedule lfsr ~num_seeds ~free_runs in
      (* a shift register = no feedback taps *)
      let plain =
        Lfsr.create ~taps:(Array.make size false) ~size ()
      in
      let exprs_plain = Symbolic.of_schedule plain ~num_seeds ~free_runs in
      E.Report.add_row t2
        [ E.Report.d num_seeds; E.Report.d fr;
          E.Report.f1 (Symbolic.mean_terms exprs);
          E.Report.d (Symbolic.xor_tree_gates exprs);
          E.Report.d (Symbolic.xor_tree_gates exprs_plain) ])
    [ (2, 0); (2, 8); (4, 8); (8, 16); (8, 64) ];
  E.Report.print t2;
  print_endline
    "\nThe LFSR's feedback mixes every seed into long linear expressions;\n\
     a plain shift register leaves each cell a single seed bit, making the\n\
     XOR-tree Trojan almost free. This is Section III-d's design argument."
