examples/foundry_trojan.ml: List Orap_benchgen Orap_core Orap_experiments Orap_locking Printf
