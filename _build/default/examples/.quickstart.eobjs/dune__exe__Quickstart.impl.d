examples/quickstart.ml: Array Orap_attacks Orap_benchgen Orap_core Orap_dft Orap_locking Orap_netlist Printf
