examples/design_space.ml: Array List Orap_benchgen Orap_experiments Orap_lfsr Orap_locking Orap_netlist Orap_sim Printf
