examples/quickstart.mli:
