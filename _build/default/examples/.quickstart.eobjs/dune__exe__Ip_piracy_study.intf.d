examples/ip_piracy_study.mli:
