examples/testability_study.mli:
