examples/foundry_trojan.mli:
