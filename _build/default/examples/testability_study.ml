(** Testability study (the Table II question): does testing the chip locked
    hurt manufacturing test?

    Because the key register sits in the scan chains, ATPG may drive the
    key inputs freely, so the key gates act as test points; coverage goes
    UP and fewer faults end up redundant/aborted.  The study also sweeps
    the PODEM backtrack limit to show where aborted faults come from. *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Locked = Orap_locking.Locked
module Atpg = Orap_atpg.Atpg
module E = Orap_experiments

let () =
  let profile =
    match Benchgen.find_profile "b20" with
    | Some p -> Benchgen.scale ~factor:12 p
    | None -> assert false
  in
  let nl = Benchgen.of_profile profile in
  let locked =
    Weighted.lock nl ~key_size:profile.Benchgen.lfsr_size ~ctrl_inputs:3
  in
  Printf.printf "circuit %s: %d gates original, %d protected (key %d)\n\n"
    profile.Benchgen.name (N.gate_count nl)
    (N.gate_count locked.Locked.netlist)
    (Locked.key_size locked);
  let table =
    E.Report.create ~title:"ATPG: original vs protected, backtrack-limit sweep"
      ~header:
        [ "Backtrack limit"; "Orig FC (%)"; "Orig Red+Abrt"; "Prot FC (%)";
          "Prot Red+Abrt" ]
      ~aligns:[ E.Report.R; E.Report.R; E.Report.R; E.Report.R; E.Report.R ]
  in
  List.iter
    (fun limit ->
      let ro = Atpg.run ~backtrack_limit:limit nl in
      let rp = Atpg.run ~backtrack_limit:limit locked.Locked.netlist in
      E.Report.add_row table
        [ E.Report.d limit;
          E.Report.f2 (Atpg.coverage ro);
          E.Report.d (Atpg.redundant_plus_aborted ro);
          E.Report.f2 (Atpg.coverage rp);
          E.Report.d (Atpg.redundant_plus_aborted rp) ])
    [ 8; 32; 128 ];
  E.Report.print table;
  print_endline
    "\nThe protected circuit dominates at every effort level: scannable key\n\
     inputs give the ATPG extra controllability exactly where the key gates\n\
     were inserted (high fault-impact wires)."
