(** Foundry-Trojan study: the Section III threat model end to end.

    An untrusted foundry fabricates OraP-protected chips with each of the
    five Trojan scenarios, buys an activated part from the open market and
    tries to reach the oracle.  For every scenario the study reports whether
    the oracle was obtained, the payload the Trojan had to embed, and
    whether side-channel screening would expose it — plus a payload sweep
    over key size showing how the defence scales. *)

module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Orap = Orap_core.Orap
module Threat = Orap_core.Threat
module E = Orap_experiments

let () =
  let fx = E.Security.make_fixture ~seed:9 ~num_gates:600 ~key_size:48 () in
  E.Report.print (E.Trojan_table.report (E.Trojan_table.run fx));

  (* payload sweep: scenario payloads vs key-register size *)
  let sweep =
    E.Report.create ~title:"Trojan payload vs key size (NAND2-equivalents)"
      ~header:[ "Key size"; "(a) resets"; "(b) bypass"; "(c) shadow"; "(d) XOR trees" ]
      ~aligns:[ E.Report.R; E.Report.R; E.Report.R; E.Report.R; E.Report.R ]
  in
  List.iter
    (fun key_size ->
      let nl =
        Benchgen.generate
          { Benchgen.seed = 10; num_inputs = 64; num_outputs = 48;
            num_gates = 8 * key_size }
      in
      let locked = Weighted.lock nl ~key_size ~ctrl_inputs:3 in
      let design =
        Orap.protect
          ~config:(Orap.default_config ~kind:Orap.Basic ~num_ffs:24 ())
          locked
      in
      let p sc = Threat.payload design sc in
      E.Report.add_row sweep
        [ E.Report.d key_size;
          E.Report.f1 (p Threat.Suppress_cell_resets);
          E.Report.f1 (p Threat.Exclude_lfsr_from_scan);
          E.Report.f1 (p Threat.Shadow_register);
          E.Report.f1 (p Threat.Xor_tree_key) ])
    [ 32; 64; 128; 256 ];
  E.Report.print sweep;
  Printf.printf
    "\nPaper reference: a 128-bit key register makes scenario (a) cost\n\
     roughly %.0f NAND2 gates; every payload above the side-channel\n\
     threshold (%.0f) is detectable after activation [25].\n"
    (E.Trojan_table.paper_reference_payload_a ~key_size:128)
    Threat.default_detection_threshold
