lib/dft/pulse_gen.ml:
