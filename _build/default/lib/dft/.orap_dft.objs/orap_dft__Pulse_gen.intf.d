lib/dft/pulse_gen.mli:
