lib/dft/scan.mli:
