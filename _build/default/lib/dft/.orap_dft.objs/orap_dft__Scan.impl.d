lib/dft/scan.ml: Array List
