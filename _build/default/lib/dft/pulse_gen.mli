(** Behavioural model of the per-cell pulse generator of Fig. 2: an
    inverter-chain edge detector emitting a 0-pulse (an asynchronous clear
    for the attached key-register cell) on every 0-to-1 transition of
    [scan_enable]. *)

type t

(** [create ?inverter_chain ()] — chain length must be odd (default 3). *)
val create : ?inverter_chain:int -> unit -> t

(** Modelled pulse width, in inverter delays. *)
val pulse_width : t -> int

(** Feed the current [scan_enable] level; [true] = the reset pulse fires. *)
val observe : t -> scan_enable:bool -> bool

(** Gate-equivalent cost (the NAND2; inverters are not counted). *)
val gate_cost : int
