(** Behavioural model of the per-cell pulse generator of Fig. 2: an
    inverter-chain edge detector whose output is constantly 1 except for a
    short 0-pulse when [scan_enable] makes a 0-to-1 transition.  The pulse
    asynchronously clears the attached key-register flip-flop. *)

type t = {
  inverter_chain : int;  (** chain length; sets the (modelled) pulse width *)
  mutable prev_scan_enable : bool;
}

let create ?(inverter_chain = 3) () =
  if inverter_chain < 1 || inverter_chain mod 2 = 0 then
    invalid_arg "Pulse_gen.create: odd chain length required";
  { inverter_chain; prev_scan_enable = false }

(** Pulse width in inverter delays (for reporting; behaviourally the pulse
    is treated as wide enough to clear the flip-flop). *)
let pulse_width t = t.inverter_chain

(** Feed the current [scan_enable] level; returns [true] when the generator
    emits its reset pulse (a rising edge was seen). *)
let observe t ~scan_enable =
  let fires = scan_enable && not t.prev_scan_enable in
  t.prev_scan_enable <- scan_enable;
  fires

(** Gate-equivalent cost of one pulse generator, counted as the paper does
    (inverters excluded): the NAND2. *)
let gate_cost = 1
