(** Scan-chain structure: an ordering of the circuit's state flip-flops and
    the key-register (LFSR) cells, which OraP deliberately places in the
    chains.  Shift direction: scan-in -> cell 0 -> ... -> scan-out. *)

type cell = Key of int  (** LFSR cell index *) | State of int  (** FF index *)

type style =
  | Key_first  (** all LFSR cells ahead of the state FFs *)
  | Interleaved  (** paper guideline: maximises the scenario-(b) payload *)
  | Key_last  (** anti-pattern, kept for the threat experiments *)

type t

val build : ?style:style -> num_key:int -> num_state:int -> unit -> t
val order : t -> cell array
val length : t -> int

(** One shift cycle over concrete cell contents; returns the scan-out bit. *)
val shift :
  t ->
  read:(cell -> bool) ->
  write:(cell -> bool -> unit) ->
  scan_in:bool ->
  bool

(** Chain positions of the key cells. *)
val key_positions : t -> int list

(** Key cells immediately followed by a state FF (or ending the chain):
    each boundary costs the scenario-(b) Trojan one bypass MUX. *)
val bypass_mux_count : t -> int
