(** Scan-chain structure.  A chain is an ordering of scannable cells — the
    circuit's state flip-flops and the key-register (LFSR) cells, which the
    OraP scheme deliberately places in the chains (Section II).

    Shift direction: [scan-in -> cell 0 -> cell 1 -> ... -> scan-out]. *)

type cell = Key of int  (** LFSR cell index *) | State of int  (** FF index *)

type style =
  | Key_first  (** all LFSR cells ahead of the state FFs (paper guideline) *)
  | Interleaved
      (** LFSR cells interleaved with state FFs (paper guideline for chains
          holding several LFSR cells: maximises scenario-(b) payload) *)
  | Key_last  (** anti-pattern, kept for the threat experiments *)

type t = { order : cell array }

let order t = t.order
let length t = Array.length t.order

let build ?(style = Interleaved) ~num_key ~num_state () : t =
  let keys = List.init num_key (fun i -> Key i) in
  let states = List.init num_state (fun i -> State i) in
  let order =
    match style with
    | Key_first -> keys @ states
    | Key_last -> states @ keys
    | Interleaved ->
      if num_key = 0 then states
      else begin
        (* spread the key cells evenly through the chain *)
        let stride = max 1 (num_state / max 1 num_key) in
        let rec weave ks ss acc count =
          match (ks, ss) with
          | [], ss -> List.rev_append acc ss
          | ks, [] -> List.rev_append acc ks
          | k :: ks', s :: ss' ->
            if count mod (stride + 1) = 0 then weave ks' (s :: ss') (k :: acc) (count + 1)
            else weave (k :: ks') ss' (s :: acc) (count + 1)
        in
        weave keys states [] 0
      end
  in
  { order = Array.of_list order }

(** One shift cycle over concrete cell contents.  [read]/[write] access the
    underlying registers; returns the scan-out bit (the last cell's previous
    content). *)
let shift t ~(read : cell -> bool) ~(write : cell -> bool -> unit)
    ~(scan_in : bool) : bool =
  let n = Array.length t.order in
  let out = read t.order.(n - 1) in
  for i = n - 1 downto 1 do
    write t.order.(i) (read t.order.(i - 1))
  done;
  write t.order.(0) scan_in;
  out

(** Positions of the key cells in the chain (for threat analysis: how many
    bypass multiplexers scenario (b) needs). *)
let key_positions t =
  let acc = ref [] in
  Array.iteri
    (fun i c -> match c with Key _ -> acc := i :: !acc | State _ -> ())
    t.order;
  List.rev !acc

(** Number of key cells that are immediately followed in the chain by a
    state FF — each such boundary forces one Trojan bypass MUX in
    scenario (b). *)
let bypass_mux_count t =
  let n = Array.length t.order in
  let count = ref 0 in
  for i = 0 to n - 1 do
    match t.order.(i) with
    | Key _ ->
      if i = n - 1 then incr count
      else (match t.order.(i + 1) with State _ -> incr count | Key _ -> ())
    | State _ -> ()
  done;
  !count
