(** Literals: variable index [v >= 0] packed with a sign bit, Minisat-style.
    [2*v] is the positive literal, [2*v + 1] the negative one. *)

type t = int

let of_var ?(negated = false) v = (2 * v) + if negated then 1 else 0
let pos v = 2 * v
let neg v = (2 * v) + 1
let var (l : t) = l lsr 1
let is_neg (l : t) = l land 1 = 1
let negate (l : t) = l lxor 1

let to_string (l : t) =
  if is_neg l then "-" ^ string_of_int (var l + 1) else string_of_int (var l + 1)

(** DIMACS integer: 1-based, negative for negated literals. *)
let to_dimacs (l : t) = if is_neg l then -(var l + 1) else var l + 1
let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: zero";
  if i > 0 then pos (i - 1) else neg (-i - 1)
