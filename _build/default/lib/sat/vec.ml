(** Growable int arrays, used pervasively inside the solver to avoid the
    allocation churn of lists on hot paths. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max 1 capacity) 0; len = 0 }
let length v = v.len
let get v i = v.data.(i)
let set v i x = v.data.(i) <- x
let clear v = v.len <- 0

let push v x =
  if v.len = Array.length v.data then begin
    let data = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  v.len <- v.len - 1;
  v.data.(v.len)

let last v = v.data.(v.len - 1)
let shrink v n = v.len <- n

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

(** Remove the first occurrence of [x] (order not preserved). *)
let remove v x =
  let rec find i = if i >= v.len then -1 else if v.data.(i) = x then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    v.data.(i) <- v.data.(v.len - 1);
    v.len <- v.len - 1
  end
