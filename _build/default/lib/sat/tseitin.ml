(** Tseitin encoding of a combinational netlist into solver clauses. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate

(** [encode solver t ~input_var] creates one solver variable per netlist node
    and asserts the gate-consistency clauses.  Input nodes reuse the variable
    provided by [input_var pos] ([pos] is the position of the node in
    [N.inputs t]); pass [fun _ -> Solver.new_var solver]-style functions to
    share variables between circuit copies (the SAT-attack miter shares the
    primary inputs but not the key inputs).  Returns the variable of every
    node. *)
let encode (solver : Solver.t) (t : N.t) ~(input_var : int -> int) : int array =
  let n = N.num_nodes t in
  let vars = Array.make n (-1) in
  let input_pos = ref 0 in
  let add lits = ignore (Solver.add_clause solver lits) in
  for i = 0 to n - 1 do
    match N.kind t i with
    | Gate.Input ->
      vars.(i) <- input_var !input_pos;
      incr input_pos
    | k ->
      let v = Solver.new_var solver in
      vars.(i) <- v;
      let fan = Array.map (fun f -> vars.(f)) (N.fanins t i) in
      let out_pos = Lit.pos v and out_neg = Lit.neg v in
      (* encode AND-like gates with an optionally negated output literal *)
      let and_like ~neg_out =
        let o_t = if neg_out then out_neg else out_pos in
        let o_f = Lit.negate o_t in
        (* o -> each fanin true *)
        Array.iter (fun f -> add [ o_f; Lit.pos f ]) fan;
        (* all fanins true -> o *)
        add (o_t :: Array.to_list (Array.map Lit.neg fan))
      in
      let or_like ~neg_out =
        let o_t = if neg_out then out_neg else out_pos in
        let o_f = Lit.negate o_t in
        Array.iter (fun f -> add [ o_t; Lit.neg f ]) fan;
        add (o_f :: Array.to_list (Array.map Lit.pos fan))
      in
      (* v_out <-> a xor b, for given literal vars *)
      let xor2 v_out a b =
        add [ Lit.neg v_out; Lit.pos a; Lit.pos b ];
        add [ Lit.neg v_out; Lit.neg a; Lit.neg b ];
        add [ Lit.pos v_out; Lit.pos a; Lit.neg b ];
        add [ Lit.pos v_out; Lit.neg a; Lit.pos b ]
      in
      let equal_vars a b =
        add [ Lit.neg a; Lit.pos b ];
        add [ Lit.pos a; Lit.neg b ]
      in
      let xor_chain ~neg_out =
        (* fold fanins through aux vars; final equals v (or its negation) *)
        if Array.length fan = 1 then begin
          if neg_out then begin
            add [ Lit.neg v; Lit.neg fan.(0) ];
            add [ Lit.pos v; Lit.pos fan.(0) ]
          end
          else equal_vars v fan.(0)
        end
        else begin
          let acc = ref fan.(0) in
          for j = 1 to Array.length fan - 2 do
            let aux = Solver.new_var solver in
            xor2 aux !acc fan.(j);
            acc := aux
          done;
          let last = fan.(Array.length fan - 1) in
          if neg_out then begin
            (* v = not (acc xor last)  <=>  (not v) = acc xor last *)
            let aux = Solver.new_var solver in
            xor2 aux !acc last;
            add [ Lit.neg v; Lit.neg aux ];
            add [ Lit.pos v; Lit.pos aux ]
          end
          else xor2 v !acc last
        end
      in
      (match k with
      | Gate.Input -> assert false
      | Gate.Const0 -> add [ out_neg ]
      | Gate.Const1 -> add [ out_pos ]
      | Gate.Buf -> equal_vars v fan.(0)
      | Gate.Not ->
        add [ out_neg; Lit.neg fan.(0) ];
        add [ out_pos; Lit.pos fan.(0) ]
      | Gate.And -> and_like ~neg_out:false
      | Gate.Nand -> and_like ~neg_out:true
      | Gate.Or -> or_like ~neg_out:false
      | Gate.Nor -> or_like ~neg_out:true
      | Gate.Xor -> xor_chain ~neg_out:false
      | Gate.Xnor -> xor_chain ~neg_out:true
      | Gate.Mux ->
        let sel = fan.(0) and a = fan.(1) and b = fan.(2) in
        add [ Lit.neg v; Lit.pos sel; Lit.pos a ];
        add [ Lit.pos v; Lit.pos sel; Lit.neg a ];
        add [ Lit.neg v; Lit.neg sel; Lit.pos b ];
        add [ Lit.pos v; Lit.neg sel; Lit.neg b ])
  done;
  vars

(** Variables of the primary outputs given the node-variable map. *)
let output_vars (t : N.t) (vars : int array) : int array =
  Array.map (fun o -> vars.(o)) (N.outputs t)
