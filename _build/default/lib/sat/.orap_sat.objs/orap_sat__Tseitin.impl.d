lib/sat/tseitin.ml: Array Lit Orap_netlist Solver
