lib/sat/lit.ml:
