(** DIMACS CNF import/export, mainly for debugging and interop. *)

type cnf = { num_vars : int; clauses : int list list (* dimacs ints *) }

let parse (text : string) : cnf =
  let num_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> ()
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some i ->
      if abs i > !num_vars then num_vars := abs i;
      current := i :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> num_vars := max !num_vars (int_of_string nv)
        | _ -> ()
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter handle_token)
    (String.split_on_char '\n' text);
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { num_vars = !num_vars; clauses = List.rev !clauses }

let print (c : cnf) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" c.num_vars (List.length c.clauses));
  List.iter
    (fun clause ->
      List.iter (fun i -> Buffer.add_string buf (string_of_int i); Buffer.add_char buf ' ') clause;
      Buffer.add_string buf "0\n")
    c.clauses;
  Buffer.contents buf

(** Load a parsed CNF into a fresh solver; returns (solver, var array) where
    [vars.(i)] is the solver variable for DIMACS variable [i+1]. *)
let to_solver (c : cnf) : Solver.t * int array =
  let s = Solver.create () in
  let vars = Solver.new_vars s c.num_vars in
  List.iter
    (fun clause ->
      let lits =
        List.map
          (fun i -> Lit.of_var ~negated:(i < 0) vars.(abs i - 1))
          clause
      in
      ignore (Solver.add_clause s lits))
    c.clauses;
  (s, vars)
