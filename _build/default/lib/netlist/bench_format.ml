(** ISCAS'89 [.bench] reader and writer.

    Sequential elements ([DFF]) are handled the way ATPG tools handle full
    scan: each flip-flop output becomes a pseudo primary input and each
    flip-flop data input becomes a pseudo primary output, yielding the
    combinational core the paper's experiments operate on. *)

type source = {
  netlist : Netlist.t;
  primary_input_names : string list;
  primary_output_names : string list;
  flip_flops : (string * string) list;
      (** (state name = DFF output, next-state signal = DFF input) *)
}

exception Parse_error of int * string

let errorf line fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

type stmt =
  | S_input of string
  | S_output of string
  | S_assign of string * string * string list  (* target, gate, args *)

let strip s = String.trim s

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if line = "" then None
  else
    let paren =
      match String.index_opt line '(' with
      | Some i -> i
      | None -> errorf lineno "expected '(' in %S" line
    in
    let close =
      match String.rindex_opt line ')' with
      | Some i when i > paren -> i
      | Some _ | None -> errorf lineno "expected ')' in %S" line
    in
    let head = strip (String.sub line 0 paren) in
    let args_str = String.sub line (paren + 1) (close - paren - 1) in
    let args = List.map strip (String.split_on_char ',' args_str) in
    let args = List.filter (fun s -> s <> "") args in
    match String.uppercase_ascii head with
    | "INPUT" -> (
      match args with
      | [ a ] -> Some (S_input a)
      | _ -> errorf lineno "INPUT takes one argument")
    | "OUTPUT" -> (
      match args with
      | [ a ] -> Some (S_output a)
      | _ -> errorf lineno "OUTPUT takes one argument")
    | _ -> (
      match String.index_opt head '=' with
      | None -> errorf lineno "expected assignment in %S" line
      | Some eq ->
        let target = strip (String.sub head 0 eq) in
        let gate = strip (String.sub head (eq + 1) (paren - eq - 1)) in
        if target = "" || gate = "" then errorf lineno "bad assignment %S" line;
        Some (S_assign (target, gate, args)))

(** Parse a whole [.bench] text. *)
let parse (text : string) : source =
  let stmts = ref [] in
  List.iteri
    (fun i line ->
      match parse_line (i + 1) line with
      | Some s -> stmts := s :: !stmts
      | None -> ())
    (String.split_on_char '\n' text);
  let stmts = List.rev !stmts in
  let pis = ref [] and pos = ref [] in
  let defs : (string, string * string list) Hashtbl.t = Hashtbl.create 97 in
  let order = ref [] in
  List.iter
    (function
      | S_input a -> pis := a :: !pis
      | S_output a -> pos := a :: !pos
      | S_assign (t, g, args) ->
        if Hashtbl.mem defs t then errorf 0 "signal %S defined twice" t;
        Hashtbl.replace defs t (g, args);
        order := t :: !order)
    stmts;
  let pis = List.rev !pis and pos = List.rev !pos in
  let ffs = ref [] in
  Hashtbl.iter
    (fun t (g, args) ->
      match (String.uppercase_ascii g, args) with
      | "DFF", [ d ] -> ffs := (t, d) :: !ffs
      | "DFF", _ -> errorf 0 "DFF %S must have one input" t
      | _ -> ())
    defs;
  let ffs = List.sort compare !ffs in
  let b = Netlist.Builder.create ~size_hint:(Hashtbl.length defs) () in
  let ids : (string, int) Hashtbl.t = Hashtbl.create 97 in
  (* real PIs first, then FF outputs as pseudo-PIs, in stable order *)
  List.iter
    (fun a -> Hashtbl.replace ids a (Netlist.Builder.add_input ~name:a b))
    pis;
  List.iter
    (fun (q, _) -> Hashtbl.replace ids q (Netlist.Builder.add_input ~name:q b))
    ffs;
  let rec build name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> (
      match Hashtbl.find_opt defs name with
      | None -> errorf 0 "undefined signal %S" name
      | Some (g, args) ->
        let kind =
          match Gate.of_string g with
          | Some k -> k
          | None -> errorf 0 "unknown gate %S" g
        in
        (* mark as in-progress to catch combinational cycles *)
        Hashtbl.replace ids name (-1);
        let fan = Array.of_list (List.map build args) in
        if Array.exists (fun f -> f < 0) fan then
          errorf 0 "combinational cycle through %S" name;
        let id = Netlist.Builder.add_node ~name b kind fan in
        Hashtbl.replace ids name id;
        id)
  in
  let po_ids = List.map build pos in
  let ff_d_ids = List.map (fun (_, d) -> build d) ffs in
  List.iter (Netlist.Builder.mark_output b) po_ids;
  List.iter (Netlist.Builder.mark_output b) ff_d_ids;
  {
    netlist = Netlist.Builder.finish b;
    primary_input_names = pis;
    primary_output_names = pos;
    flip_flops = ffs;
  }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

(** Print a purely combinational netlist in [.bench] syntax. *)
let print (t : Netlist.t) : string =
  let buf = Buffer.create 4096 in
  let name i = Netlist.node_name t i in
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (name i)))
    (Netlist.inputs t);
  Array.iter
    (fun o -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (name o)))
    (Netlist.outputs t);
  for i = 0 to Netlist.num_nodes t - 1 do
    match Netlist.kind t i with
    | Gate.Input -> ()
    | Gate.Const0 ->
      (* .bench has no constants: encode as XOR(x, x) over the first input *)
      Buffer.add_string buf
        (Printf.sprintf "%s = XOR(%s, %s)\n" (name i)
           (name (Netlist.inputs t).(0))
           (name (Netlist.inputs t).(0)))
    | Gate.Const1 ->
      Buffer.add_string buf
        (Printf.sprintf "%s = XNOR(%s, %s)\n" (name i)
           (name (Netlist.inputs t).(0))
           (name (Netlist.inputs t).(0)))
    | Gate.Mux ->
      let f = Netlist.fanins t i in
      (* sel=0 -> a, sel=1 -> b, expanded to AND/OR/NOT form is not needed:
         keep a MUX line (accepted by several tools); document the order *)
      Buffer.add_string buf
        (Printf.sprintf "%s = MUX(%s, %s, %s)\n" (name i) (name f.(0))
           (name f.(1)) (name f.(2)))
    | k ->
      let f = Netlist.fanins t i in
      let args =
        String.concat ", " (Array.to_list (Array.map name f))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" (name i) (Gate.to_string k) args)
  done;
  Buffer.contents buf

let print_to_file path t =
  let oc = open_out path in
  output_string oc (print t);
  close_out oc
