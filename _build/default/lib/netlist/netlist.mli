(** Gate-level combinational netlist.

    Nodes carry dense integer ids and are stored in topological order by
    construction: a node's fanins must already exist when it is added, so
    every analysis is a single forward (or backward) array sweep. *)

type t

exception Invalid of string

(** {1 Construction} *)

module Builder : sig
  type builder

  val create : ?size_hint:int -> unit -> builder
  val length : builder -> int

  (** Append a node; fanins must reference existing ids.  Raises [Invalid]
      on arity or topology violations, and on duplicate names. *)
  val add_node : ?name:string -> builder -> Gate.kind -> int array -> int

  val add_input : ?name:string -> builder -> int
  val mark_output : builder -> int -> unit
  val finish : builder -> t
end

(** {1 Access} *)

val num_nodes : t -> int
val num_inputs : t -> int
val num_outputs : t -> int
val kind : t -> int -> Gate.kind
val fanins : t -> int -> int array

(** Ids of the [Input] nodes, in declaration order. *)
val inputs : t -> int array

(** Ids of the nodes exposed as primary outputs (repetitions allowed). *)
val outputs : t -> int array

val name : t -> int -> string option

(** A printable name: the declared one, or ["n<id>"]. *)
val node_name : t -> int -> string

val find : t -> string -> int option

(** {1 Analyses} *)

(** Fanout adjacency (output markings not included). *)
val fanouts : t -> int array array

(** Logic level per node; inverters and buffers are transparent. *)
val levels : t -> int array

(** Longest-path depth in logic levels. *)
val depth : t -> int

(** Gate count excluding inverters and buffers (the paper's "# Gates"). *)
val gate_count : t -> int

(** All logic nodes including inverters and buffers. *)
val node_count : t -> int

(** Transitive-fanin membership of the given roots (inclusive). *)
val fanin_cone : t -> int list -> bool array

(** Timing slack per node ([max_int] for dangling nodes). *)
val slacks : t -> int array

(** Nodes on at least one maximum-length path. *)
val critical_nodes : t -> bool array

(** Structural sanity check; raises [Invalid] on malformed netlists. *)
val validate : t -> unit

(** [copy_into builder t map] appends every node of [t] into [builder],
    rewriting fanins through [map].  With [map_inputs = false] the images
    of the input nodes must be preset in [map]. *)
val copy_into : ?map_inputs:bool -> Builder.builder -> t -> int array -> int array
