(** Gate vocabulary of the netlist IR (ISCAS [.bench] plus multi-input
    associative gates and a 2-to-1 multiplexer with fanins [sel; a; b],
    selecting [a] when [sel] = 0). *)

type kind =
  | Input
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Mux

val to_string : kind -> string
val of_string : string -> kind option

(** Arity constraint: [`Exactly n] or [`At_least n]. *)
val arity : kind -> [ `Exactly of int | `At_least of int ]

val arity_ok : kind -> int -> bool

(** Gates that carry no logic (excluded from the paper's gate counts). *)
val is_inverter_like : kind -> bool

(** Evaluation over 64 parallel patterns packed in an [int64]. *)
val eval_word : kind -> int64 array -> int64

(** Single-pattern evaluation. *)
val eval_bool : kind -> bool array -> bool
