(** Graphviz export, for debugging small netlists. *)

let shape = function
  | Gate.Input -> "invtriangle"
  | Gate.Const0 | Gate.Const1 -> "square"
  | Gate.Buf | Gate.Not -> "circle"
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor
  | Gate.Mux ->
    "box"

let of_netlist ?(graph_name = "netlist") (t : Netlist.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" graph_name);
  for i = 0 to Netlist.num_nodes t - 1 do
    let k = Netlist.kind t i in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\\n%s\" shape=%s];\n" i
         (Netlist.node_name t i) (Gate.to_string k) (shape k));
    Array.iter
      (fun f -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" f i))
      (Netlist.fanins t i)
  done;
  Array.iteri
    (fun j o ->
      Buffer.add_string buf
        (Printf.sprintf "  po%d [label=\"PO%d\" shape=triangle];\n  n%d -> po%d;\n"
           j j o j))
    (Netlist.outputs t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
