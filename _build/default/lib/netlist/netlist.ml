(** Gate-level combinational netlist.

    Nodes are identified by dense integer ids and stored in topological order
    by construction: a node's fanins must already exist when the node is
    added.  Every analysis over the netlist is therefore a single forward (or
    backward) array sweep. *)

type t = {
  kinds : Gate.kind array;
  fanins : int array array;
  inputs : int array;  (** ids of [Input] nodes, in declaration order *)
  outputs : int array;  (** ids of nodes exposed as primary outputs *)
  names : (int, string) Hashtbl.t;
  ids : (string, int) Hashtbl.t;
}

let num_nodes t = Array.length t.kinds
let num_inputs t = Array.length t.inputs
let num_outputs t = Array.length t.outputs
let kind t i = t.kinds.(i)
let fanins t i = t.fanins.(i)
let inputs t = t.inputs
let outputs t = t.outputs

let name t i = Hashtbl.find_opt t.names i

let node_name t i =
  match name t i with Some s -> s | None -> Printf.sprintf "n%d" i

let find t s = Hashtbl.find_opt t.ids s

exception Invalid of string

let invalidf fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

module Builder = struct
  type builder = {
    mutable b_kinds : Gate.kind array;
    mutable b_fanins : int array array;
    mutable b_len : int;
    mutable b_inputs : int list;  (* reversed *)
    mutable b_outputs : int list;  (* reversed *)
    b_names : (int, string) Hashtbl.t;
    b_ids : (string, int) Hashtbl.t;
  }

  let create ?(size_hint = 64) () =
    let n = max 16 size_hint in
    {
      b_kinds = Array.make n Gate.Input;
      b_fanins = Array.make n [||];
      b_len = 0;
      b_inputs = [];
      b_outputs = [];
      b_names = Hashtbl.create 97;
      b_ids = Hashtbl.create 97;
    }

  let length b = b.b_len

  let ensure b =
    if b.b_len = Array.length b.b_kinds then begin
      let n = 2 * b.b_len in
      let kinds = Array.make n Gate.Input in
      Array.blit b.b_kinds 0 kinds 0 b.b_len;
      let fanins = Array.make n [||] in
      Array.blit b.b_fanins 0 fanins 0 b.b_len;
      b.b_kinds <- kinds;
      b.b_fanins <- fanins
    end

  let set_name b id s =
    if Hashtbl.mem b.b_ids s then invalidf "duplicate node name %S" s;
    Hashtbl.replace b.b_names id s;
    Hashtbl.replace b.b_ids s id

  let add_node ?name b kind fanins =
    if not (Gate.arity_ok kind (Array.length fanins)) then
      invalidf "gate %s cannot take %d fanins" (Gate.to_string kind)
        (Array.length fanins);
    Array.iter
      (fun f ->
        if f < 0 || f >= b.b_len then
          invalidf "fanin %d out of range (next id %d): not topological" f
            b.b_len)
      fanins;
    ensure b;
    let id = b.b_len in
    b.b_kinds.(id) <- kind;
    b.b_fanins.(id) <- fanins;
    b.b_len <- id + 1;
    (match kind with
    | Gate.Input -> b.b_inputs <- id :: b.b_inputs
    | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not | Gate.And | Gate.Nand
    | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux ->
      ());
    (match name with Some s -> set_name b id s | None -> ());
    id

  let add_input ?name b = add_node ?name b Gate.Input [||]
  let mark_output b id = b.b_outputs <- id :: b.b_outputs

  let finish b =
    {
      kinds = Array.sub b.b_kinds 0 b.b_len;
      fanins = Array.sub b.b_fanins 0 b.b_len;
      inputs = Array.of_list (List.rev b.b_inputs);
      outputs = Array.of_list (List.rev b.b_outputs);
      names = b.b_names;
      ids = b.b_ids;
    }
end

(** Fanout adjacency: [fanouts t].(i) lists the node ids reading node [i].
    Output markings are not included. *)
let fanouts t =
  let n = num_nodes t in
  let counts = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter (fun f -> counts.(f) <- counts.(f) + 1) t.fanins.(i)
  done;
  let out = Array.init n (fun i -> Array.make counts.(i) 0) in
  let fill = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter
      (fun f ->
        out.(f).(fill.(f)) <- i;
        fill.(f) <- fill.(f) + 1)
      t.fanins.(i)
  done;
  out

(** Logic level of every node.  Inverters and buffers are transparent (level
    0 contribution), matching the convention of counting levels of "real"
    gates only. *)
let levels t =
  let n = num_nodes t in
  let lev = Array.make n 0 in
  for i = 0 to n - 1 do
    let fan = t.fanins.(i) in
    let m = ref 0 in
    Array.iter (fun f -> if lev.(f) > !m then m := lev.(f)) fan;
    lev.(i) <-
      (match t.kinds.(i) with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> 0
      | Gate.Buf | Gate.Not -> !m
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor
      | Gate.Mux ->
        !m + 1)
  done;
  lev

(** Longest-path depth of the netlist, in logic levels. *)
let depth t =
  let lev = levels t in
  Array.fold_left (fun acc o -> max acc lev.(o)) 0 t.outputs

(** Gate count excluding inverters and buffers (the paper's "# Gates"). *)
let gate_count t =
  let c = ref 0 in
  Array.iter
    (fun k ->
      match k with
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor
      | Gate.Mux ->
        incr c
      | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not -> ())
    t.kinds;
  !c

(** Count of all logic nodes including inverters and buffers. *)
let node_count t =
  let c = ref 0 in
  Array.iter
    (fun k -> match k with Gate.Input -> () | _ -> incr c)
    t.kinds;
  !c

(** Set of node ids in the transitive fanin cone of [roots] (inclusive). *)
let fanin_cone t roots =
  let seen = Array.make (num_nodes t) false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      Array.iter visit t.fanins.(i)
    end
  in
  List.iter visit roots;
  seen

(** Timing slack of every node: how many extra levels the node's path could
    absorb without increasing the circuit depth.  Dangling nodes get
    [max_int]. *)
let slacks t =
  let n = num_nodes t in
  let lev = levels t in
  let d = depth t in
  (* required time: latest level at which the node may settle while keeping
     depth [d] *)
  let req = Array.make n max_int in
  Array.iter (fun o -> req.(o) <- d) t.outputs;
  for i = n - 1 downto 0 do
    if req.(i) < max_int then begin
      let cost =
        match t.kinds.(i) with
        | Gate.Buf | Gate.Not | Gate.Input | Gate.Const0 | Gate.Const1 -> 0
        | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor
        | Gate.Mux ->
          1
      in
      Array.iter
        (fun f ->
          let r = req.(i) - cost in
          if r < req.(f) then req.(f) <- r)
        t.fanins.(i)
    end
  done;
  Array.init n (fun i ->
      if req.(i) = max_int then max_int else req.(i) - lev.(i))

(** Nodes lying on at least one maximum-length (critical) path. *)
let critical_nodes t =
  let s = slacks t in
  Array.map (fun x -> x = 0) s

(** Structural sanity check; raises [Invalid] on malformed netlists. *)
let validate t =
  let n = num_nodes t in
  for i = 0 to n - 1 do
    let fan = t.fanins.(i) in
    if not (Gate.arity_ok t.kinds.(i) (Array.length fan)) then
      invalidf "node %d: bad arity" i;
    Array.iter
      (fun f -> if f < 0 || f >= i then invalidf "node %d: fanin %d" i f)
      fan
  done;
  Array.iter
    (fun o -> if o < 0 || o >= n then invalidf "output id %d" o)
    t.outputs;
  Array.iteri
    (fun _ i ->
      if t.kinds.(i) <> Gate.Input then invalidf "input id %d not Input" i)
    t.inputs

(** [copy_into builder t map] appends every node of [t] into [builder],
    rewriting fanins through [map] (which must already contain the images of
    all [Input] nodes of [t] if [map_inputs] is [false]).  Returns the image
    array.  Node names are not copied (callers name what they need). *)
let copy_into ?(map_inputs = true) builder t (map : int array) =
  for i = 0 to num_nodes t - 1 do
    match t.kinds.(i) with
    | Gate.Input ->
      if map_inputs then map.(i) <- Builder.add_input builder
      else if map.(i) < 0 then invalidf "copy_into: unmapped input %d" i
    | k ->
      let fan = Array.map (fun f -> map.(f)) t.fanins.(i) in
      map.(i) <- Builder.add_node builder k fan
  done;
  map
