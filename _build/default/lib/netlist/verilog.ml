(** Structural Verilog writer (gate-level, primitive instantiations), for
    interoperability with commercial flows. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let wire_name (t : Netlist.t) i = sanitize (Netlist.node_name t i)

let of_netlist ?(module_name = "top") (t : Netlist.t) : string =
  let buf = Buffer.create 4096 in
  let inputs = Netlist.inputs t in
  let outputs = Netlist.outputs t in
  let out_name j = Printf.sprintf "po%d" j in
  let ports =
    Array.to_list (Array.map (wire_name t) inputs)
    @ List.init (Array.length outputs) out_name
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" (sanitize module_name)
       (String.concat ", " ports));
  Array.iter
    (fun i -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" (wire_name t i)))
    inputs;
  for j = 0 to Array.length outputs - 1 do
    Buffer.add_string buf (Printf.sprintf "  output %s;\n" (out_name j))
  done;
  for i = 0 to Netlist.num_nodes t - 1 do
    match Netlist.kind t i with
    | Gate.Input -> ()
    | _ -> Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (wire_name t i))
  done;
  let instance = ref 0 in
  let prim name out args =
    incr instance;
    Buffer.add_string buf
      (Printf.sprintf "  %s g%d(%s, %s);\n" name !instance out
         (String.concat ", " args))
  in
  for i = 0 to Netlist.num_nodes t - 1 do
    let out = wire_name t i in
    let args =
      Array.to_list (Array.map (wire_name t) (Netlist.fanins t i))
    in
    match Netlist.kind t i with
    | Gate.Input -> ()
    | Gate.Const0 -> Buffer.add_string buf (Printf.sprintf "  assign %s = 1'b0;\n" out)
    | Gate.Const1 -> Buffer.add_string buf (Printf.sprintf "  assign %s = 1'b1;\n" out)
    | Gate.Buf -> prim "buf" out args
    | Gate.Not -> prim "not" out args
    | Gate.And -> prim "and" out args
    | Gate.Nand -> prim "nand" out args
    | Gate.Or -> prim "or" out args
    | Gate.Nor -> prim "nor" out args
    | Gate.Xor -> prim "xor" out args
    | Gate.Xnor -> prim "xnor" out args
    | Gate.Mux ->
      (match args with
      | [ sel; a; b ] ->
        Buffer.add_string buf
          (Printf.sprintf "  assign %s = %s ? %s : %s;\n" out sel b a)
      | _ -> assert false)
  done;
  Array.iteri
    (fun j o ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (out_name j) (wire_name t o)))
    outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let print_to_file path ?module_name t =
  let oc = open_out path in
  output_string oc (of_netlist ?module_name t);
  close_out oc
