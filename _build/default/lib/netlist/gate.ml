(** Gate vocabulary of the netlist IR.

    The set covers the ISCAS'89 [.bench] vocabulary plus multi-input
    associative gates and a 2-to-1 multiplexer.  [Input] nodes have no fanin;
    [Const0]/[Const1] are constants; [Buf]/[Not] are single-input;
    [And]..[Xnor] accept any number >= 1 of fanins; [Mux] has exactly three fanins
    [sel; a; b] and selects [a] when [sel] = 0, [b] when [sel] = 1. *)

type kind =
  | Input
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Mux

let to_string = function
  | Input -> "INPUT"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Mux -> "MUX"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "CONST0" -> Some Const0
  | "CONST1" -> Some Const1
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "MUX" -> Some Mux
  | _ -> None

(** Arity constraint of a gate kind: [`Exactly n] or [`At_least n]. *)
let arity = function
  | Input | Const0 | Const1 -> `Exactly 0
  | Buf | Not -> `Exactly 1
  | And | Nand | Or | Nor | Xor | Xnor -> `At_least 1
  | Mux -> `Exactly 3

let arity_ok kind n =
  match arity kind with
  | `Exactly m -> n = m
  | `At_least m -> n >= m

(** [is_inverter_like k] holds for gates that carry no logic (the paper's gate
    counts exclude inverters and buffers). *)
let is_inverter_like = function
  | Buf | Not -> true
  | Input | Const0 | Const1 | And | Nand | Or | Nor | Xor | Xnor | Mux -> false

(** Boolean evaluation over 64 parallel patterns packed in an [int64]. *)
let eval_word kind (operands : int64 array) : int64 =
  let open Int64 in
  let fold f init =
    let acc = ref init in
    for i = 0 to Array.length operands - 1 do
      acc := f !acc operands.(i)
    done;
    !acc
  in
  match kind with
  | Input -> invalid_arg "Gate.eval_word: Input has no evaluation"
  | Const0 -> 0L
  | Const1 -> minus_one
  | Buf -> operands.(0)
  | Not -> lognot operands.(0)
  | And -> fold logand minus_one
  | Nand -> lognot (fold logand minus_one)
  | Or -> fold logor 0L
  | Nor -> lognot (fold logor 0L)
  | Xor -> fold logxor 0L
  | Xnor -> lognot (fold logxor 0L)
  | Mux ->
    let sel = operands.(0) and a = operands.(1) and b = operands.(2) in
    logor (logand (lognot sel) a) (logand sel b)

(** Single-bit evaluation. *)
let eval_bool kind (operands : bool array) : bool =
  let word = Array.map (fun b -> if b then Int64.minus_one else 0L) operands in
  Int64.logand (eval_word kind word) 1L <> 0L
