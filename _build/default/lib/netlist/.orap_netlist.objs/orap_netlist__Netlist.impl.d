lib/netlist/netlist.ml: Array Gate Hashtbl List Printf
