lib/netlist/gate.mli:
