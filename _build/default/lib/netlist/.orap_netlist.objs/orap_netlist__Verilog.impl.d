lib/netlist/verilog.ml: Array Buffer Gate List Netlist Printf String
