lib/netlist/gate.ml: Array Int64 String
