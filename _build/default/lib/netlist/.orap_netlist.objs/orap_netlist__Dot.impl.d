lib/netlist/dot.ml: Array Buffer Gate Netlist Printf
