lib/netlist/bench_format.ml: Array Buffer Gate Hashtbl List Netlist Printf String
