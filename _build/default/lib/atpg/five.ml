(** Five-valued D-calculus for ATPG: each value carries a (good, faulty)
    pair of ternary components.

    [F]/[T] — both machines 0/1; [D] — good 1, faulty 0; [Db] — good 0,
    faulty 1; [X] — unknown in at least one machine. *)

type t = F | T | D | Db | X

(* ternary component encoding: 0, 1, 2=unknown *)
let good = function F -> 0 | T -> 1 | D -> 1 | Db -> 0 | X -> 2
let faulty = function F -> 0 | T -> 1 | D -> 0 | Db -> 1 | X -> 2

let of_pair g f =
  match (g, f) with
  | 0, 0 -> F
  | 1, 1 -> T
  | 1, 0 -> D
  | 0, 1 -> Db
  | _ -> X

let of_bool b = if b then T else F

let to_string = function F -> "0" | T -> "1" | D -> "D" | Db -> "D'" | X -> "X"

(* ternary gate primitives *)
let tand a b = if a = 0 || b = 0 then 0 else if a = 1 && b = 1 then 1 else 2
let tor a b = if a = 1 || b = 1 then 1 else if a = 0 && b = 0 then 0 else 2
let txor a b = if a = 2 || b = 2 then 2 else a lxor b
let tnot a = if a = 2 then 2 else 1 - a

let map2 fg (a : t) (b : t) : t =
  of_pair (fg (good a) (good b)) (fg (faulty a) (faulty b))

let v_and = map2 tand
let v_or = map2 tor
let v_xor = map2 txor
let v_not a = of_pair (tnot (good a)) (tnot (faulty a))

(** Evaluate a gate over five-valued operands. *)
let eval_gate (kind : Orap_netlist.Gate.kind) (ops : t array) : t =
  let module G = Orap_netlist.Gate in
  let fold f init =
    let acc = ref init in
    Array.iter (fun v -> acc := f !acc v) ops;
    !acc
  in
  match kind with
  | G.Input -> invalid_arg "Five.eval_gate: Input"
  | G.Const0 -> F
  | G.Const1 -> T
  | G.Buf -> ops.(0)
  | G.Not -> v_not ops.(0)
  | G.And -> fold v_and T
  | G.Nand -> v_not (fold v_and T)
  | G.Or -> fold v_or F
  | G.Nor -> v_not (fold v_or F)
  | G.Xor -> fold v_xor F
  | G.Xnor -> v_not (fold v_xor F)
  | G.Mux ->
    let sel = ops.(0) and a = ops.(1) and b = ops.(2) in
    v_or (v_and (v_not sel) a) (v_and sel b)

(** Is the value a fault effect? *)
let is_d = function D | Db -> true | F | T | X -> false
let is_x = function X -> true | F | T | D | Db -> false
let is_binary = function F | T -> true | D | Db | X -> false

(** Apply a stuck-at fault at its site to the locally computed value. *)
let faulted (v : t) ~stuck : t =
  let fv = if stuck then 1 else 0 in
  of_pair (good v) fv
