lib/atpg/atpg.ml: Array List Orap_faultsim Orap_netlist Orap_sim Podem
