lib/atpg/atpg.mli: Orap_netlist
