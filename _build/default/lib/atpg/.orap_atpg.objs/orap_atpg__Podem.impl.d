lib/atpg/podem.ml: Array Five Hashtbl List Orap_faultsim Orap_netlist Scoap
