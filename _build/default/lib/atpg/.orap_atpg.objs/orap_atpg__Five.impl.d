lib/atpg/five.ml: Array Orap_netlist
