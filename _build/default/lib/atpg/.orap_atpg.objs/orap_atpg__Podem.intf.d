lib/atpg/podem.mli: Orap_faultsim Orap_netlist
