lib/atpg/scoap.ml: Array Orap_netlist
