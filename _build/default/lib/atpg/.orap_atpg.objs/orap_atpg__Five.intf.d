lib/atpg/five.mli: Orap_netlist
