(** Five-valued D-calculus: [F]/[T] both machines 0/1, [D] good 1 / faulty
    0, [Db] the reverse, [X] unknown. *)

type t = F | T | D | Db | X

(** Ternary components (0, 1, 2 = unknown). *)
val good : t -> int

val faulty : t -> int
val of_pair : int -> int -> t
val of_bool : bool -> t
val to_string : t -> string

val v_and : t -> t -> t
val v_or : t -> t -> t
val v_xor : t -> t -> t
val v_not : t -> t

val eval_gate : Orap_netlist.Gate.kind -> t array -> t

val is_d : t -> bool
val is_x : t -> bool
val is_binary : t -> bool

(** Apply a stuck-at fault at its site to the locally computed value. *)
val faulted : t -> stuck:bool -> t
