(** PODEM test-pattern generation for single stuck-at faults.

    The implication engine is event-driven over the five-valued calculus,
    with the fault inserted at its site; decisions are made only on primary
    inputs, objectives come from fault activation and the D-frontier, and
    backtrace is guided by SCOAP controllabilities. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Fault = Orap_faultsim.Fault

type outcome =
  | Test of bool option array  (** per-PI assignment; [None] = don't-care *)
  | Redundant
  | Aborted

type engine = {
  nl : N.t;
  fanouts : int array array;
  scoap : Scoap.t;
  is_output : bool array;
  input_pos : int array;  (* node id -> PI position, or -1 *)
  values : Five.t array;
  d_nodes : (int, unit) Hashtbl.t;  (* nodes currently carrying D/D' *)
  heap : Orap_faultsim.Fsim.Heap.h;  (* reusable event heap (self-cleaning) *)
  mutable fault : Fault.t;
}

let create (nl : N.t) : engine =
  let n = N.num_nodes nl in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) (N.outputs nl);
  let input_pos = Array.make n (-1) in
  Array.iteri (fun pos id -> input_pos.(id) <- pos) (N.inputs nl);
  {
    nl;
    fanouts = N.fanouts nl;
    scoap = Scoap.compute nl;
    is_output;
    input_pos;
    values = Array.make n Five.X;
    d_nodes = Hashtbl.create 64;
    heap = Orap_faultsim.Fsim.Heap.create n;
    fault = { Fault.site = Fault.Output 0; stuck = false };
  }

(* value of node [n] recomputed from current fanin values, with the fault
   inserted *)
let eval_node e n =
  match N.kind e.nl n with
  | Gate.Input ->
    let v = e.values.(n) in
    (match e.fault.Fault.site with
    | Fault.Output fn when fn = n -> Five.faulted v ~stuck:e.fault.Fault.stuck
    | Fault.Output _ | Fault.Input _ -> v)
  | k ->
    let fan = N.fanins e.nl n in
    let ops =
      Array.mapi
        (fun pos f ->
          let v = e.values.(f) in
          match e.fault.Fault.site with
          | Fault.Input (fn, fpos) when fn = n && fpos = pos ->
            Five.faulted v ~stuck:e.fault.Fault.stuck
          | Fault.Input _ | Fault.Output _ -> v)
        fan
    in
    let v = Five.eval_gate k ops in
    (match e.fault.Fault.site with
    | Fault.Output fn when fn = n -> Five.faulted v ~stuck:e.fault.Fault.stuck
    | Fault.Output _ | Fault.Input _ -> v)

let set_value e n v =
  if Five.is_d e.values.(n) then Hashtbl.remove e.d_nodes n;
  e.values.(n) <- v;
  if Five.is_d v then Hashtbl.replace e.d_nodes n ()

(* forward event-driven implication after PI node [pi] changed *)
let imply e pi =
  let module H = Orap_faultsim.Fsim.Heap in
  let heap = e.heap in
  (* the PI itself may be a fault site *)
  let v = eval_node e pi in
  if v <> e.values.(pi) then set_value e pi v;
  Array.iter (fun r -> H.push heap r) e.fanouts.(pi);
  while not (H.is_empty heap) do
    let n = H.pop heap in
    let v = eval_node e n in
    if v <> e.values.(n) then begin
      set_value e n v;
      Array.iter (fun r -> H.push heap r) e.fanouts.(n)
    end
  done

let set_pi e pi (v : Five.t) =
  (* store the raw PI value; fault-at-PI is applied inside eval_node *)
  let raw = v in
  if e.values.(pi) <> raw then begin
    set_value e pi raw;
    imply e pi
  end
  else imply e pi

let detected e =
  Hashtbl.fold (fun n () acc -> acc || e.is_output.(n)) e.d_nodes false

(* five-valued value of the fault site branch, after fault insertion *)
let site_effect e =
  match e.fault.Fault.site with
  | Fault.Output n -> e.values.(n)
  | Fault.Input (n, pos) ->
    let d = (N.fanins e.nl n).(pos) in
    Five.faulted e.values.(d) ~stuck:e.fault.Fault.stuck

(* driver whose good value must be set to activate the fault *)
let activation_target e =
  match e.fault.Fault.site with
  | Fault.Output n -> n
  | Fault.Input (n, pos) -> (N.fanins e.nl n).(pos)

(* D-frontier: fanouts of D-carrying nodes whose own value is X *)
let d_frontier e =
  let seen = Hashtbl.create 16 in
  Hashtbl.fold
    (fun n () acc ->
      Array.fold_left
        (fun acc r ->
          if Five.is_x e.values.(r) && not (Hashtbl.mem seen r) then begin
            Hashtbl.replace seen r ();
            r :: acc
          end
          else acc)
        acc e.fanouts.(n))
    e.d_nodes []

(* is there a path of X-valued nodes from [start]'s output to a PO? *)
let x_path_exists e start =
  let seen = Hashtbl.create 64 in
  let rec dfs n =
    if e.is_output.(n) then true
    else if Hashtbl.mem seen n then false
    else begin
      Hashtbl.replace seen n ();
      Array.exists
        (fun r -> Five.is_x e.values.(r) && dfs r)
        e.fanouts.(n)
    end
  in
  (* the frontier gate output itself is X *)
  dfs start

exception Backtrace_blocked

(* walk an objective (node, desired boolean) down to a PI assignment *)
let rec backtrace e n want =
  let cc b f = if b then e.scoap.Scoap.cc1.(f) else e.scoap.Scoap.cc0.(f) in
  let easiest b candidates =
    match candidates with
    | [] -> raise Backtrace_blocked
    | c :: rest ->
      List.fold_left (fun best f -> if cc b f < cc b best then f else best) c rest
  in
  let hardest b candidates =
    match candidates with
    | [] -> raise Backtrace_blocked
    | c :: rest ->
      List.fold_left (fun best f -> if cc b f > cc b best then f else best) c rest
  in
  match N.kind e.nl n with
  | Gate.Input -> (n, want)
  | Gate.Const0 | Gate.Const1 -> raise Backtrace_blocked
  | Gate.Buf -> backtrace e (N.fanins e.nl n).(0) want
  | Gate.Not -> backtrace e (N.fanins e.nl n).(0) (not want)
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
    let inverted =
      match N.kind e.nl n with Gate.Nand | Gate.Nor -> true | _ -> false
    in
    let controlling =
      match N.kind e.nl n with Gate.And | Gate.Nand -> false | _ -> true
    in
    let v' = if inverted then not want else want in
    let xs =
      Array.to_list (N.fanins e.nl n)
      |> List.filter (fun f -> Five.is_x e.values.(f))
    in
    if v' = controlling then
      (* one controlling input suffices: easiest *)
      backtrace e (easiest controlling xs) controlling
    else
      (* all inputs must be non-controlling: hardest first *)
      backtrace e (hardest (not controlling) xs) (not controlling)
  | Gate.Xor | Gate.Xnor ->
    let fan = N.fanins e.nl n in
    let xs = Array.to_list fan |> List.filter (fun f -> Five.is_x e.values.(f)) in
    let known_parity =
      Array.fold_left
        (fun acc f ->
          match e.values.(f) with Five.T -> not acc | _ -> acc)
        false fan
    in
    let inverted = N.kind e.nl n = Gate.Xnor in
    let target = if inverted then not want else want in
    (* set the chosen X input so that, with all other Xs at 0, parity works *)
    let chosen = easiest false xs in
    let others_zero = known_parity in
    backtrace e chosen (target <> others_zero)
  | Gate.Mux ->
    let fan = N.fanins e.nl n in
    let sel = fan.(0) and a = fan.(1) and b = fan.(2) in
    (match e.values.(sel) with
    | Five.F -> backtrace e a want
    | Five.T -> backtrace e b want
    | Five.X ->
      (* choose the branch whose data input is easiest for [want] *)
      if cc want a <= cc want b then backtrace e sel false
      else backtrace e sel true
    | Five.D | Five.Db -> raise Backtrace_blocked)

type objective = Activate of int * bool | Propagate of int

let choose_objective e : objective option =
  let site = site_effect e in
  if Five.is_d site then begin
    (* activated: check the frontier (site node counts when X-valued) *)
    let frontier = d_frontier e in
    let frontier =
      match e.fault.Fault.site with
      | Fault.Input (n, _) when Five.is_x e.values.(n) -> n :: frontier
      | Fault.Input _ | Fault.Output _ -> frontier
    in
    let frontier = List.filter (fun g -> x_path_exists e g) frontier in
    match frontier with
    | [] -> None
    | g :: rest ->
      let d = e.scoap.Scoap.dist_po in
      let best =
        List.fold_left (fun best g' -> if d.(g') < d.(best) then g' else best) g rest
      in
      Some (Propagate best)
  end
  else begin
    let tgt = activation_target e in
    match e.values.(tgt) with
    | Five.X -> Some (Activate (tgt, not e.fault.Fault.stuck))
    | Five.F | Five.T | Five.D | Five.Db -> None (* conflict: cannot excite *)
  end

(* from a propagation objective, produce a (node, value) goal: an X side
   input of the frontier gate set to the non-controlling value *)
let propagation_goal e g =
  let fan = N.fanins e.nl g in
  let xs =
    Array.to_list fan |> List.filter (fun f -> Five.is_x e.values.(f))
  in
  match xs with
  | [] -> None
  | _ -> (
    match N.kind e.nl g with
    | Gate.And | Gate.Nand -> Some (List.hd xs, true)
    | Gate.Or | Gate.Nor -> Some (List.hd xs, false)
    | Gate.Xor | Gate.Xnor | Gate.Buf | Gate.Not -> Some (List.hd xs, false)
    | Gate.Mux ->
      let sel = fan.(0) in
      if Five.is_x e.values.(sel) then begin
        (* select the branch carrying the D *)
        let d_on_b = Five.is_d e.values.(fan.(2)) in
        Some (sel, d_on_b)
      end
      else Some (List.hd xs, false)
    | Gate.Input | Gate.Const0 | Gate.Const1 -> None)

(** Generate a test for [fault], or prove redundancy, within
    [backtrack_limit] backtracks. *)
let run (e : engine) (fault : Fault.t) ~backtrack_limit : outcome =
  e.fault <- fault;
  (* reset state *)
  Array.fill e.values 0 (Array.length e.values) Five.X;
  Hashtbl.reset e.d_nodes;
  (* constants and their cones must be implied up-front *)
  let any_const = ref false in
  for n = 0 to N.num_nodes e.nl - 1 do
    match N.kind e.nl n with
    | Gate.Const0 | Gate.Const1 -> any_const := true
    | _ -> ()
  done;
  if !any_const then begin
    for n = 0 to N.num_nodes e.nl - 1 do
      let v = eval_node e n in
      if v <> e.values.(n) then set_value e n v
    done
  end
  else begin
    (* the bare fault itself may already show at an X site? no: X stays X *)
    ()
  end;
  let stack : (int * bool * bool) array =
    Array.make (N.num_inputs e.nl + 1) (0, false, false)
  in
  let sp = ref 0 in
  let backtracks = ref 0 in
  let decisions = ref 0 in
  let decision_cap = 200 * (N.num_inputs e.nl + 8) in
  let result = ref None in
  while !result = None do
    incr decisions;
    if !decisions > decision_cap then result := Some Aborted
    else if detected e then begin
      let test =
        Array.map
          (fun id ->
            match e.values.(id) with
            | Five.T -> Some true
            | Five.F -> Some false
            | Five.D -> Some true (* PI fault site: good value *)
            | Five.Db -> Some false
            | Five.X -> None)
          (N.inputs e.nl)
      in
      result := Some (Test test)
    end
    else begin
      let goal =
        match choose_objective e with
        | None -> None
        | Some (Activate (n, v)) -> (
          try Some (backtrace e n v) with Backtrace_blocked -> None)
        | Some (Propagate g) -> (
          match propagation_goal e g with
          | None -> None
          | Some (n, v) -> (
            try Some (backtrace e n v) with Backtrace_blocked -> None))
      in
      match goal with
      | Some (pi, v) ->
        stack.(!sp) <- (pi, v, false);
        incr sp;
        set_pi e pi (Five.of_bool v)
      | None ->
        (* conflict: backtrack *)
        incr backtracks;
        if !backtracks > backtrack_limit then result := Some Aborted
        else begin
          let rec unwind () =
            if !sp = 0 then result := Some Redundant
            else begin
              decr sp;
              let pi, v, flipped = stack.(!sp) in
              if flipped then begin
                set_pi e pi Five.X;
                unwind ()
              end
              else begin
                stack.(!sp) <- (pi, not v, true);
                incr sp;
                set_pi e pi (Five.of_bool (not v))
              end
            end
          in
          unwind ()
        end
    end
  done;
  match !result with Some r -> r | None -> assert false
