(** SCOAP-style testability measures: 0/1 controllabilities per node and the
    structural distance to the nearest primary output (used to steer PODEM's
    backtrace and D-frontier choices). *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate

type t = { cc0 : int array; cc1 : int array; dist_po : int array }

let sat_add a b = if a > max_int - b then max_int else a + b

let compute (nl : N.t) : t =
  let n = N.num_nodes nl in
  let cc0 = Array.make n 0 and cc1 = Array.make n 0 in
  for i = 0 to n - 1 do
    let fan = N.fanins nl i in
    let sum sel = Array.fold_left (fun acc f -> sat_add acc (sel f)) 1 fan in
    let min_of sel =
      Array.fold_left (fun acc f -> min acc (sat_add 1 (sel f))) max_int fan
    in
    let c0 f = cc0.(f) and c1 f = cc1.(f) in
    (match N.kind nl i with
    | Gate.Input ->
      cc0.(i) <- 1;
      cc1.(i) <- 1
    | Gate.Const0 ->
      cc0.(i) <- 1;
      cc1.(i) <- max_int
    | Gate.Const1 ->
      cc0.(i) <- max_int;
      cc1.(i) <- 1
    | Gate.Buf ->
      cc0.(i) <- sat_add 1 (c0 fan.(0));
      cc1.(i) <- sat_add 1 (c1 fan.(0))
    | Gate.Not ->
      cc0.(i) <- sat_add 1 (c1 fan.(0));
      cc1.(i) <- sat_add 1 (c0 fan.(0))
    | Gate.And ->
      cc0.(i) <- min_of c0;
      cc1.(i) <- sum c1
    | Gate.Nand ->
      cc1.(i) <- min_of c0;
      cc0.(i) <- sum c1
    | Gate.Or ->
      cc1.(i) <- min_of c1;
      cc0.(i) <- sum c0
    | Gate.Nor ->
      cc0.(i) <- min_of c1;
      cc1.(i) <- sum c0
    | Gate.Xor | Gate.Xnor ->
      (* crude but standard approximation via the 2-input recurrences *)
      let rec fold k acc0 acc1 =
        if k >= Array.length fan then (acc0, acc1)
        else begin
          let f = fan.(k) in
          let n0 = min (sat_add acc0 (c0 f)) (sat_add acc1 (c1 f)) in
          let n1 = min (sat_add acc0 (c1 f)) (sat_add acc1 (c0 f)) in
          fold (k + 1) n0 n1
        end
      in
      let z0, z1 = fold 1 cc0.(fan.(0)) cc1.(fan.(0)) in
      let z0 = sat_add 1 z0 and z1 = sat_add 1 z1 in
      if N.kind nl i = Gate.Xor then begin
        cc0.(i) <- z0;
        cc1.(i) <- z1
      end
      else begin
        cc0.(i) <- z1;
        cc1.(i) <- z0
      end
    | Gate.Mux ->
      let sel = fan.(0) and a = fan.(1) and b = fan.(2) in
      cc0.(i) <-
        sat_add 1
          (min (sat_add (c0 sel) (c0 a)) (sat_add (c1 sel) (c0 b)));
      cc1.(i) <-
        sat_add 1
          (min (sat_add (c0 sel) (c1 a)) (sat_add (c1 sel) (c1 b))))
  done;
  (* structural distance to the nearest primary output *)
  let dist_po = Array.make n max_int in
  Array.iter (fun o -> dist_po.(o) <- 0) (N.outputs nl);
  for i = n - 1 downto 0 do
    if dist_po.(i) < max_int then
      Array.iter
        (fun f -> if dist_po.(i) + 1 < dist_po.(f) then dist_po.(f) <- dist_po.(i) + 1)
        (N.fanins nl i)
  done;
  { cc0; cc1; dist_po }
