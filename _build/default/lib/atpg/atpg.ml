(** ATPG driver: the Atalanta-style flow used for Table II.

    Phase 1 drops the easy faults with random-pattern parallel fault
    simulation (the paper uses HOPE for the two largest circuits); phase 2
    runs PODEM on each survivor, fault-simulating every generated test to
    drop whatever else it catches.  Faults that PODEM exhausts are counted
    redundant; faults hitting the backtrack/decision limit are aborted. *)

module N = Orap_netlist.Netlist
module Fault = Orap_faultsim.Fault
module Fsim = Orap_faultsim.Fsim
module Prng = Orap_sim.Prng

type report = {
  total_faults : int;
  detected : int;
  redundant : int;
  aborted : int;
  random_detected : int;
  patterns : bool array list;  (** deterministic tests, PI-ordered *)
}

let coverage r = 100.0 *. float_of_int r.detected /. float_of_int r.total_faults

let redundant_plus_aborted r = r.redundant + r.aborted

let run ?(seed = 2020) ?(random_words = 8) ?(backtrack_limit = 64) (nl : N.t)
    : report =
  let faults = Fault.collapsed_list nl in
  let total = Array.length faults in
  let remaining = Array.make total true in
  let stats = Fsim.random_simulate ~seed ~words:random_words nl faults remaining in
  let engine = Podem.create nl in
  let fsim = Fsim.create nl in
  let rng = Prng.create (seed + 1) in
  let redundant = ref 0 and aborted = ref 0 and det = ref stats.Fsim.detected in
  let patterns = ref [] in
  Array.iteri
    (fun i fault ->
      if remaining.(i) then begin
        match Podem.run engine fault ~backtrack_limit with
        | Podem.Test assignment ->
          (* random-fill the don't-cares, then drop everything it detects *)
          let pattern =
            Array.map
              (fun v -> match v with Some b -> b | None -> Prng.bool rng)
              assignment
          in
          patterns := pattern :: !patterns;
          let dropped = Fsim.simulate_pattern fsim pattern faults remaining in
          det := !det + dropped;
          (* PODEM said testable: the pattern must detect it; if simulation
             disagrees (X-filled pessimism), count it detected anyway *)
          if remaining.(i) then begin
            remaining.(i) <- false;
            incr det
          end
        | Podem.Redundant -> incr redundant
        | Podem.Aborted -> incr aborted
      end)
    faults;
  {
    total_faults = total;
    detected = !det;
    redundant = !redundant;
    aborted = !aborted;
    random_detected = stats.Fsim.detected;
    patterns = List.rev !patterns;
  }

(** Reverse-order test compaction: re-fault-simulate the deterministic
    patterns latest-first and keep only those that detect a not-yet-covered
    fault.  Late ATPG patterns tend to cover many earlier faults, so the
    kept set is usually much smaller with identical coverage. *)
let compact_patterns (nl : N.t) (patterns : bool array list) : bool array list
    =
  let faults = Fault.collapsed_list nl in
  let remaining = Array.make (Array.length faults) true in
  let fsim = Fsim.create nl in
  let kept =
    List.filter
      (fun pattern -> Fsim.simulate_pattern fsim pattern faults remaining > 0)
      (List.rev patterns)
  in
  List.rev kept
