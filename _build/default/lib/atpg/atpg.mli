(** ATPG driver, Atalanta-flow style: a random-pattern fault-simulation
    phase with dropping, then PODEM per surviving fault with every
    generated test fault-simulated against the rest. *)

type report = {
  total_faults : int;
  detected : int;
  redundant : int;
  aborted : int;
  random_detected : int;
  patterns : bool array list;  (** deterministic tests, PI-ordered *)
}

(** Fault coverage in percent: detected / total. *)
val coverage : report -> float

(** Table II's last column. *)
val redundant_plus_aborted : report -> int

val run :
  ?seed:int ->
  ?random_words:int ->
  ?backtrack_limit:int ->
  Orap_netlist.Netlist.t ->
  report

(** Reverse-order test compaction: keep only patterns that detect a fault
    not covered by a later pattern; coverage is preserved. *)
val compact_patterns :
  Orap_netlist.Netlist.t -> bool array list -> bool array list
