(** PODEM test-pattern generation for single stuck-at faults, over an
    event-driven five-valued implication engine with SCOAP-guided
    backtrace. *)

type outcome =
  | Test of bool option array  (** per-PI assignment; [None] = don't-care *)
  | Redundant
  | Aborted

type engine

(** Build the per-circuit engine (fanouts, SCOAP measures, value arrays);
    reusable across faults. *)
val create : Orap_netlist.Netlist.t -> engine

(** Generate a test for [fault], prove it redundant, or abort after
    [backtrack_limit] backtracks (or an internal decision cap). *)
val run : engine -> Orap_faultsim.Fault.t -> backtrack_limit:int -> outcome
