(** Truth tables over up to [max_vars] = 16 variables, packed 64 bits per
    word.  Bit [p] of the table is the function value on the input pattern
    whose variable [i] equals bit [i] of [p]. *)

type t = { nvars : int; words : int64 array }

let max_vars = 16

let num_words nvars = if nvars <= 6 then 1 else 1 lsl (nvars - 6)

let make nvars fill =
  if nvars < 0 || nvars > max_vars then invalid_arg "Truth.make";
  { nvars; words = Array.make (num_words nvars) fill }

let zero nvars = make nvars 0L

let ones nvars =
  let t = make nvars Int64.minus_one in
  if nvars < 6 then
    t.words.(0) <- Int64.sub (Int64.shift_left 1L (1 lsl nvars)) 1L;
  t

(* the classic within-word variable masks *)
let var_masks =
  [|
    0xAAAAAAAAAAAAAAAAL;
    0xCCCCCCCCCCCCCCCCL;
    0xF0F0F0F0F0F0F0F0L;
    0xFF00FF00FF00FF00L;
    0xFFFF0000FFFF0000L;
    0xFFFFFFFF00000000L;
  |]

(** Truth table of variable [i]. *)
let var nvars i =
  if i < 0 || i >= nvars then invalid_arg "Truth.var";
  let t = zero nvars in
  if i < 6 then begin
    let m = var_masks.(i) in
    let m =
      if nvars < 6 then
        Int64.logand m (Int64.sub (Int64.shift_left 1L (1 lsl nvars)) 1L)
      else m
    in
    Array.fill t.words 0 (Array.length t.words) m
  end
  else begin
    let stride = 1 lsl (i - 6) in
    let n = Array.length t.words in
    let w = ref 0 in
    while !w < n do
      for k = !w + stride to !w + (2 * stride) - 1 do
        t.words.(k) <- Int64.minus_one
      done;
      w := !w + (2 * stride)
    done
  end;
  t

let mask_last nvars word =
  if nvars < 6 then
    Int64.logand word (Int64.sub (Int64.shift_left 1L (1 lsl nvars)) 1L)
  else word

let map2 f a b =
  if a.nvars <> b.nvars then invalid_arg "Truth.map2";
  { nvars = a.nvars; words = Array.map2 f a.words b.words }

let logand = map2 Int64.logand
let logor = map2 Int64.logor
let logxor = map2 Int64.logxor

let lognot a =
  { nvars = a.nvars;
    words = Array.map (fun w -> mask_last a.nvars (Int64.lognot w)) a.words }

let equal a b = a.nvars = b.nvars && a.words = b.words
let is_zero a = Array.for_all (fun w -> w = 0L) a.words
let is_ones a = equal a (ones a.nvars)

(** Positive cofactor: the function with variable [i] forced to 1, expressed
    over the same variable set (result no longer depends on [i]). *)
let cofactor1 a i =
  let r = { nvars = a.nvars; words = Array.copy a.words } in
  if i < 6 then begin
    let m = var_masks.(i) in
    let sh = 1 lsl i in
    Array.iteri
      (fun k w ->
        let hi = Int64.logand w m in
        r.words.(k) <-
          mask_last a.nvars (Int64.logor hi (Int64.shift_right_logical hi sh)))
      a.words
  end
  else begin
    let stride = 1 lsl (i - 6) in
    let n = Array.length a.words in
    let w = ref 0 in
    while !w < n do
      for k = 0 to stride - 1 do
        r.words.(!w + k) <- a.words.(!w + stride + k);
        r.words.(!w + stride + k) <- a.words.(!w + stride + k)
      done;
      w := !w + (2 * stride)
    done
  end;
  r

(** Negative cofactor: variable [i] forced to 0. *)
let cofactor0 a i =
  let r = { nvars = a.nvars; words = Array.copy a.words } in
  if i < 6 then begin
    let m = Int64.lognot var_masks.(i) in
    let sh = 1 lsl i in
    Array.iteri
      (fun k w ->
        let lo = Int64.logand w m in
        r.words.(k) <-
          mask_last a.nvars (Int64.logor lo (Int64.shift_left lo sh)))
      a.words
  end
  else begin
    let stride = 1 lsl (i - 6) in
    let n = Array.length a.words in
    let w = ref 0 in
    while !w < n do
      for k = 0 to stride - 1 do
        r.words.(!w + k) <- a.words.(!w + k);
        r.words.(!w + stride + k) <- a.words.(!w + k)
      done;
      w := !w + (2 * stride)
    done
  end;
  r

(** Does the function depend on variable [i]? *)
let depends_on a i = not (equal (cofactor0 a i) (cofactor1 a i))

let popcount a =
  Array.fold_left
    (fun acc w ->
      let x = w in
      let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
      let x =
        Int64.add
          (Int64.logand x 0x3333333333333333L)
          (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
      in
      let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
      acc + Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56))
    0 a.words

let get a p =
  let w = p lsr 6 and b = p land 63 in
  Int64.logand (Int64.shift_right_logical a.words.(w) b) 1L <> 0L

let to_hex a =
  String.concat ""
    (List.rev_map (Printf.sprintf "%016Lx") (Array.to_list a.words))
