(** Irredundant sum-of-products via the Minato–Morreale procedure.

    [compute lower upper] returns a cube cover [c] with
    [lower <= cover c <= upper]; with [lower = upper = f] it yields an
    irredundant SOP of [f].  Cubes are (positive-literal mask,
    negative-literal mask) pairs over the truth-table variables. *)

type cube = { pos : int; neg : int }

let cube_literals c =
  let rec pc x = if x = 0 then 0 else (x land 1) + pc (x lsr 1) in
  pc c.pos + pc c.neg

let cube_truth nvars c =
  let t = ref (Truth.ones nvars) in
  for i = 0 to nvars - 1 do
    if (c.pos lsr i) land 1 = 1 then t := Truth.logand !t (Truth.var nvars i);
    if (c.neg lsr i) land 1 = 1 then
      t := Truth.logand !t (Truth.lognot (Truth.var nvars i))
  done;
  !t

let cover_truth nvars cubes =
  List.fold_left
    (fun acc c -> Truth.logor acc (cube_truth nvars c))
    (Truth.zero nvars) cubes

(** Core recursion.  Returns (cubes, truth table of the cover). *)
let rec isop lower upper var_index =
  let nvars = lower.Truth.nvars in
  if Truth.is_zero lower then ([], Truth.zero nvars)
  else if Truth.is_ones lower then ([ { pos = 0; neg = 0 } ], Truth.ones nvars)
  else begin
    (* find a variable on which lower or upper depends *)
    let rec find i =
      if i < 0 then -1
      else if Truth.depends_on lower i || Truth.depends_on upper i then i
      else find (i - 1)
    in
    let x = find (var_index - 1) in
    if x < 0 then
      (* both constant; lower <= upper and lower <> 0 => lower = ones *)
      ([ { pos = 0; neg = 0 } ], Truth.ones nvars)
    else begin
      let l0 = Truth.cofactor0 lower x and l1 = Truth.cofactor1 lower x in
      let u0 = Truth.cofactor0 upper x and u1 = Truth.cofactor1 upper x in
      (* cubes that must appear in the x=0 half only *)
      let c0, cov0 = isop (Truth.logand l0 (Truth.lognot u1)) u0 x in
      let c1, cov1 = isop (Truth.logand l1 (Truth.lognot u0)) u1 x in
      let l0' = Truth.logand l0 (Truth.lognot cov0) in
      let l1' = Truth.logand l1 (Truth.lognot cov1) in
      let lnew = Truth.logor l0' l1' in
      let c2, cov2 = isop lnew (Truth.logand u0 u1) x in
      let bit = 1 lsl x in
      let cubes =
        List.map (fun c -> { c with neg = c.neg lor bit }) c0
        @ List.map (fun c -> { c with pos = c.pos lor bit }) c1
        @ c2
      in
      let xv = Truth.var nvars x in
      let cover =
        Truth.logor
          (Truth.logor
             (Truth.logand (Truth.lognot xv) cov0)
             (Truth.logand xv cov1))
          cov2
      in
      (cubes, cover)
    end
  end

(** SOP of [f] (irredundant w.r.t. cube containment). *)
let compute (f : Truth.t) : cube list =
  let cubes, cover = isop f f f.Truth.nvars in
  assert (Truth.equal cover f);
  cubes

(** Structural cost of a cover when built as a 2-input AND/OR network:
    [sum (lits_i - 1)] AND nodes per cube plus [cubes - 1] OR nodes. *)
let cost cubes =
  match cubes with
  | [] -> 0
  | _ ->
    List.fold_left (fun acc c -> acc + max 0 (cube_literals c - 1)) 0 cubes
    + (List.length cubes - 1)

(** Build the cover inside an AIG over the given leaf literals. *)
let to_aig (aig : Aig.t) (leaves : int array) cubes : int =
  let cube_lit c =
    let lits = ref [] in
    Array.iteri
      (fun i l ->
        if (c.pos lsr i) land 1 = 1 then lits := l :: !lits;
        if (c.neg lsr i) land 1 = 1 then lits := Aig.compl_lit l :: !lits)
      leaves;
    Aig.and_list aig !lits
  in
  Aig.or_list aig (List.map cube_lit cubes)
