lib/synth/truth.ml: Array Int64 List Printf String
