lib/synth/refactor.ml: Aig Array Hashtbl Isop List Truth
