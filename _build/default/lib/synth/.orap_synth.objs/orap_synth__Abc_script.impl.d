lib/synth/abc_script.ml: Aig Balance Orap_netlist Refactor
