lib/synth/aig.ml: Array Hashtbl List Orap_netlist Printf
