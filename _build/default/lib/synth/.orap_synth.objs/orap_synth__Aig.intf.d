lib/synth/aig.mli: Orap_netlist
