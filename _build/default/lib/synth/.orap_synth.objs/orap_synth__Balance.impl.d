lib/synth/balance.ml: Aig Array Hashtbl List
