lib/synth/isop.ml: Aig Array List Truth
