(** And-Inverter Graph with structural hashing.  AIGER literal convention:
    node [n] yields literals [2n] and [2n+1]; literal 0 is FALSE, 1 is TRUE;
    nodes 1..num_pis are the primary inputs. *)

type t

val false_lit : int
val true_lit : int
val lit_of_node : ?compl:bool -> int -> int
val node_of_lit : int -> int
val is_compl : int -> bool
val compl_lit : int -> int

val create : num_pis:int -> t
val num_pis : t -> int
val num_nodes : t -> int
val outputs : t -> int array
val set_outputs : t -> int array -> unit
val pi_lit : t -> int -> int
val is_pi : t -> int -> bool
val is_and : t -> int -> bool
val is_const : int -> bool
val fanin0 : t -> int -> int
val fanin1 : t -> int -> int

(** AND-node count: the area metric (inverters are free edge attributes). *)
val num_ands : t -> int

(** AND nodes reachable from the outputs only. *)
val num_live_ands : t -> int

(** {1 Construction (hashed, with trivial-case simplification)} *)

val and_lit : t -> int -> int -> int
val or_lit : t -> int -> int -> int
val xor_lit : t -> int -> int -> int
val mux_lit : t -> sel:int -> a:int -> b:int -> int
val and_list : t -> int list -> int
val or_list : t -> int list -> int
val xor_list : t -> int list -> int

(** {1 Analyses} *)

val levels : t -> int array
val depth : t -> int
val ref_counts : t -> int array

(** {1 Netlist bridges} *)

val of_netlist : Orap_netlist.Netlist.t -> t
val to_netlist : t -> Orap_netlist.Netlist.t
