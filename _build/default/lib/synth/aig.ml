(** And-Inverter Graph with structural hashing (the "strash" form).

    Literals follow the AIGER convention: node id [n] yields literals [2n]
    (plain) and [2n+1] (complemented); node 0 is the constant, so literal 0 is
    FALSE and literal 1 is TRUE.  The graph is append-only; nodes 1..num_pis
    are the primary inputs. *)

type t = {
  mutable fanin0 : int array;  (* literal *)
  mutable fanin1 : int array;  (* literal *)
  mutable num_nodes : int;  (* includes const node 0 and PIs *)
  num_pis : int;
  mutable outputs : int array;  (* output literals *)
  strash : (int * int, int) Hashtbl.t;  (* (f0, f1) canonical -> node id *)
}

let false_lit = 0
let true_lit = 1
let lit_of_node ?(compl = false) n = (2 * n) + if compl then 1 else 0
let node_of_lit l = l lsr 1
let is_compl l = l land 1 = 1
let compl_lit l = l lxor 1

let create ~num_pis =
  let cap = max 16 (4 * (num_pis + 1)) in
  {
    fanin0 = Array.make cap 0;
    fanin1 = Array.make cap 0;
    num_nodes = num_pis + 1;
    num_pis;
    outputs = [||];
    strash = Hashtbl.create 1024;
  }

let num_pis t = t.num_pis
let num_nodes t = t.num_nodes
let outputs t = t.outputs
let set_outputs t outs = t.outputs <- outs
let pi_lit t i =
  if i < 0 || i >= t.num_pis then invalid_arg "Aig.pi_lit";
  lit_of_node (i + 1)

let is_pi t n = n >= 1 && n <= t.num_pis
let is_and t n = n > t.num_pis && n < t.num_nodes
let is_const n = n = 0

let fanin0 t n = t.fanin0.(n)
let fanin1 t n = t.fanin1.(n)

(** Number of AND nodes: the area metric (inverters are edge attributes and
    cost nothing, matching gate counts "without inverters"). *)
let num_ands t = t.num_nodes - t.num_pis - 1

let ensure t =
  if t.num_nodes = Array.length t.fanin0 then begin
    let n = 2 * t.num_nodes in
    let f0 = Array.make n 0 and f1 = Array.make n 0 in
    Array.blit t.fanin0 0 f0 0 t.num_nodes;
    Array.blit t.fanin1 0 f1 0 t.num_nodes;
    t.fanin0 <- f0;
    t.fanin1 <- f1
  end

(** Hashed AND constructor with constant/trivial simplification. *)
let and_lit t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = false_lit then false_lit
  else if a = true_lit then b
  else if a = b then a
  else if a = compl_lit b then false_lit
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some n -> lit_of_node n
    | None ->
      ensure t;
      let n = t.num_nodes in
      t.fanin0.(n) <- a;
      t.fanin1.(n) <- b;
      t.num_nodes <- n + 1;
      Hashtbl.replace t.strash (a, b) n;
      lit_of_node n

let or_lit t a b = compl_lit (and_lit t (compl_lit a) (compl_lit b))

let xor_lit t a b =
  let n1 = and_lit t a (compl_lit b) in
  let n2 = and_lit t (compl_lit a) b in
  or_lit t n1 n2

let mux_lit t ~sel ~a ~b =
  (* sel = 0 -> a, sel = 1 -> b *)
  or_lit t (and_lit t (compl_lit sel) a) (and_lit t sel b)

(** Balanced associative reduction of a literal list. *)
let reduce_balanced t op neutral lits =
  match lits with
  | [] -> neutral
  | _ ->
    let rec level = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> op t x y :: level rest
    in
    let rec go = function [ x ] -> x | xs -> go (level xs) in
    go lits

let and_list t lits = reduce_balanced t and_lit true_lit lits
let or_list t lits = reduce_balanced t or_lit false_lit lits
let xor_list t lits = reduce_balanced t xor_lit false_lit lits

(** AND-level of every node (PIs and const at level 0). *)
let levels t =
  let lev = Array.make t.num_nodes 0 in
  for n = t.num_pis + 1 to t.num_nodes - 1 do
    lev.(n) <-
      1 + max lev.(node_of_lit t.fanin0.(n)) lev.(node_of_lit t.fanin1.(n))
  done;
  lev

let depth t =
  let lev = levels t in
  Array.fold_left (fun acc o -> max acc lev.(node_of_lit o)) 0 t.outputs

(** Fanout reference counts induced by AND nodes and outputs. *)
let ref_counts t =
  let refs = Array.make t.num_nodes 0 in
  for n = t.num_pis + 1 to t.num_nodes - 1 do
    refs.(node_of_lit t.fanin0.(n)) <- refs.(node_of_lit t.fanin0.(n)) + 1;
    refs.(node_of_lit t.fanin1.(n)) <- refs.(node_of_lit t.fanin1.(n)) + 1
  done;
  Array.iter (fun o -> refs.(node_of_lit o) <- refs.(node_of_lit o) + 1) t.outputs;
  refs

(** Count of AND nodes reachable from the outputs (dead nodes excluded). *)
let num_live_ands t =
  let seen = Array.make t.num_nodes false in
  let count = ref 0 in
  let rec visit n =
    if (not seen.(n)) && is_and t n then begin
      seen.(n) <- true;
      incr count;
      visit (node_of_lit t.fanin0.(n));
      visit (node_of_lit t.fanin1.(n))
    end
  in
  Array.iter (fun o -> visit (node_of_lit o)) t.outputs;
  !count

(* ---- netlist bridges ---- *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate

let of_netlist (nl : N.t) : t =
  let t = create ~num_pis:(N.num_inputs nl) in
  let lit = Array.make (N.num_nodes nl) 0 in
  let input_pos = ref 0 in
  for i = 0 to N.num_nodes nl - 1 do
    let fan () = Array.to_list (Array.map (fun f -> lit.(f)) (N.fanins nl i)) in
    lit.(i) <-
      (match N.kind nl i with
      | Gate.Input ->
        let l = pi_lit t !input_pos in
        incr input_pos;
        l
      | Gate.Const0 -> false_lit
      | Gate.Const1 -> true_lit
      | Gate.Buf -> List.nth (fan ()) 0
      | Gate.Not -> compl_lit (List.nth (fan ()) 0)
      | Gate.And -> and_list t (fan ())
      | Gate.Nand -> compl_lit (and_list t (fan ()))
      | Gate.Or -> or_list t (fan ())
      | Gate.Nor -> compl_lit (or_list t (fan ()))
      | Gate.Xor -> xor_list t (fan ())
      | Gate.Xnor -> compl_lit (xor_list t (fan ()))
      | Gate.Mux ->
        (match fan () with
        | [ sel; a; b ] -> mux_lit t ~sel ~a ~b
        | _ -> assert false))
  done;
  set_outputs t (Array.map (fun o -> lit.(o)) (N.outputs nl));
  t

(** Rebuild a gate netlist: one AND gate per live AND node, complemented edges
    become NOT gates (shared per node). *)
let to_netlist (t : t) : N.t =
  let b = N.Builder.create ~size_hint:t.num_nodes () in
  let node_id = Array.make t.num_nodes (-1) in
  let not_id = Array.make t.num_nodes (-1) in
  let const0 = ref (-1) in
  for i = 0 to t.num_pis - 1 do
    node_id.(i + 1) <- N.Builder.add_input ~name:(Printf.sprintf "pi%d" i) b
  done;
  let get_const0 () =
    if !const0 < 0 then const0 := N.Builder.add_node b Gate.Const0 [||];
    !const0
  in
  let rec id_of_lit l =
    let n = node_of_lit l in
    let plain =
      if is_const n then get_const0 ()
      else begin
        if node_id.(n) < 0 then begin
          let a = id_of_lit t.fanin0.(n) in
          let c = id_of_lit t.fanin1.(n) in
          node_id.(n) <- N.Builder.add_node b Gate.And [| a; c |]
        end;
        node_id.(n)
      end
    in
    if is_compl l then begin
      if not_id.(n) < 0 then
        not_id.(n) <- N.Builder.add_node b Gate.Not [| plain |];
      not_id.(n)
    end
    else plain
  in
  Array.iter (fun o -> N.Builder.mark_output b (id_of_lit o)) t.outputs;
  N.Builder.finish b
