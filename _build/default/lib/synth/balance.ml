(** Delay-oriented AND-tree balancing (the ABC [balance] pass).

    Multi-input conjunctions are collected by flattening non-complemented
    AND edges into single-fanout children, then rebuilt as trees that pair
    shallow operands first, minimising the resulting level. *)

let run (aig : Aig.t) : Aig.t =
  let refs = Aig.ref_counts aig in
  let fresh = Aig.create ~num_pis:(Aig.num_pis aig) in
  let memo = Array.make (Aig.num_nodes aig) (-1) in
  (* levels of the fresh AIG, maintained incrementally as nodes appear *)
  let lev : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let level_of l =
    match Hashtbl.find_opt lev (Aig.node_of_lit l) with
    | Some v -> v
    | None -> 0 (* const or PI *)
  in
  let mk_and a b =
    let l = Aig.and_lit fresh a b in
    let n = Aig.node_of_lit l in
    if Aig.is_and fresh n && not (Hashtbl.mem lev n) then
      Hashtbl.replace lev n (1 + max (level_of a) (level_of b));
    l
  in
  let rec lit_image l =
    let plain = node_image (Aig.node_of_lit l) in
    if Aig.is_compl l then Aig.compl_lit plain else plain
  and node_image n =
    if memo.(n) >= 0 then memo.(n)
    else begin
      let lit =
        if Aig.is_const n then Aig.false_lit
        else if Aig.is_pi aig n then Aig.pi_lit fresh (n - 1)
        else begin
          (* collect the flattened conjunction rooted at n *)
          let operands = ref [] in
          let rec collect l =
            let c = Aig.node_of_lit l in
            if
              (not (Aig.is_compl l))
              && Aig.is_and aig c
              && (refs.(c) <= 1 || c = n)
            then begin
              collect (Aig.fanin0 aig c);
              collect (Aig.fanin1 aig c)
            end
            else operands := l :: !operands
          in
          collect (Aig.fanin0 aig n);
          collect (Aig.fanin1 aig n);
          let imgs = List.map lit_image !operands in
          (* repeatedly combine the two shallowest operands *)
          let rec build xs =
            match List.sort (fun a b -> compare (level_of a) (level_of b)) xs with
            | [] -> Aig.true_lit
            | [ x ] -> x
            | a :: b :: rest -> build (mk_and a b :: rest)
          in
          build imgs
        end
      in
      memo.(n) <- lit;
      lit
    end
  in
  Aig.set_outputs fresh (Array.map lit_image (Aig.outputs aig));
  fresh
