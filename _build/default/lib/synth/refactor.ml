(** Cut-based AIG refactoring (the ABC [refactor]/[rewrite] family).

    For every live AND node, a reconvergence-driven cut of at most [cut_size]
    leaves is grown, the cone's truth table is computed, and an ISOP rebuild
    is costed against the cone's maximum fanout-free region.  Beneficial
    replacements are recorded and a fresh structurally hashed AIG is rebuilt
    from the outputs, realising the gains (plus any sharing strash finds). *)

type replacement = { leaves : int array (* node ids *); cubes : Isop.cube list }

let grow_cut (aig : Aig.t) root ~cut_size =
  (* leaves are node ids; expansion replaces an AND leaf by its fanins *)
  let leaves = ref [] in
  let add n = if not (List.mem n !leaves) then leaves := n :: !leaves in
  add (Aig.node_of_lit (Aig.fanin0 aig root));
  add (Aig.node_of_lit (Aig.fanin1 aig root));
  let expansions = ref 0 in
  let continue_ = ref true in
  while !continue_ && !expansions < 200 do
    (* candidate leaf: an AND node whose expansion keeps the leaf budget;
       prefer the one adding the fewest new leaves (reconvergence first) *)
    let best = ref None in
    List.iter
      (fun l ->
        if Aig.is_and aig l then begin
          let f0 = Aig.node_of_lit (Aig.fanin0 aig l) in
          let f1 = Aig.node_of_lit (Aig.fanin1 aig l) in
          let added =
            (if List.mem f0 !leaves then 0 else 1)
            + if List.mem f1 !leaves || f1 = f0 then 0 else 1
          in
          let new_count = List.length !leaves - 1 + added in
          if new_count <= cut_size then
            match !best with
            | Some (_, a) when a <= added -> ()
            | _ -> best := Some (l, added)
        end)
      !leaves;
    match !best with
    | None -> continue_ := false
    | Some (l, _) ->
      incr expansions;
      leaves := List.filter (fun x -> x <> l) !leaves;
      add (Aig.node_of_lit (Aig.fanin0 aig l));
      add (Aig.node_of_lit (Aig.fanin1 aig l))
  done;
  Array.of_list (List.rev !leaves)

(* AND nodes strictly inside the cone (root included, leaves excluded) *)
let cone_nodes (aig : Aig.t) root leaves =
  let leaf n = Array.exists (( = ) n) leaves in
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let rec visit n =
    if (not (Hashtbl.mem seen n)) && (not (leaf n)) && Aig.is_and aig n then begin
      Hashtbl.replace seen n ();
      acc := n :: !acc;
      visit (Aig.node_of_lit (Aig.fanin0 aig n));
      visit (Aig.node_of_lit (Aig.fanin1 aig n))
    end
  in
  visit root;
  !acc

let cone_truth (aig : Aig.t) root leaves =
  let nvars = Array.length leaves in
  let memo = Hashtbl.create 32 in
  Array.iteri (fun i l -> Hashtbl.replace memo l (Truth.var nvars i)) leaves;
  let rec eval n =
    match Hashtbl.find_opt memo n with
    | Some t -> t
    | None ->
      if Aig.is_const n then Truth.zero nvars
      else begin
        let lit_truth l =
          let t = eval (Aig.node_of_lit l) in
          if Aig.is_compl l then Truth.lognot t else t
        in
        let t =
          Truth.logand (lit_truth (Aig.fanin0 aig n)) (lit_truth (Aig.fanin1 aig n))
        in
        Hashtbl.replace memo n t;
        t
      end
  in
  eval root

(* nodes of the cone freed if the root is re-expressed over the leaves:
   ref-count decrement simulation confined to the cone *)
let freed_nodes (aig : Aig.t) refs root cone =
  let in_cone n = List.mem n cone in
  let local = Hashtbl.create 16 in
  let get n = match Hashtbl.find_opt local n with Some v -> v | None -> refs.(n) in
  let set n v = Hashtbl.replace local n v in
  let count = ref 0 in
  let rec deref n =
    incr count;
    List.iter
      (fun l ->
        let c = Aig.node_of_lit l in
        if Aig.is_and aig c && in_cone c then begin
          let v = get c - 1 in
          set c v;
          if v = 0 then deref c
        end)
      [ Aig.fanin0 aig n; Aig.fanin1 aig n ]
  in
  deref root;
  !count

(** One refactoring pass.  Returns the rebuilt AIG. *)
let run ?(cut_size = 10) ?(min_cone = 2) (aig : Aig.t) : Aig.t =
  let refs = Aig.ref_counts aig in
  let replacements : (int, replacement) Hashtbl.t = Hashtbl.create 64 in
  for root = Aig.num_pis aig + 1 to Aig.num_nodes aig - 1 do
    if refs.(root) > 0 then begin
      let leaves = grow_cut aig root ~cut_size in
      if Array.length leaves >= 2 && Array.length leaves <= cut_size then begin
        let cone = cone_nodes aig root leaves in
        if List.length cone >= min_cone then begin
          let truth = cone_truth aig root leaves in
          let cubes = Isop.compute truth in
          let cost = Isop.cost cubes in
          let saved = freed_nodes aig refs root cone in
          if cost < saved then
            Hashtbl.replace replacements root { leaves; cubes }
        end
      end
    end
  done;
  (* rebuild demand-driven from the outputs *)
  let fresh = Aig.create ~num_pis:(Aig.num_pis aig) in
  let memo = Array.make (Aig.num_nodes aig) (-1) in
  let rec lit_image l =
    let n = Aig.node_of_lit l in
    let plain = node_image n in
    if Aig.is_compl l then Aig.compl_lit plain else plain
  and node_image n =
    if memo.(n) >= 0 then memo.(n)
    else begin
      let lit =
        if Aig.is_const n then Aig.false_lit
        else if Aig.is_pi aig n then Aig.pi_lit fresh (n - 1)
        else
          match Hashtbl.find_opt replacements n with
          | Some { leaves; cubes } ->
            let leaf_lits = Array.map (fun l -> node_image l) leaves in
            Isop.to_aig fresh leaf_lits cubes
          | None ->
            Aig.and_lit fresh
              (lit_image (Aig.fanin0 aig n))
              (lit_image (Aig.fanin1 aig n))
      in
      memo.(n) <- lit;
      lit
    end
  in
  Aig.set_outputs fresh (Array.map lit_image (Aig.outputs aig));
  fresh
