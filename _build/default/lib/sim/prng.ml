(** Deterministic, seedable PRNG (xoshiro256 "starstar" variant), independent
    of [Random] so experiments are reproducible regardless of other library
    usage. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64, used to expand the seed *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix st in
  let s1 = splitmix st in
  let s2 = splitmix st in
  let s3 = splitmix st in
  { s0; s1; s2; s3 }

(** 64 fresh pseudorandom bits. *)
let next64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let bool t = Int64.logand (next64 t) 1L <> 0L

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next64 t) mask) in
  v mod bound

(** Uniform float in [0, 1). *)
let float t =
  let v = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float v /. 9007199254740992.0

let bool_array t n = Array.init n (fun _ -> bool t)
let word_array t n = Array.init n (fun _ -> next64 t)
