(** Output-corruption measurement: average Hamming distance between the
    output vectors of two circuit configurations over shared pseudorandom
    input patterns.

    A configuration is a netlist plus a binding for each of its inputs:
    either [Fixed b] (e.g. a key bit) or [Shared j], the [j]-th signal of a
    pattern stream common to both configurations (e.g. a primary input that
    must receive the same stimulus on both sides). *)

module N = Orap_netlist.Netlist

type binding = Fixed of bool | Shared of int

type config = { netlist : N.t; bindings : binding array }

let config netlist bindings =
  if Array.length bindings <> N.num_inputs netlist then
    invalid_arg "Hamming.config: one binding per input required";
  { netlist; bindings }

let shared_width (c : config) =
  Array.fold_left
    (fun acc b -> match b with Shared j -> max acc (j + 1) | Fixed _ -> acc)
    0 c.bindings

(** Average fraction of differing output bits, in [0, 1].  [words] words of
    64 patterns each are applied. *)
let distance ?(seed = 1) ~words (c1 : config) (c2 : config) : float =
  let no = N.num_outputs c1.netlist in
  if no <> N.num_outputs c2.netlist then
    invalid_arg "Hamming.distance: output counts differ";
  let width = max (shared_width c1) (shared_width c2) in
  let rng = Prng.create seed in
  let shared = Array.make (max width 1) 0L in
  let word_of bindings i =
    match bindings.(i) with
    | Fixed true -> Int64.minus_one
    | Fixed false -> 0L
    | Shared j -> shared.(j)
  in
  let diff_bits = ref 0 in
  for _ = 1 to words do
    for j = 0 to width - 1 do
      shared.(j) <- Prng.next64 rng
    done;
    let v1 = Sim.eval_word c1.netlist ~input_word:(word_of c1.bindings) in
    let v2 = Sim.eval_word c2.netlist ~input_word:(word_of c2.bindings) in
    let o1 = N.outputs c1.netlist and o2 = N.outputs c2.netlist in
    for k = 0 to no - 1 do
      diff_bits :=
        !diff_bits + Sim.popcount64 (Int64.logxor v1.(o1.(k)) v2.(o2.(k)))
    done
  done;
  float_of_int !diff_bits /. float_of_int (words * 64 * no)

(** Exact functional-equivalence check by exhaustive simulation; only valid
    for configurations whose shared width is at most [limit] (default 20). *)
let equal_exhaustive ?(limit = 20) (c1 : config) (c2 : config) : bool =
  let no = N.num_outputs c1.netlist in
  if no <> N.num_outputs c2.netlist then
    invalid_arg "Hamming.equal_exhaustive: output counts differ";
  let width = max (shared_width c1) (shared_width c2) in
  if width > limit then invalid_arg "Hamming.equal_exhaustive: too many inputs";
  let shared = Array.make (max width 1) 0L in
  let word_of bindings i =
    match bindings.(i) with
    | Fixed true -> Int64.minus_one
    | Fixed false -> 0L
    | Shared j -> shared.(j)
  in
  let total = 1 lsl width in
  let equal = ref true in
  let base = ref 0 in
  while !equal && !base < total do
    (* pack patterns base..base+63 into one word per shared signal *)
    for j = 0 to width - 1 do
      let w = ref 0L in
      for bit = 0 to 63 do
        let pattern = !base + bit in
        if pattern < total && (pattern lsr j) land 1 = 1 then
          w := Int64.logor !w (Int64.shift_left 1L bit)
      done;
      shared.(j) <- !w
    done;
    let v1 = Sim.eval_word c1.netlist ~input_word:(word_of c1.bindings) in
    let v2 = Sim.eval_word c2.netlist ~input_word:(word_of c2.bindings) in
    let o1 = N.outputs c1.netlist and o2 = N.outputs c2.netlist in
    let mask =
      if total - !base >= 64 then Int64.minus_one
      else Int64.sub (Int64.shift_left 1L (total - !base)) 1L
    in
    for k = 0 to no - 1 do
      if Int64.logand (Int64.logxor v1.(o1.(k)) v2.(o2.(k))) mask <> 0L then
        equal := false
    done;
    base := !base + 64
  done;
  !equal
