(** Output-corruption measurement: average Hamming distance between two
    circuit configurations over shared pseudorandom input patterns. *)

(** Per-input binding: a fixed constant (e.g. a key bit) or the [j]-th
    signal of the pattern stream shared by both configurations. *)
type binding = Fixed of bool | Shared of int

type config = { netlist : Orap_netlist.Netlist.t; bindings : binding array }

(** One binding per input required. *)
val config : Orap_netlist.Netlist.t -> binding array -> config

(** Average fraction of differing output bits, in [0, 1], over [words]
    64-pattern words. *)
val distance : ?seed:int -> words:int -> config -> config -> float

(** Exhaustive equivalence over at most [limit] shared signals
    (default 20). *)
val equal_exhaustive : ?limit:int -> config -> config -> bool
