(** Bit-parallel logic simulation: 64 input patterns per call. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate

(** [eval_word t ~input_word] simulates one 64-pattern word and returns the
    value word of every node.  [input_word i] is the word of the [i]-th
    primary input (position in [N.inputs t]). *)
let eval_word (t : N.t) ~(input_word : int -> int64) : int64 array =
  let n = N.num_nodes t in
  let values = Array.make n 0L in
  let input_pos = ref 0 in
  for i = 0 to n - 1 do
    match N.kind t i with
    | Gate.Input ->
      values.(i) <- input_word !input_pos;
      incr input_pos
    | k ->
      let fan = N.fanins t i in
      let ops = Array.map (fun f -> values.(f)) fan in
      values.(i) <- Gate.eval_word k ops
  done;
  values

(** Output word extraction after [eval_word]. *)
let output_words (t : N.t) (values : int64 array) : int64 array =
  Array.map (fun o -> values.(o)) (N.outputs t)

(** Single-pattern simulation on a bool input assignment (by input position). *)
let eval_bools (t : N.t) (assignment : bool array) : bool array =
  if Array.length assignment <> N.num_inputs t then
    invalid_arg "Sim.eval_bools: wrong input count";
  let values =
    eval_word t ~input_word:(fun i ->
        if assignment.(i) then Int64.minus_one else 0L)
  in
  Array.map (fun o -> Int64.logand values.(o) 1L <> 0L) (N.outputs t)

(** Simulate [words] random 64-pattern words, calling
    [f ~word_index ~outputs] after each word.  Returns unit; used by
    measurement harnesses that fold over output words. *)
let random_words (t : N.t) ~seed ~words
    ~(f : word_index:int -> outputs:int64 array -> unit) : unit =
  let rng = Prng.create seed in
  let ni = N.num_inputs t in
  let input_buf = Array.make ni 0L in
  for w = 0 to words - 1 do
    for i = 0 to ni - 1 do
      input_buf.(i) <- Prng.next64 rng
    done;
    let values = eval_word t ~input_word:(fun i -> input_buf.(i)) in
    f ~word_index:w ~outputs:(output_words t values)
  done

let popcount64 (x : int64) =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)
