(** Deterministic, seedable PRNG (xoshiro256 "starstar"), independent of
    [Stdlib.Random] so experiments reproduce exactly. *)

type t

val create : int -> t

(** 64 fresh pseudorandom bits. *)
val next64 : t -> int64

val bool : t -> bool

(** Uniform integer in [0, bound); raises on non-positive bounds. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool_array : t -> int -> bool array
val word_array : t -> int -> int64 array
