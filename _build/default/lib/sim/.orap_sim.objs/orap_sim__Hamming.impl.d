lib/sim/hamming.ml: Array Int64 Orap_netlist Prng Sim
