lib/sim/sim.ml: Array Int64 Orap_netlist Prng
