lib/sim/prng.mli:
