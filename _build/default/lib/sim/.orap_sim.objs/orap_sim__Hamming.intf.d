lib/sim/hamming.mli: Orap_netlist
