(** AppSAT [11]: approximate SAT attack.  The DIP loop is augmented with
    periodic random-query probes; when the candidate key's error rate on
    random patterns drops below a threshold, the attack settles for an
    approximate key instead of waiting for full miter exhaustion (which
    point-function defences like SARLock push to 2^k iterations). *)

module Locked = Orap_locking.Locked
module Oracle = Orap_core.Oracle
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Prng = Orap_sim.Prng

type result = {
  key : bool array option;
  iterations : int;
  queries : int;
  settled_approximate : bool;  (** stopped at the error threshold *)
  estimated_error : float;  (** failing fraction of the probe queries *)
}

let run ?(max_iterations = 256) ?(probe_every = 8) ?(probe_size = 32)
    ?(error_threshold = 0.01) ?(seed = 4242) (locked : Locked.t)
    (oracle : Oracle.t) : result =
  let st = Sat_attack.make_state locked in
  let rng = Prng.create seed in
  let nri = locked.Locked.num_regular_inputs in
  (* probe the current constraint-consistent key on random queries *)
  let probe () =
    match Solver.solve ~assumptions:[| Lit.negate st.Sat_attack.activate |] st.Sat_attack.solver with
    | Solver.Unsat -> None
    | Solver.Sat ->
      let key = Sat_attack.extract_key st st.Sat_attack.k1_vars in
      Solver.backtrack_to_root st.Sat_attack.solver;
      let errors = ref 0 in
      let failing = ref [] in
      for _ = 1 to probe_size do
        let x = Prng.bool_array rng nri in
        let y = Oracle.query oracle x in
        if Locked.eval locked ~key ~inputs:x <> y then begin
          incr errors;
          failing := (x, y) :: !failing
        end
      done;
      Some (key, float_of_int !errors /. float_of_int probe_size, !failing)
  in
  let rec loop iters =
    if iters >= max_iterations then
      { key = None; iterations = iters; queries = Oracle.num_queries oracle;
        settled_approximate = false; estimated_error = 1.0 }
    else if iters > 0 && iters mod probe_every = 0 then begin
      match probe () with
      | None ->
        { key = None; iterations = iters; queries = Oracle.num_queries oracle;
          settled_approximate = false; estimated_error = 1.0 }
      | Some (key, err, failing) ->
        if err <= error_threshold then
          { key = Some key; iterations = iters;
            queries = Oracle.num_queries oracle;
            settled_approximate = true; estimated_error = err }
        else begin
          (* failing probes double as constraints, as in AppSAT *)
          List.iter (fun (x, y) -> Sat_attack.add_io_constraint st x y) failing;
          dip_step iters
        end
    end
    else dip_step iters
  and dip_step iters =
    match Solver.solve ~assumptions:[| st.Sat_attack.activate |] st.Sat_attack.solver with
    | Solver.Sat ->
      let dip = Sat_attack.extract_key st st.Sat_attack.x_vars in
      Solver.backtrack_to_root st.Sat_attack.solver;
      let y = Oracle.query oracle dip in
      Sat_attack.add_io_constraint st dip y;
      loop (iters + 1)
    | Solver.Unsat -> (
      match Solver.solve ~assumptions:[| Lit.negate st.Sat_attack.activate |] st.Sat_attack.solver with
      | Solver.Sat ->
        let key = Sat_attack.extract_key st st.Sat_attack.k1_vars in
        Solver.backtrack_to_root st.Sat_attack.solver;
        { key = Some key; iterations = iters;
          queries = Oracle.num_queries oracle;
          settled_approximate = false; estimated_error = 0.0 }
      | Solver.Unsat ->
        { key = None; iterations = iters; queries = Oracle.num_queries oracle;
          settled_approximate = false; estimated_error = 1.0 })
  in
  loop 0
