lib/attacks/double_dip.ml: Array Orap_core Orap_locking Orap_netlist Orap_sat
