lib/attacks/sat_attack.ml: Array Orap_core Orap_locking Orap_netlist Orap_sat
