lib/attacks/key_sensitization.ml: Array Orap_core Orap_locking Orap_netlist Orap_sat Orap_sim
