lib/attacks/bypass.ml: Array List Orap_core Orap_locking Orap_netlist Orap_sat Orap_sim
