lib/attacks/appsat.ml: List Orap_core Orap_locking Orap_sat Orap_sim Sat_attack
