lib/attacks/hill_climb.ml: Array List Orap_core Orap_locking Orap_sim
