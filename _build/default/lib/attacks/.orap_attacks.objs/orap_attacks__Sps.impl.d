lib/attacks/sps.ml: Array List Orap_locking Orap_netlist Orap_sim
