lib/attacks/evaluate.ml: Orap_locking Orap_sim Printf
