lib/attacks/removal.ml: Array Hashtbl List Orap_locking Orap_netlist Orap_sim
