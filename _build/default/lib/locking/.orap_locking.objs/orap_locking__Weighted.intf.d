lib/locking/weighted.mli: Locked Orap_netlist
