lib/locking/sarlock.ml: Array Locked Orap_netlist Orap_sim Printf
