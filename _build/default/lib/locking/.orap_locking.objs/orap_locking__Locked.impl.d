lib/locking/locked.ml: Array Orap_netlist Orap_sim
