lib/locking/weighted.ml: Array Fault_impact Hashtbl List Locked Orap_netlist Orap_sim Printf
