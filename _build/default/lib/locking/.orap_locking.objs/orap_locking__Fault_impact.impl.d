lib/locking/fault_impact.ml: Array Hashtbl Int64 List Orap_faultsim Orap_netlist Orap_sim
