lib/locking/random_ll.ml: Array Hashtbl List Locked Orap_netlist Orap_sim Printf
