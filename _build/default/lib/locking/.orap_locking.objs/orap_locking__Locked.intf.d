lib/locking/locked.mli: Orap_netlist Orap_sim
