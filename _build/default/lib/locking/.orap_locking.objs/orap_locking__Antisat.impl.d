lib/locking/antisat.ml: Array Locked Orap_netlist Orap_sim Printf
