(** Fault-impact ranking of candidate key-gate sites, as in fault-analysis
    based locking [3] and weighted logic locking [26]: the impact of a wire
    is how many output bits flip, over random patterns, when the wire is
    inverted.  High-impact wires give key gates maximal corruption reach. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Sim = Orap_sim.Sim
module Prng = Orap_sim.Prng

(* event-driven propagation of "node inverted", counting output bit flips;
   [heap] is reusable scratch (drained on exit) *)
let impact_of_word nl fanouts is_output heap good node : int =
  let faulty : (int, int64) Hashtbl.t = Hashtbl.create 64 in
  let value n = match Hashtbl.find_opt faulty n with Some w -> w | None -> good.(n) in
  let module H = Orap_faultsim.Fsim.Heap in
  Hashtbl.replace faulty node (Int64.lognot good.(node));
  Array.iter (fun r -> H.push heap r) fanouts.(node);
  while not (H.is_empty heap) do
    let n = H.pop heap in
    let w =
      match N.kind nl n with
      | Gate.Input -> good.(n)
      | k -> Gate.eval_word k (Array.map value (N.fanins nl n))
    in
    if w <> value n then begin
      Hashtbl.replace faulty n w;
      Array.iter (fun r -> H.push heap r) fanouts.(n)
    end
  done;
  let diff = ref 0 in
  Hashtbl.iter
    (fun n w ->
      if is_output.(n) then diff := !diff + Sim.popcount64 (Int64.logxor w good.(n)))
    faulty;
  !diff

(** Impact scores for all internal (non-input) nodes, estimated over
    [words] random 64-pattern words; unscored nodes get 0. *)
let scores ?(seed = 17) ?(words = 2) ?(max_candidates = 4000) (nl : N.t) :
    int array =
  let n = N.num_nodes nl in
  let fanouts = N.fanouts nl in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) (N.outputs nl);
  let rng = Prng.create seed in
  (* candidate sample: all logic nodes, or a random subset on big circuits *)
  let logic_nodes =
    List.init n (fun i -> i)
    |> List.filter (fun i ->
           match N.kind nl i with
           | Gate.Input | Gate.Const0 | Gate.Const1 -> false
           | _ -> Array.length fanouts.(i) > 0)
  in
  let candidates =
    let total = List.length logic_nodes in
    if total <= max_candidates then logic_nodes
    else
      List.filter (fun _ -> Prng.int rng total < max_candidates) logic_nodes
  in
  let score = Array.make n 0 in
  let ni = N.num_inputs nl in
  let input_buf = Array.make ni 0L in
  let heap = Orap_faultsim.Fsim.Heap.create n in
  for _ = 1 to words do
    for i = 0 to ni - 1 do
      input_buf.(i) <- Prng.next64 rng
    done;
    let good = Sim.eval_word nl ~input_word:(fun i -> input_buf.(i)) in
    List.iter
      (fun node ->
        score.(node) <-
          score.(node) + impact_of_word nl fanouts is_output heap good node)
      candidates
  done;
  score

(** The [count] highest-impact distinct sites, optionally avoiding
    near-critical timing paths (what yields the paper's 0% delay
    overheads): nodes with slack below [min_slack] are used only when the
    off-critical supply runs out. *)
let top_sites ?seed ?words ?max_candidates ?(avoid_critical = true)
    ?(min_slack = 3) (nl : N.t) ~count : int array =
  let score = scores ?seed ?words ?max_candidates nl in
  let slack = if avoid_critical then N.slacks nl else [||] in
  let is_critical i = avoid_critical && slack.(i) < min_slack in
  let ranked =
    List.init (N.num_nodes nl) (fun i -> i)
    |> List.filter (fun i -> score.(i) > 0)
    |> List.sort (fun a b -> compare score.(b) score.(a))
  in
  let non_critical = List.filter (fun i -> not (is_critical i)) ranked in
  let critical_ranked = List.filter is_critical ranked in
  let take k l =
    let rec go k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: go (k - 1) rest
    in
    go k l
  in
  let picked = take count non_critical in
  let picked =
    if List.length picked < count then
      picked @ take (count - List.length picked) critical_ranked
    else picked
  in
  Array.of_list picked
