(** Weighted logic locking (Karousos et al. [26]), the output-corruption
    layer the paper pairs with OraP.

    The key is partitioned into groups of [ctrl_inputs] bits.  Each group
    drives a control gate — a NAND (resp. AND) over the key bits, each
    selectively inverted so the gate output is 0 (resp. 1) exactly on the
    correct sub-key — and the control output feeds an XOR (resp. XNOR) key
    gate spliced into a high-fault-impact wire.  A wrong random key
    actuates each key gate with probability 1 - 2^-w, which is what buys
    the high output corruptibility. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Prng = Orap_sim.Prng

type params = {
  key_size : int;
  ctrl_inputs : int;  (** control-gate width w; Table I uses 3 or 5 *)
  avoid_critical : bool;
  seed : int;
}

let default_params ~key_size ~ctrl_inputs =
  { key_size; ctrl_inputs; avoid_critical = true; seed = 7 }

(* partition 0..key_size-1 into groups of width w (last group may be short) *)
let key_groups ~key_size ~ctrl_inputs =
  let rec go start acc =
    if start >= key_size then List.rev acc
    else begin
      let w = min ctrl_inputs (key_size - start) in
      go (start + w) (Array.init w (fun j -> start + j) :: acc)
    end
  in
  go 0 []

let num_key_gates ~key_size ~ctrl_inputs =
  List.length (key_groups ~key_size ~ctrl_inputs)

let lock ?(params : params option) (nl : N.t) ~key_size ~ctrl_inputs :
    Locked.t =
  let p =
    match params with
    | Some p -> p
    | None -> default_params ~key_size ~ctrl_inputs
  in
  let rng = Prng.create p.seed in
  let correct_key = Prng.bool_array rng p.key_size in
  let groups = key_groups ~key_size:p.key_size ~ctrl_inputs:p.ctrl_inputs in
  let sites =
    Fault_impact.top_sites ~seed:(p.seed + 1) ~avoid_critical:p.avoid_critical
      nl ~count:(List.length groups)
  in
  if Array.length sites < List.length groups then
    invalid_arg "Weighted.lock: circuit too small for this key size";
  let b = N.Builder.create ~size_hint:(N.num_nodes nl + (4 * p.key_size)) () in
  (* regular inputs keep their positions, then the key inputs *)
  let map = Array.make (N.num_nodes nl) (-1) in
  Array.iteri (fun _ id -> map.(id) <- N.Builder.add_input b) (N.inputs nl);
  let key_ids =
    Array.init p.key_size (fun j ->
        N.Builder.add_input ~name:(Printf.sprintf "key%d" j) b)
  in
  (* site -> its key group index *)
  let site_group = Hashtbl.create 32 in
  List.iteri
    (fun gi group -> Hashtbl.replace site_group sites.(gi) (gi, group))
    groups;
  for i = 0 to N.num_nodes nl - 1 do
    (match N.kind nl i with
    | Gate.Input -> () (* already mapped *)
    | k ->
      let fan = Array.map (fun f -> map.(f)) (N.fanins nl i) in
      map.(i) <- N.Builder.add_node b k fan);
    match Hashtbl.find_opt site_group i with
    | None -> ()
    | Some (gi, group) ->
      (* alternate XOR/NAND and XNOR/AND flavours per gate *)
      let use_xnor = gi land 1 = 1 in
      let lits =
        Array.map
          (fun kbit ->
            (* the control gate must see 1 on the correct sub-key for the
               NAND flavour (output 0 = inactive), and the same literal
               pattern works for the AND flavour (output 1 = pass) *)
            if correct_key.(kbit) then key_ids.(kbit)
            else N.Builder.add_node b Gate.Not [| key_ids.(kbit) |])
          group
      in
      let ctrl_kind = if use_xnor then Gate.And else Gate.Nand in
      let ctrl = N.Builder.add_node b ctrl_kind lits in
      let key_gate_kind = if use_xnor then Gate.Xnor else Gate.Xor in
      let kg = N.Builder.add_node b key_gate_kind [| map.(i); ctrl |] in
      map.(i) <- kg
  done;
  Array.iter (fun o -> N.Builder.mark_output b map.(o)) (N.outputs nl);
  {
    Locked.original = nl;
    netlist = N.Builder.finish b;
    num_regular_inputs = N.num_inputs nl;
    correct_key;
    technique =
      Printf.sprintf "weighted(k=%d,w=%d)" p.key_size p.ctrl_inputs;
  }
