(** Anti-SAT [8]: the block computes Y = g(X xor K1) AND NOT g(X xor K2)
    with g an AND tree.  With K1 = K2 = the correct key, Y is constantly 0;
    any other key pair makes Y flip the protected output on some inputs,
    while keeping the SAT attack's pruning rate near one key per
    iteration. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Prng = Orap_sim.Prng

let lock ?(seed = 31) (nl : N.t) ~key_size : Locked.t =
  let ni = N.num_inputs nl in
  (* the block uses n input taps and 2n key bits *)
  let n = max 1 (min (key_size / 2) ni) in
  let rng = Prng.create seed in
  let k1 = Prng.bool_array rng n in
  (* correct key: K1 arbitrary, K2 = K1 (both halves equal) *)
  let correct_key = Array.append k1 k1 in
  let b = N.Builder.create ~size_hint:(N.num_nodes nl + (8 * n)) () in
  let map = Array.make (N.num_nodes nl) (-1) in
  Array.iter (fun id -> map.(id) <- N.Builder.add_input b) (N.inputs nl);
  let key_ids =
    Array.init (2 * n) (fun j ->
        N.Builder.add_input ~name:(Printf.sprintf "key%d" j) b)
  in
  for i = 0 to N.num_nodes nl - 1 do
    match N.kind nl i with
    | Gate.Input -> ()
    | kind ->
      let fan = Array.map (fun f -> map.(f)) (N.fanins nl i) in
      map.(i) <- N.Builder.add_node b kind fan
  done;
  let inputs = N.inputs nl in
  let xor_taps offset =
    Array.init n (fun j ->
        N.Builder.add_node b Gate.Xor
          [| map.(inputs.(j)); key_ids.(offset + j) |])
  in
  let g1 = N.Builder.add_node b Gate.And (xor_taps 0) in
  let g2 = N.Builder.add_node b Gate.Nand (xor_taps n) in
  let y = N.Builder.add_node b Gate.And [| g1; g2 |] in
  let outputs = N.outputs nl in
  Array.iteri
    (fun idx o ->
      if idx = 0 then
        N.Builder.mark_output b (N.Builder.add_node b Gate.Xor [| map.(o); y |])
      else N.Builder.mark_output b map.(o))
    outputs;
  {
    Locked.original = nl;
    netlist = N.Builder.finish b;
    num_regular_inputs = ni;
    correct_key;
    technique = Printf.sprintf "antisat(n=%d)" n;
  }
