(** Common representation of a locked combinational circuit.

    The locked netlist's inputs are the original primary inputs followed by
    the key inputs; [correct_key.(j)] is the value that must drive key input
    [j] for the circuit to be functionally equivalent to the original. *)

module N = Orap_netlist.Netlist
module Hamming = Orap_sim.Hamming

type t = {
  original : N.t;
  netlist : N.t;
  num_regular_inputs : int;
  correct_key : bool array;
  technique : string;
}

let key_size t = Array.length t.correct_key

let key_input_positions t =
  Array.init (key_size t) (fun j -> t.num_regular_inputs + j)

(** Bindings that fix the key inputs to [key] and share the regular inputs
    with pattern stream indices [0 .. num_regular_inputs-1]. *)
let bindings_with_key t (key : bool array) : Hamming.binding array =
  if Array.length key <> key_size t then invalid_arg "Locked.bindings_with_key";
  Array.init (N.num_inputs t.netlist) (fun i ->
      if i < t.num_regular_inputs then Hamming.Shared i
      else Hamming.Fixed key.(i - t.num_regular_inputs))

let config_with_key t key = Hamming.config t.netlist (bindings_with_key t key)

let original_config t =
  Hamming.config t.original
    (Array.init (N.num_inputs t.original) (fun i -> Hamming.Shared i))

(** Average output Hamming distance (in percent) between the circuit under
    [key] and the original circuit, over shared random patterns. *)
let hamming_vs_original ?seed ?(words = 64) t key =
  100.0
  *. Hamming.distance ?seed ~words (original_config t) (config_with_key t key)

(** Is the locked circuit (under [key]) equal to the original on [words]
    random 64-pattern words?  A cheap functional-equivalence proxy. *)
let equivalent_under_key ?seed ?(words = 64) t key =
  Hamming.distance ?seed ~words (original_config t) (config_with_key t key)
  = 0.0

(** Simulate the locked circuit on regular inputs + key. *)
let eval t ~key ~(inputs : bool array) : bool array =
  if Array.length inputs <> t.num_regular_inputs then invalid_arg "Locked.eval";
  Orap_sim.Sim.eval_bools t.netlist (Array.append inputs key)
