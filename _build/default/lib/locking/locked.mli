(** Common representation of a locked combinational circuit: the locked
    netlist's inputs are the original primary inputs followed by the key
    inputs. *)

type t = {
  original : Orap_netlist.Netlist.t;
  netlist : Orap_netlist.Netlist.t;
  num_regular_inputs : int;
  correct_key : bool array;
  technique : string;
}

val key_size : t -> int

(** Input positions (within the locked netlist) of the key inputs. *)
val key_input_positions : t -> int array

(** Hamming-measurement bindings fixing the key and sharing the regular
    inputs with the pattern stream. *)
val bindings_with_key : t -> bool array -> Orap_sim.Hamming.binding array

val config_with_key : t -> bool array -> Orap_sim.Hamming.config
val original_config : t -> Orap_sim.Hamming.config

(** Average output Hamming distance (percent) of the circuit under [key]
    vs. the original, over shared random patterns. *)
val hamming_vs_original : ?seed:int -> ?words:int -> t -> bool array -> float

(** Random-simulation equivalence proxy (zero Hamming distance). *)
val equivalent_under_key : ?seed:int -> ?words:int -> t -> bool array -> bool

(** Evaluate on regular inputs plus a key. *)
val eval : t -> key:bool array -> inputs:bool array -> bool array
