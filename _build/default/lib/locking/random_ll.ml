(** Random XOR/XNOR logic locking (the EPIC [2] baseline): one key bit per
    key gate, spliced at random internal wires. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Prng = Orap_sim.Prng

let lock ?(seed = 13) (nl : N.t) ~key_size : Locked.t =
  let rng = Prng.create seed in
  let correct_key = Prng.bool_array rng key_size in
  (* pick distinct internal wires *)
  let logic_nodes =
    List.init (N.num_nodes nl) (fun i -> i)
    |> List.filter (fun i ->
           match N.kind nl i with
           | Gate.Input | Gate.Const0 | Gate.Const1 -> false
           | _ -> true)
  in
  if List.length logic_nodes < key_size then
    invalid_arg "Random_ll.lock: circuit too small";
  let arr = Array.of_list logic_nodes in
  (* Fisher-Yates prefix shuffle *)
  let n = Array.length arr in
  for i = 0 to min (key_size - 1) (n - 2) do
    let j = i + Prng.int rng (n - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  let site_key = Hashtbl.create 32 in
  for j = 0 to key_size - 1 do
    Hashtbl.replace site_key arr.(j) j
  done;
  let b = N.Builder.create ~size_hint:(N.num_nodes nl + (2 * key_size)) () in
  let map = Array.make (N.num_nodes nl) (-1) in
  Array.iter (fun id -> map.(id) <- N.Builder.add_input b) (N.inputs nl);
  let key_ids =
    Array.init key_size (fun j ->
        N.Builder.add_input ~name:(Printf.sprintf "key%d" j) b)
  in
  for i = 0 to N.num_nodes nl - 1 do
    (match N.kind nl i with
    | Gate.Input -> ()
    | k ->
      let fan = Array.map (fun f -> map.(f)) (N.fanins nl i) in
      map.(i) <- N.Builder.add_node b k fan);
    match Hashtbl.find_opt site_key i with
    | None -> ()
    | Some j ->
      (* XOR gate passes the wire when the key bit is 0, XNOR when 1 *)
      let kind = if correct_key.(j) then Gate.Xnor else Gate.Xor in
      map.(i) <- N.Builder.add_node b kind [| map.(i); key_ids.(j) |]
  done;
  Array.iter (fun o -> N.Builder.mark_output b map.(o)) (N.outputs nl);
  {
    Locked.original = nl;
    netlist = N.Builder.finish b;
    num_regular_inputs = N.num_inputs nl;
    correct_key;
    technique = Printf.sprintf "random(k=%d)" key_size;
  }
