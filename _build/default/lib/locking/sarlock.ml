(** SARLock [7]: SAT-attack-resistant point-function locking.  A comparator
    flips one primary output exactly when the applied inputs equal the key
    guess and the guess is wrong, so every SAT iteration rules out a single
    key — at the price of the low output corruptibility the paper
    criticises in Section IV. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Prng = Orap_sim.Prng

let lock ?(seed = 29) (nl : N.t) ~key_size : Locked.t =
  let ni = N.num_inputs nl in
  let k = min key_size ni in
  if k < 1 then invalid_arg "Sarlock.lock";
  let rng = Prng.create seed in
  let correct_key = Prng.bool_array rng k in
  let b = N.Builder.create ~size_hint:(N.num_nodes nl + (4 * k)) () in
  let map = Array.make (N.num_nodes nl) (-1) in
  Array.iter (fun id -> map.(id) <- N.Builder.add_input b) (N.inputs nl);
  let key_ids =
    Array.init k (fun j -> N.Builder.add_input ~name:(Printf.sprintf "key%d" j) b)
  in
  for i = 0 to N.num_nodes nl - 1 do
    match N.kind nl i with
    | Gate.Input -> ()
    | kind ->
      let fan = Array.map (fun f -> map.(f)) (N.fanins nl i) in
      map.(i) <- N.Builder.add_node b kind fan
  done;
  (* match = AND_j (x_j XNOR key_j) over the first k inputs *)
  let inputs = N.inputs nl in
  let eq_bits =
    Array.init k (fun j ->
        N.Builder.add_node b Gate.Xnor [| map.(inputs.(j)); key_ids.(j) |])
  in
  let match_all = N.Builder.add_node b Gate.And eq_bits in
  (* wrong = NOT (AND_j (key_j XNOR correct_j)) — the restore comparator *)
  let right_bits =
    Array.init k (fun j ->
        if correct_key.(j) then key_ids.(j)
        else N.Builder.add_node b Gate.Not [| key_ids.(j) |])
  in
  let wrong = N.Builder.add_node b Gate.Nand right_bits in
  let flip = N.Builder.add_node b Gate.And [| match_all; wrong |] in
  (* flip the first primary output *)
  let outputs = N.outputs nl in
  Array.iteri
    (fun idx o ->
      if idx = 0 then
        N.Builder.mark_output b (N.Builder.add_node b Gate.Xor [| map.(o); flip |])
      else N.Builder.mark_output b map.(o))
    outputs;
  {
    Locked.original = nl;
    netlist = N.Builder.finish b;
    num_regular_inputs = ni;
    correct_key;
    technique = Printf.sprintf "sarlock(k=%d)" k;
  }
