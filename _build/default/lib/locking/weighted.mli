(** Weighted logic locking (Karousos et al. [26]): groups of [ctrl_inputs]
    key bits drive NAND/AND control gates (inputs selectively inverted so
    the inactive value appears exactly on the correct sub-key) feeding
    XOR/XNOR key gates on high-fault-impact wires.  A random wrong key
    actuates each key gate with probability 1 - 2^-w. *)

type params = {
  key_size : int;
  ctrl_inputs : int;
  avoid_critical : bool;
  seed : int;
}

val default_params : key_size:int -> ctrl_inputs:int -> params

(** Key-bit groups, in order (the last group may be narrower). *)
val key_groups : key_size:int -> ctrl_inputs:int -> int array list

val num_key_gates : key_size:int -> ctrl_inputs:int -> int

(** Lock a circuit.  Raises [Invalid_argument] if the circuit is too small
    for the requested number of key gates. *)
val lock :
  ?params:params ->
  Orap_netlist.Netlist.t ->
  key_size:int ->
  ctrl_inputs:int ->
  Locked.t
