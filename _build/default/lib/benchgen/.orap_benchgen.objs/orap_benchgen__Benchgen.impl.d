lib/benchgen/benchgen.ml: Array Hashtbl List Orap_netlist Orap_sim Printf
