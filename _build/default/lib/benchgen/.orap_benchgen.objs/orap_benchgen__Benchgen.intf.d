lib/benchgen/benchgen.mli: Orap_netlist
