(** Seeded synthetic combinational benchmark generator.

    Real ISCAS'89/ITC'99 netlists are not distributable inside this
    container, so the Table-I/II experiments run on synthetic circuits whose
    *scale* — primary-input count, primary-output count and gate count —
    matches each benchmark's combinational core (see DESIGN.md).  A genuine
    [.bench] file can be dropped in via {!Orap_netlist.Bench_format} instead.

    Generation sketch: gates are appended with locality-biased fanin
    selection (recent nodes are preferred, occasionally long-range), which
    yields logic depth and reconvergence comparable to synthesised designs;
    dangling sinks are folded together until the primary-output budget is
    met. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Prng = Orap_sim.Prng

type spec = {
  seed : int;
  num_inputs : int;
  num_outputs : int;
  num_gates : int;  (** target count of non-inverter gates *)
}

(* gate-kind mix typical of technology-independent synthesised logic *)
let pick_kind rng =
  match Prng.int rng 100 with
  | x when x < 30 -> Gate.And
  | x when x < 55 -> Gate.Nand
  | x when x < 70 -> Gate.Or
  | x when x < 82 -> Gate.Nor
  | x when x < 90 -> Gate.Xor
  | x when x < 94 -> Gate.Xnor
  | _ -> Gate.Not

let generate (s : spec) : N.t =
  if s.num_inputs < 2 || s.num_outputs < 1 || s.num_gates < 1 then
    invalid_arg "Benchgen.generate";
  let rng = Prng.create s.seed in
  let b = N.Builder.create ~size_hint:(s.num_inputs + s.num_gates + 8) () in
  let pis =
    Array.init s.num_inputs (fun i ->
        N.Builder.add_input ~name:(Printf.sprintf "pi%d" i) b)
  in
  ignore pis;
  (* [unused] tracks nodes with no reader yet, so sink count stays low *)
  let unused : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let mark_new id = Hashtbl.replace unused id () in
  let consume id = Hashtbl.remove unused id in
  for i = 0 to s.num_inputs - 1 do
    mark_new i
  done;
  let gates = ref 0 in
  let pick_fanin () =
    let len = N.Builder.length b in
    (* mostly uniform attachment (keeps depth logarithmic), with a mild
       locality bias that creates the reconvergence real logic exhibits *)
    if Prng.int rng 100 < 20 then begin
      let back = 1 + Prng.int rng (min len 32) in
      len - back
    end
    else Prng.int rng len
  in
  (* stop when generated gates plus the sink-merge gates still to come reach
     the target, so the final gate count lands close to the profile *)
  let pending_merges () = max 0 (Hashtbl.length unused - s.num_outputs) in
  while !gates + pending_merges () < s.num_gates do
    let kind = pick_kind rng in
    let arity =
      match kind with
      | Gate.Not -> 1
      | Gate.Xor | Gate.Xnor -> 2
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
        if Prng.int rng 5 = 0 then 3 else 2
      | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Mux -> 2
    in
    let fan = Array.init arity (fun _ -> pick_fanin ()) in
    (* avoid x op x degeneracies for 2-input gates *)
    if arity = 2 && fan.(0) = fan.(1) then
      fan.(1) <- (fan.(0) + 1) mod N.Builder.length b;
    let id = N.Builder.add_node b kind fan in
    Array.iter consume fan;
    mark_new id;
    if not (Gate.is_inverter_like kind) then incr gates
  done;
  (* fold excess sinks with a balanced XOR forest: every pass pairs up
     adjacent sinks, so the extra depth is logarithmic *)
  let sinks () =
    Hashtbl.fold (fun id () acc -> id :: acc) unused [] |> List.sort compare
  in
  let rec fold_down s_list =
    let n = List.length s_list in
    if n > s.num_outputs then begin
      let excess = n - s.num_outputs in
      let pairs = min excess (n / 2) in
      let rec pair k = function
        | a :: c :: rest when k > 0 ->
          let id = N.Builder.add_node b Gate.Xor [| a; c |] in
          consume a;
          consume c;
          mark_new id;
          id :: pair (k - 1) rest
        | rest -> rest
      in
      fold_down (pair pairs s_list)
    end
  in
  fold_down (sinks ());
  let s_list = sinks () in
  List.iter (N.Builder.mark_output b) s_list;
  (* top up with internal nodes if the sink count fell short *)
  let missing = s.num_outputs - List.length s_list in
  if missing > 0 then begin
    let len = N.Builder.length b in
    for _ = 1 to missing do
      N.Builder.mark_output b (s.num_inputs + Prng.int rng (len - s.num_inputs))
    done
  end;
  N.Builder.finish b

(** Per-circuit profile of the paper's Table I. *)
type profile = {
  name : string;
  inputs : int;
  outputs : int;
  gates : int;
  lfsr_size : int;  (** key size = LFSR length, Table I column 4 *)
  ctrl_inputs : int;  (** weighted-locking control-gate width, column 5 *)
}

(* PI counts are the benchmarks' combinational-core input counts
   (primary inputs + flip-flop outputs); gate/output counts are Table I's. *)
let table1_profiles =
  [
    { name = "s38417"; inputs = 1664; outputs = 1742; gates = 8709; lfsr_size = 256; ctrl_inputs = 3 };
    { name = "s38584"; inputs = 1464; outputs = 1730; gates = 11448; lfsr_size = 186; ctrl_inputs = 3 };
    { name = "b17"; inputs = 1452; outputs = 1512; gates = 29267; lfsr_size = 256; ctrl_inputs = 3 };
    { name = "b18"; inputs = 3357; outputs = 3343; gates = 97569; lfsr_size = 97; ctrl_inputs = 5 };
    { name = "b19"; inputs = 6666; outputs = 6672; gates = 196855; lfsr_size = 208; ctrl_inputs = 5 };
    { name = "b20"; inputs = 522; outputs = 512; gates = 17648; lfsr_size = 236; ctrl_inputs = 3 };
    { name = "b21"; inputs = 522; outputs = 512; gates = 17972; lfsr_size = 229; ctrl_inputs = 3 };
    { name = "b22"; inputs = 767; outputs = 757; gates = 26195; lfsr_size = 243; ctrl_inputs = 3 };
  ]

let find_profile name =
  List.find_opt (fun p -> p.name = name) table1_profiles

let of_profile ?(seed_offset = 0) (p : profile) : N.t =
  generate
    {
      seed = Hashtbl.hash p.name + seed_offset;
      num_inputs = p.inputs;
      num_outputs = p.outputs;
      num_gates = p.gates;
    }

(** Scaled-down profile for quick runs: divides gates/IO by [factor],
    keeping at least a workable minimum. *)
let scale ?(factor = 10) (p : profile) : profile =
  {
    p with
    name = Printf.sprintf "%s/%d" p.name factor;
    inputs = max 8 (p.inputs / factor);
    outputs = max 4 (p.outputs / factor);
    gates = max 32 (p.gates / factor);
    lfsr_size = max 16 (p.lfsr_size / min factor 4);
  }
