(** Seeded synthetic combinational benchmark generator and the Table-I
    circuit profiles (see DESIGN.md §2 for the substitution rationale). *)

type spec = {
  seed : int;
  num_inputs : int;
  num_outputs : int;
  num_gates : int;  (** target count of non-inverter gates *)
}

(** Deterministic generation; gate count lands within a few gates of the
    target, output count is met exactly. *)
val generate : spec -> Orap_netlist.Netlist.t

type profile = {
  name : string;
  inputs : int;
  outputs : int;
  gates : int;
  lfsr_size : int;  (** key size = LFSR length (Table I, column 4) *)
  ctrl_inputs : int;  (** control-gate width (column 5) *)
}

(** The eight circuits of the paper's Table I. *)
val table1_profiles : profile list

val find_profile : string -> profile option
val of_profile : ?seed_offset:int -> profile -> Orap_netlist.Netlist.t

(** Scaled-down profile for quick runs (gates and I/O divided by [factor],
    key size by at most 4). *)
val scale : ?factor:int -> profile -> profile
