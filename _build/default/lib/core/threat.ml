(** Section III threat models: the five foundry-Trojan attack scenarios
    against OraP, each with the functional deviation it implants and the
    payload hardware it costs (the paper's security argument is that every
    scenario either fails functionally or needs a payload large enough for
    power side-channel detection [25]).

    Payload figures are in NAND2-equivalents, following the paper's own
    accounting: replacing a pulse generator's NAND2 by a NAND3 costs about
    half a NAND2 per cell ("roughly 64 NAND2 gates" for 128 cells); a
    2-to-1 MUX costs 3; a scan flip-flop 6; an XOR 3.  The Trojan trigger
    is on top of the payload and excluded, as in the paper. *)

module Scan = Orap_dft.Scan
module Lfsr = Orap_lfsr.Lfsr
module Symbolic = Orap_lfsr.Symbolic
module Keyseq = Orap_lfsr.Keyseq

type scenario =
  | Suppress_cell_resets  (** (a) NAND3 swap in every pulse generator *)
  | Exclude_lfsr_from_scan  (** (b) stem suppression + bypass MUXes *)
  | Shadow_register  (** (c) shadow copy of the key register *)
  | Xor_tree_key  (** (d) seed registers + XOR trees *)
  | Freeze_state_ffs  (** (e) hold the FFs through unlocking *)

let all_scenarios =
  [
    Suppress_cell_resets;
    Exclude_lfsr_from_scan;
    Shadow_register;
    Xor_tree_key;
    Freeze_state_ffs;
  ]

let scenario_label = function
  | Suppress_cell_resets -> "(a) suppress per-cell reset"
  | Exclude_lfsr_from_scan -> "(b) exclude LFSR from scan"
  | Shadow_register -> "(c) shadow key register"
  | Xor_tree_key -> "(d) XOR-tree key reconstruction"
  | Freeze_state_ffs -> "(e) freeze FFs during unlock"

(* NAND2-equivalent cost constants *)
let nand3_extra_cost = 0.5
let mux2_cost = 3.0
let scan_ff_cost = 6.0
let xor2_cost = 3.0
let freeze_gate_cost = 4.0  (* a few gates on the FF enable/reset stems *)

(** Payload of a scenario against a given design, in NAND2-equivalents. *)
let payload (design : Orap.t) = function
  | Suppress_cell_resets ->
    nand3_extra_cost *. float_of_int (Orap.key_size design)
  | Exclude_lfsr_from_scan ->
    (* one bypass MUX per key cell that hands over to a state FF in the
       chain (the interleaving guideline maximises this), plus the single
       stem gate *)
    (mux2_cost *. float_of_int (Scan.bypass_mux_count design.Orap.chain))
    +. nand3_extra_cost
  | Shadow_register ->
    let n = float_of_int (Orap.key_size design) in
    (scan_ff_cost +. mux2_cost) *. n
  | Xor_tree_key ->
    let n = Orap.key_size design in
    let exprs, seed_bits =
      match design.Orap.schedule with
      | Orap.Basic_schedule ks ->
        let free_runs =
          List.map (fun e -> e.Keyseq.free_run) (Keyseq.entries ks)
        in
        ( Symbolic.of_schedule design.Orap.lfsr
            ~num_seeds:(Keyseq.num_seeds ks) ~free_runs,
          Keyseq.total_seed_bits ks )
      | Orap.Modified_schedule m ->
        (* symbolic over every memory injection of both phases; the
           response-driven contributions make the real payload even larger,
           so this is a lower bound *)
        let mw = Array.length design.Orap.memory_points in
        let cycles = List.length m.Orap.phase_a + List.length m.Orap.phase_b in
        let num_vars = cycles * mw in
        let mem_lfsr =
          Lfsr.create
            ~taps:(Lfsr.taps_of design.Orap.lfsr)
            ~reseed_points:design.Orap.memory_points ~size:n ()
        in
        let sym = Symbolic.create mem_lfsr ~num_vars in
        for c = 0 to cycles - 1 do
          let inj =
            Array.init mw (fun k ->
                Orap_lfsr.Bitset.singleton num_vars ((c * mw) + k))
          in
          Symbolic.step ~injection:inj mem_lfsr sym
        done;
        (Symbolic.cells sym, num_vars)
    in
    (xor2_cost *. float_of_int (Symbolic.xor_tree_gates exprs))
    +. (scan_ff_cost *. float_of_int seed_bits)
    +. (mux2_cost *. float_of_int n)
  | Freeze_state_ffs -> freeze_gate_cost

let trojan_of_scenario = function
  | Suppress_cell_resets ->
    { Chip.no_trojan with Chip.suppress_cell_reset = (fun _ -> true) }
  | Exclude_lfsr_from_scan ->
    { Chip.no_trojan with Chip.exclude_lfsr_from_scan = true }
  | Shadow_register -> { Chip.no_trojan with Chip.shadow_register = true }
  | Xor_tree_key -> { Chip.no_trojan with Chip.xor_tree_key = true }
  | Freeze_state_ffs ->
    { Chip.no_trojan with Chip.freeze_ffs_during_unlock = true }

(** Outcome of running a scenario's attack procedure end to end. *)
type outcome = {
  scenario : scenario;
  oracle_obtained : bool;
      (** did the attacker end up with correct-response scan access (or the
          key itself)? *)
  payload_nand2 : float;
  detectable : bool;  (** payload above the side-channel threshold *)
}

(** Side-channel detection threshold (NAND2-equivalents).  Variation-aware
    power analysis with circuit partitioning detects "very small Trojans"
    [25]; the default is deliberately conservative. *)
let default_detection_threshold = 10.0

(* does scan access return correct (unlocked) responses on this chip? *)
let scan_access_correct (design : Orap.t) chip =
  let locked = design.Orap.locked in
  let oracle = Oracle.scan_chip chip in
  let reference = Oracle.functional locked in
  let rng = Orap_sim.Prng.create 555 in
  let width = Orap.num_ext_inputs design + Orap.num_ffs design in
  let trials = 24 in
  let ok = ref true in
  for _ = 1 to trials do
    let inputs = Orap_sim.Prng.bool_array rng width in
    if Oracle.query oracle inputs <> Oracle.query reference inputs then
      ok := false
  done;
  !ok

(* scenario (a): steal the key straight from the scan chain *)
let stolen_key_via_dump design chip =
  let dump = Chip.scan_dump chip in
  let n = Orap.key_size design in
  let key = Array.make n false in
  let seen = ref 0 in
  Array.iter
    (fun (cell, bit) ->
      match cell with
      | Scan.Key i ->
        key.(i) <- bit;
        incr seen
      | Scan.State _ -> ())
    dump;
  if !seen = n then Some key else None

(* scenario (e): scan in a chosen state, unlock with frozen FFs, run one
   functional cycle, scan the response out; compare with the true response *)
let freeze_attack_succeeds design chip =
  let rng = Orap_sim.Prng.create 777 in
  let nff = Orap.num_ffs design in
  let next = Orap.num_ext_inputs design in
  let trials = 8 in
  let ok = ref true in
  for _ = 1 to trials do
    let state = Orap_sim.Prng.bool_array rng nff in
    let ext = Orap_sim.Prng.bool_array rng next in
    (* attacker: load state via scan (key register resets, harmlessly) *)
    Chip.set_scan_enable chip true;
    let cells = Chip.chain_cells chip in
    let n = Array.length cells in
    let image =
      Array.map
        (fun c -> match c with Scan.Key _ -> false | Scan.State j -> state.(j))
        cells
    in
    for i = n - 1 downto 0 do
      ignore (Chip.scan_shift chip ~scan_in:image.(i))
    done;
    Chip.set_scan_enable chip false;
    (* Trojan freezes the FFs while the controller unlocks *)
    Chip.unlock chip;
    (* one functional clock on the attacker's state *)
    let ext_outs = Chip.functional_cycle chip ~ext_inputs:ext in
    let captured = Chip.ff_state chip in
    (* ground truth from the unprotected functional oracle *)
    let reference = Oracle.functional design.Orap.locked in
    let truth = Oracle.query reference (Array.append ext state) in
    let true_ext, true_ffs = Orap.split_outputs design truth in
    if not (ext_outs = true_ext && captured = true_ffs) then ok := false
  done;
  !ok

(** Execute a scenario end to end against a freshly fabricated chip. *)
let run ?(detection_threshold = default_detection_threshold)
    (design : Orap.t) (scenario : scenario) : outcome =
  let chip = Chip.create ~trojan:(trojan_of_scenario scenario) design in
  let oracle_obtained =
    match scenario with
    | Suppress_cell_resets ->
      (* buy a chip from the open market: it arrives activated *)
      Chip.unlock chip;
      (match stolen_key_via_dump design chip with
      | Some key -> key = design.Orap.locked.Orap_locking.Locked.correct_key
      | None -> false)
    | Exclude_lfsr_from_scan | Shadow_register | Xor_tree_key ->
      Chip.unlock chip;
      scan_access_correct design chip
    | Freeze_state_ffs -> freeze_attack_succeeds design chip
  in
  let p = payload design scenario in
  {
    scenario;
    oracle_obtained;
    payload_nand2 = p;
    detectable = p >= detection_threshold;
  }

(** The paper's verdict: a scenario is defeated when it either fails to
    obtain the oracle or is exposed by side-channel Trojan detection. *)
let defeated outcome = (not outcome.oracle_obtained) || outcome.detectable
