(** Cycle-accurate behavioural model of a fabricated OraP-protected chip,
    exposing exactly the attacker/tester interface: primary I/O pins,
    functional clock, [scan_enable] and the scan ports.  Trojan hooks model
    the Section-III scenarios. *)

(** Foundry-inserted deviations (all-false = honest chip). *)
type trojan = {
  suppress_cell_reset : int -> bool;  (** scenario (a), per LFSR cell *)
  exclude_lfsr_from_scan : bool;  (** scenario (b) *)
  shadow_register : bool;  (** scenario (c) *)
  xor_tree_key : bool;  (** scenario (d) *)
  freeze_ffs_during_unlock : bool;  (** scenario (e) *)
}

val no_trojan : trojan

type t = {
  design : Orap.t;
  trojan : trojan;
  lfsr : Orap_lfsr.Lfsr.t;
  pulse_gens : Orap_dft.Pulse_gen.t array;
  mutable ffs : bool array;
  mutable scan_enable : bool;
  mutable unlocked : bool;
  mutable shadow : bool array option;
}

val create : ?trojan:trojan -> Orap.t -> t

(** {1 Observation} *)

val scan_enable : t -> bool
val key_register : t -> bool array
val ff_state : t -> bool array
val is_unlocked : t -> bool

(** The key value the combinational logic actually sees (Trojans (c)/(d)
    substitute their stolen copy). *)
val effective_key : t -> bool array

(** {1 Pins and clocking} *)

(** Drive the [scan_enable] pin; on a rising edge every pulse generator
    fires and clears its LFSR cell unless a Trojan suppresses it. *)
val set_scan_enable : t -> bool -> unit

(** Combinational outputs at the pins for the current state. *)
val comb_outputs : t -> ext_inputs:bool array -> bool array

(** One functional clock cycle (functional mode only): returns the external
    outputs and updates the state flip-flops. *)
val functional_cycle : ?freeze_override:bool -> t -> ext_inputs:bool array -> bool array

(** Run the on-chip unlock controller: pulse [scan_enable] to clear the key
    register, then feed the secret schedule. *)
val unlock : t -> unit

(** {1 Scan operations (scan mode only)} *)

(** Cells of the chain as this chip exposes them (Trojan (b) hides the key
    cells). *)
val chain_cells : t -> Orap_dft.Scan.cell array

val scan_shift : t -> scan_in:bool -> bool
val scan_in_out : t -> bool array -> bool array

(** Capture cycle: the state FFs load their functional inputs; the key
    register holds. *)
val capture : t -> ext_inputs:bool array -> bool array

(** Full test access: load a state (and optionally the key register — its
    cells are scannable), capture under [ext_inputs], unload.  Returns
    (external outputs at capture, captured FF vector). *)
val scan_test :
  ?key:bool array ->
  t ->
  state:bool array ->
  ext_inputs:bool array ->
  bool array * bool array

(** Shift the raw chain out without capturing (scenario (a)'s key theft). *)
val scan_dump : t -> (Orap_dft.Scan.cell * bool) array
