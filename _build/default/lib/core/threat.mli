(** Section III threat models: the five foundry-Trojan scenarios against
    OraP, each with its functional deviation and its payload cost in
    NAND2-equivalents (the Trojan trigger is excluded, as in the paper). *)

type scenario =
  | Suppress_cell_resets  (** (a) NAND3 swap in every pulse generator *)
  | Exclude_lfsr_from_scan  (** (b) stem suppression + bypass MUXes *)
  | Shadow_register  (** (c) shadow copy of the key register *)
  | Xor_tree_key  (** (d) seed registers + XOR trees *)
  | Freeze_state_ffs  (** (e) hold the FFs through unlocking *)

val all_scenarios : scenario list
val scenario_label : scenario -> string

(** Payload of a scenario against a given design, in NAND2-equivalents.
    Scenario (d)'s trees are sized by symbolic LFSR simulation of the
    design's actual schedule. *)
val payload : Orap.t -> scenario -> float

(** The chip-level deviation implementing a scenario. *)
val trojan_of_scenario : scenario -> Chip.trojan

type outcome = {
  scenario : scenario;
  oracle_obtained : bool;
  payload_nand2 : float;
  detectable : bool;
}

(** Side-channel Trojan-detection threshold (NAND2-equivalents) used when
    [run] is not given one explicitly. *)
val default_detection_threshold : float

(** Execute a scenario end to end against a freshly fabricated chip:
    fabricate with the Trojan, activate (buy from the open market), attack
    through the scan interface, and report. *)
val run : ?detection_threshold:float -> Orap.t -> scenario -> outcome

(** A scenario is defeated when it fails to obtain the oracle or its
    payload is detectable. *)
val defeated : outcome -> bool
