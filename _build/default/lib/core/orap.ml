(** The OraP oracle-protection scheme (Sections II and III of the paper).

    A protected design bundles: a combinational circuit locked with a
    high-corruptibility technique (weighted logic locking by default), a
    key register configured as an LFSR and wired into the scan chains, one
    pulse generator per LFSR cell clearing it when [scan_enable] rises, and
    the secret unlock schedule stored in tamper-proof memory.

    Two variants are built:
    - {b Basic} (Fig. 1): every reseeding point is driven from the
      tamper-proof memory; the circuit key is the LFSR state after the
      whole key sequence has been fed.
    - {b Modified} (Fig. 3): the odd reseeding points are driven by chosen
      circuit flip-flops, so the (wrong) responses the locked circuit
      produces *during* unlocking become necessary inputs of the key
      computation — which is what defeats the FF-freezing Trojan of
      scenario (e).  Unlocking runs in two phases: a mixing phase A with
      response feedback active, then a short finalisation phase B in which
      the controller gates the response points off and the remaining
      memory-driven injections place the exact key (solved at design time
      by GF(2) elimination over the symbolic LFSR).  Phase B is a
      constructive realisation of the paper's schedule (see DESIGN.md,
      "Known divergences"). *)

module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Lfsr = Orap_lfsr.Lfsr
module Keyseq = Orap_lfsr.Keyseq
module Symbolic = Orap_lfsr.Symbolic
module Bitset = Orap_lfsr.Bitset
module Scan = Orap_dft.Scan
module Prng = Orap_sim.Prng

type kind = Basic | Modified

type config = {
  kind : kind;
  taps_stride : int;  (** polynomial: a new tap every [taps_stride] cells *)
  num_seeds : int;  (** seeds of the basic key sequence *)
  max_free_run : int;
  chain_style : Scan.style;
  num_ffs : int;  (** state flip-flops of the sequential wrapper *)
  phase_a_cycles : int;  (** modified scheme: response-mixing cycles *)
  seed : int;
}

let default_config ?(kind = Basic) ~num_ffs () =
  {
    kind;
    taps_stride = 8;
    num_seeds = 4;
    max_free_run = 5;
    chain_style = Scan.Interleaved;
    num_ffs;
    phase_a_cycles = 12;
    seed = 2020;
  }

(** The modified scheme's unlock schedule. *)
type modified_schedule = {
  phase_a : bool array list;  (** per cycle: bits for the memory points *)
  phase_b : bool array list;  (** finalisation injections (solved) *)
}

type schedule = Basic_schedule of Keyseq.t | Modified_schedule of modified_schedule

type t = {
  locked : Locked.t;
  config : config;
  lfsr : Lfsr.t;  (** structural template (taps, reseed points) *)
  chain : Scan.t;
  schedule : schedule;
  memory_points : int array;  (** reseed points fed from tamper-proof memory *)
  response_points : int array;  (** reseed points fed by circuit FFs (modified) *)
  response_sources : int array;  (** FF index feeding each response point *)
}

let key_size t = Locked.key_size t.locked
let num_ffs t = t.config.num_ffs

(** Split [n] external inputs/outputs: a locked circuit with [num_ffs] state
    flip-flops exposes [inputs - num_ffs] external PIs (the FF outputs are
    the trailing pseudo-inputs) and [outputs - num_ffs] external POs (the FF
    next-state functions are the trailing pseudo-outputs). *)
let num_ext_inputs t = t.locked.Locked.num_regular_inputs - t.config.num_ffs
let num_ext_outputs t =
  N.num_outputs t.locked.Locked.netlist - t.config.num_ffs

(* full combinational evaluation: ext inputs ++ ff values ++ key *)
let comb_eval t ~key ~ext ~ffs =
  Locked.eval t.locked ~key ~inputs:(Array.append ext ffs)

let split_outputs t (outs : bool array) =
  let no = Array.length outs in
  let nff = t.config.num_ffs in
  (Array.sub outs 0 (no - nff), Array.sub outs (no - nff) nff)

(* --- designer-side unlock-dynamics simulation for the modified scheme --- *)

(* one closed-loop unlock cycle: inject memory bits + FF responses, step the
   LFSR, clock the circuit FFs *)
let closed_loop_cycle t ~lfsr ~(ffs : bool array) ~(memory_bits : bool array)
    ~response_active =
  let width = Lfsr.num_reseed_points lfsr in
  let inj = Array.make width false in
  Array.iteri (fun k p -> inj.(p) <- memory_bits.(k)) t.memory_points;
  if response_active then
    Array.iteri
      (fun k p -> inj.(p) <- ffs.(t.response_sources.(k)))
      t.response_points;
  Lfsr.step ~injection:inj lfsr;
  (* the circuit clocks with the evolving (wrong) key; primary inputs are
     held at zero by the unlock controller *)
  let key = Lfsr.state lfsr in
  let ext = Array.make (num_ext_inputs t) false in
  let outs = comb_eval t ~key ~ext ~ffs in
  let _, next_ffs = split_outputs t outs in
  next_ffs

(* Injection positions are indices into the reseed-point array; memory and
   response points partition it even/odd (interleaved, per the paper). *)
let split_points lfsr kind =
  let pts = Lfsr.reseed_points_of lfsr in
  match kind with
  | Basic -> (Array.copy pts, [||])
  | Modified ->
    let mem = ref [] and resp = ref [] in
    Array.iteri
      (fun k p -> if k land 1 = 0 then mem := p :: !mem else resp := p :: !resp)
      pts;
    (Array.of_list (List.rev !mem), Array.of_list (List.rev !resp))

exception Construction_failure of string

(** Build a protected design around an already locked circuit.  The locked
    circuit's correct key becomes the target of the unlock schedule. *)
let protect ?(config : config option) (locked : Locked.t) : t =
  let n = Locked.key_size locked in
  let cfg =
    match config with
    | Some c -> c
    | None ->
      default_config
        ~num_ffs:(min (locked.Locked.num_regular_inputs / 2)
                    (N.num_outputs locked.Locked.netlist / 2))
        ()
  in
  if cfg.num_ffs > locked.Locked.num_regular_inputs then
    raise (Construction_failure "more FFs than circuit inputs");
  if cfg.num_ffs > N.num_outputs locked.Locked.netlist then
    raise (Construction_failure "more FFs than circuit outputs");
  let lfsr =
    Lfsr.create
      ~taps:(Lfsr.default_taps ~size:n ~stride:cfg.taps_stride)
      ~reseed_points:(Lfsr.all_reseed_points n)
      ~size:n ()
  in
  let chain =
    Scan.build ~style:cfg.chain_style ~num_key:n ~num_state:cfg.num_ffs ()
  in
  let memory_points, response_points = split_points lfsr cfg.kind in
  let rng = Prng.create cfg.seed in
  let response_sources =
    Array.init (Array.length response_points) (fun _ ->
        Prng.int rng (max 1 cfg.num_ffs))
  in
  let partial =
    {
      locked;
      config = cfg;
      lfsr;
      chain;
      schedule = Basic_schedule { Keyseq.entries = [] };
      memory_points;
      response_points;
      response_sources;
    }
  in
  let target = locked.Locked.correct_key in
  let schedule =
    match cfg.kind with
    | Basic ->
      Basic_schedule
        (Keyseq.solve_for_key ~max_free_run:cfg.max_free_run ~seed:cfg.seed
           ~num_seeds:cfg.num_seeds lfsr ~target_key:target)
    | Modified ->
      (* phase A: random memory bits, closed loop *)
      let mw = Array.length memory_points in
      let phase_a =
        List.init cfg.phase_a_cycles (fun _ -> Prng.bool_array rng mw)
      in
      let sim_lfsr = Lfsr.create ~taps:(Lfsr.taps_of lfsr) ~size:n () in
      Lfsr.reset sim_lfsr;
      let ffs = ref (Array.make cfg.num_ffs false) in
      List.iter
        (fun bits ->
          ffs :=
            closed_loop_cycle partial ~lfsr:sim_lfsr ~ffs:!ffs
              ~memory_bits:bits ~response_active:true)
        phase_a;
      let sigma = Lfsr.state sim_lfsr in
      (* phase B: symbolic over the memory-point injections only *)
      let phase_b_cycles = (2 * ((n + mw - 1) / mw)) + 4 in
      let num_vars = phase_b_cycles * mw in
      let mem_lfsr =
        Lfsr.create ~taps:(Lfsr.taps_of lfsr) ~reseed_points:memory_points
          ~size:n ()
      in
      let sym = Symbolic.create mem_lfsr ~num_vars in
      for c = 0 to phase_b_cycles - 1 do
        let inj =
          Array.init mw (fun k -> Bitset.singleton num_vars ((c * mw) + k))
        in
        Symbolic.step ~injection:inj mem_lfsr sym
      done;
      (* constant part: evolve sigma with zero injections *)
      Lfsr.set_state mem_lfsr sigma;
      Lfsr.free_run mem_lfsr phase_b_cycles;
      let const_part = Lfsr.state mem_lfsr in
      let rhs = Array.mapi (fun i k -> k <> const_part.(i)) target in
      (match Symbolic.solve (Symbolic.cells sym) ~num_vars rhs with
      | None ->
        raise
          (Construction_failure
             "modified schedule: finalisation system is rank-deficient")
      | Some sol ->
        let phase_b =
          List.init phase_b_cycles (fun c ->
              Array.init mw (fun k -> sol.((c * mw) + k)))
        in
        Modified_schedule { phase_a; phase_b })
  in
  { partial with schedule }

(** Number of unlock clock cycles. *)
let unlock_cycles t =
  match t.schedule with
  | Basic_schedule ks -> Keyseq.unlock_cycles ks
  | Modified_schedule m -> List.length m.phase_a + List.length m.phase_b

(** OraP's own hardware, in the paper's gate units (inverters free):
    one pulse-generator NAND per LFSR cell, one XOR per reseeding point and
    one XOR per polynomial tap.  The LFSR flip-flops are not counted — a key
    register is common to all locking schemes (Section IV). *)
type hardware = { pulse_gen_gates : int; reseed_xors : int; tap_xors : int }

let hardware t =
  let n = key_size t in
  {
    pulse_gen_gates = n * Orap_dft.Pulse_gen.gate_cost;
    reseed_xors = Lfsr.num_reseed_points t.lfsr;
    tap_xors =
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
        (Lfsr.taps_of t.lfsr);
  }

let hardware_gate_count h = h.pulse_gen_gates + h.reseed_xors + h.tap_xors

(** The same hardware expressed in AIG AND-node units (XOR = 3 ANDs), for
    combining with the synthesis metrics of Table I. *)
let hardware_and_nodes h = h.pulse_gen_gates + (3 * (h.reseed_xors + h.tap_xors))
