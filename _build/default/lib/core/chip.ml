(** Cycle-accurate behavioural model of a fabricated OraP-protected chip.

    The model exposes exactly the interface an attacker (or tester) has:
    primary input pins, primary output pins, clock (functional cycles),
    [scan_enable] and the scan-chain ports.  Trojan hooks model the
    Section-III attack scenarios: a fabricated chip may deviate from the
    design in the specific, payload-costed ways the paper analyses. *)

module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Lfsr = Orap_lfsr.Lfsr
module Keyseq = Orap_lfsr.Keyseq
module Scan = Orap_dft.Scan
module Pulse_gen = Orap_dft.Pulse_gen

(** Foundry-inserted deviations (all [false]/constant-false = honest chip). *)
type trojan = {
  suppress_cell_reset : int -> bool;
      (** scenario (a): per-cell pulse-generator sabotage *)
  exclude_lfsr_from_scan : bool;
      (** scenario (b): key cells bypassed in the chains and their reset
          suppressed at the scan-enable stem *)
  shadow_register : bool;
      (** scenario (c): a shadow copy of the key drives the key gates
          whenever the LFSR no longer holds it *)
  xor_tree_key : bool;
      (** scenario (d): seed registers + XOR trees recompute the key *)
  freeze_ffs_during_unlock : bool;
      (** scenario (e): state FFs hold their values while unlocking *)
}

let no_trojan =
  {
    suppress_cell_reset = (fun _ -> false);
    exclude_lfsr_from_scan = false;
    shadow_register = false;
    xor_tree_key = false;
    freeze_ffs_during_unlock = false;
  }

type t = {
  design : Orap.t;
  trojan : trojan;
  lfsr : Lfsr.t;  (** runtime key register *)
  pulse_gens : Pulse_gen.t array;
  mutable ffs : bool array;
  mutable scan_enable : bool;
  mutable unlocked : bool;  (** unlock sequence has completed *)
  mutable shadow : bool array option;  (** scenario (c)/(d) stolen key *)
}

let create ?(trojan = no_trojan) (design : Orap.t) : t =
  let n = Orap.key_size design in
  {
    design;
    trojan;
    lfsr =
      Lfsr.create
        ~taps:(Lfsr.taps_of design.Orap.lfsr)
        ~reseed_points:(Lfsr.reseed_points_of design.Orap.lfsr)
        ~size:n ();
    pulse_gens = Array.init n (fun _ -> Pulse_gen.create ());
    ffs = Array.make (Orap.num_ffs design) false;
    scan_enable = false;
    unlocked = false;
    shadow = None;
  }

let scan_enable t = t.scan_enable
let key_register t = Lfsr.state t.lfsr
let ff_state t = Array.copy t.ffs
let is_unlocked t = t.unlocked

(** The key value the combinational logic actually sees. *)
let effective_key t =
  match t.shadow with
  | Some stolen when t.trojan.shadow_register || t.trojan.xor_tree_key -> stolen
  | Some _ | None -> Lfsr.state t.lfsr

(** Drive the [scan_enable] pin.  On a rising edge every pulse generator
    fires and clears its LFSR cell — unless a Trojan suppresses it. *)
let set_scan_enable t v =
  t.scan_enable <- v;
  let stem_suppressed = t.trojan.exclude_lfsr_from_scan in
  Array.iteri
    (fun i gen ->
      let fires = Pulse_gen.observe gen ~scan_enable:v in
      if fires && (not stem_suppressed) && not (t.trojan.suppress_cell_reset i)
      then begin
        let s = Lfsr.state t.lfsr in
        s.(i) <- false;
        Lfsr.set_state t.lfsr s
      end)
    t.pulse_gens

(* combinational evaluation at the pins *)
let comb_outputs t ~(ext_inputs : bool array) : bool array =
  Orap.comb_eval t.design ~key:(effective_key t) ~ext:ext_inputs ~ffs:t.ffs

(** One functional clock cycle: returns the external outputs and updates the
    state flip-flops.  Must be in functional mode. *)
let functional_cycle ?(freeze_override = false) t ~(ext_inputs : bool array) :
    bool array =
  if t.scan_enable then invalid_arg "Chip.functional_cycle: scan mode";
  let outs = comb_outputs t ~ext_inputs in
  let ext_outs, next_ffs = Orap.split_outputs t.design outs in
  if not freeze_override then t.ffs <- next_ffs;
  ext_outs

(* --- unlock controller (logic-locking control logic) --- *)

let unlock_cycle t ~memory_bits ~response_active ~freeze =
  let d = t.design in
  let width = Lfsr.num_reseed_points t.lfsr in
  let inj = Array.make width false in
  Array.iteri (fun k p -> inj.(p) <- memory_bits.(k)) d.Orap.memory_points;
  if response_active then
    Array.iteri
      (fun k p -> inj.(p) <- t.ffs.(d.Orap.response_sources.(k)))
      d.Orap.response_points;
  Lfsr.step ~injection:inj t.lfsr;
  (* clock the circuit: PIs held at zero by the controller *)
  let ext = Array.make (Orap.num_ext_inputs d) false in
  let outs = comb_outputs t ~ext_inputs:ext in
  let _, next_ffs = Orap.split_outputs d outs in
  if not freeze then t.ffs <- next_ffs

(** Run the whole unlock sequence, as the on-chip controller does at the
    beginning of normal operation: pulse [scan_enable] to clear the key
    register, then feed the key sequence from the tamper-proof memory. *)
let unlock t =
  set_scan_enable t true;
  set_scan_enable t false;
  let freeze = t.trojan.freeze_ffs_during_unlock in
  (match t.design.Orap.schedule with
  | Orap.Basic_schedule ks ->
    List.iter
      (fun e ->
        unlock_cycle t ~memory_bits:e.Keyseq.seed ~response_active:false
          ~freeze;
        for _ = 1 to e.Keyseq.free_run do
          unlock_cycle t
            ~memory_bits:(Array.make (Array.length e.Keyseq.seed) false)
            ~response_active:false ~freeze
        done)
      (Keyseq.entries ks)
  | Orap.Modified_schedule m ->
    List.iter
      (fun bits -> unlock_cycle t ~memory_bits:bits ~response_active:true ~freeze)
      m.Orap.phase_a;
    List.iter
      (fun bits -> unlock_cycle t ~memory_bits:bits ~response_active:false ~freeze)
      m.Orap.phase_b);
  t.unlocked <- true;
  (* Trojans (c)/(d) steal the key the moment it is formed *)
  if t.trojan.shadow_register || t.trojan.xor_tree_key then
    t.shadow <- Some (Lfsr.state t.lfsr)

(* --- scan operations --- *)

let chain_cells t =
  if t.trojan.exclude_lfsr_from_scan then
    Array.of_list
      (List.filter
         (fun c -> match c with Scan.State _ -> true | Scan.Key _ -> false)
         (Array.to_list (Scan.order t.design.Orap.chain)))
  else Scan.order t.design.Orap.chain

let read_cell t = function
  | Scan.Key i -> (Lfsr.state t.lfsr).(i)
  | Scan.State j -> t.ffs.(j)

let write_cell t cell v =
  match cell with
  | Scan.Key i ->
    let s = Lfsr.state t.lfsr in
    s.(i) <- v;
    Lfsr.set_state t.lfsr s
  | Scan.State j -> t.ffs.(j) <- v

(** One scan shift; requires scan mode. *)
let scan_shift t ~scan_in : bool =
  if not t.scan_enable then invalid_arg "Chip.scan_shift: not in scan mode";
  let cells = chain_cells t in
  let n = Array.length cells in
  let out = read_cell t cells.(n - 1) in
  for i = n - 1 downto 1 do
    write_cell t cells.(i) (read_cell t cells.(i - 1))
  done;
  write_cell t cells.(0) scan_in;
  out

(** Shift a whole vector in (first element enters first / ends deepest) and
    return the bits shifted out. *)
let scan_in_out t (bits : bool array) : bool array =
  Array.map (fun b -> scan_shift t ~scan_in:b) bits

(** Capture cycle in scan mode: the state FFs load their functional inputs
    (computed under the currently effective key); the key register holds. *)
let capture t ~(ext_inputs : bool array) : bool array =
  if not t.scan_enable then invalid_arg "Chip.capture: not in scan mode";
  let outs = comb_outputs t ~ext_inputs in
  let ext_outs, next_ffs = Orap.split_outputs t.design outs in
  t.ffs <- next_ffs;
  ext_outs

(** Full scan-based test access: load a state (and optionally the key
    register — its cells are in the chains, which is what gives the
    tester full controllability), capture under [ext_inputs], unload the
    captured state.  Returns (external outputs at capture, captured FF
    vector). *)
let scan_test ?key t ~(state : bool array) ~(ext_inputs : bool array) :
    bool array * bool array =
  set_scan_enable t true;
  let cells = chain_cells t in
  let n = Array.length cells in
  (* place [state] (and [key]) into the cells by shifting a full image *)
  let key_bit i = match key with None -> false | Some k -> k.(i) in
  let image =
    Array.map
      (fun c ->
        match c with Scan.Key i -> key_bit i | Scan.State j -> state.(j))
      cells
  in
  (* shift in reversed so that image.(i) lands in cell i *)
  for i = n - 1 downto 0 do
    ignore (scan_shift t ~scan_in:image.(i))
  done;
  let ext_outs = capture t ~ext_inputs in
  (* unload: read back the chain while shifting zeros *)
  let out_bits = Array.init n (fun _ -> scan_shift t ~scan_in:false) in
  (* out_bits.(0) is the last cell's content, i.e. chain order reversed *)
  let captured = Array.make (Array.length state) false in
  Array.iteri
    (fun i c ->
      match c with
      | Scan.State j -> captured.(j) <- out_bits.(n - 1 - i)
      | Scan.Key _ -> ())
    cells;
  set_scan_enable t false;
  (ext_outs, captured)

(** Scan the raw chain out (no capture): what scenario (a) uses to steal the
    key register contents. *)
let scan_dump t : (Scan.cell * bool) array =
  set_scan_enable t true;
  let cells = chain_cells t in
  let n = Array.length cells in
  let bits = Array.init n (fun _ -> scan_shift t ~scan_in:false) in
  set_scan_enable t false;
  Array.init n (fun i -> (cells.(i), bits.(n - 1 - i)))
