(** The OraP oracle-protection scheme (Sections II and III of the paper):
    construction of protected designs around an already locked circuit.

    See the implementation header for the basic (Fig. 1) / modified (Fig. 3)
    variants and the two-phase realisation of the modified unlock schedule. *)

type kind = Basic | Modified

type config = {
  kind : kind;
  taps_stride : int;
  num_seeds : int;
  max_free_run : int;
  chain_style : Orap_dft.Scan.style;
  num_ffs : int;
  phase_a_cycles : int;
  seed : int;
}

val default_config : ?kind:kind -> num_ffs:int -> unit -> config

type modified_schedule = {
  phase_a : bool array list;
  phase_b : bool array list;
}

type schedule =
  | Basic_schedule of Orap_lfsr.Keyseq.t
  | Modified_schedule of modified_schedule

type t = {
  locked : Orap_locking.Locked.t;
  config : config;
  lfsr : Orap_lfsr.Lfsr.t;
  chain : Orap_dft.Scan.t;
  schedule : schedule;
  memory_points : int array;
  response_points : int array;
  response_sources : int array;
}

exception Construction_failure of string

(** Build a protected design; the locked circuit's correct key becomes the
    target of the (solved) unlock schedule. *)
val protect : ?config:config -> Orap_locking.Locked.t -> t

val key_size : t -> int
val num_ffs : t -> int
val num_ext_inputs : t -> int
val num_ext_outputs : t -> int
val unlock_cycles : t -> int

(** Combinational evaluation of the locked core at a given key. *)
val comb_eval : t -> key:bool array -> ext:bool array -> ffs:bool array -> bool array

(** Split a full output vector into (external outputs, next-state values). *)
val split_outputs : t -> bool array -> bool array * bool array

(** {1 Hardware accounting (Table I)} *)

type hardware = { pulse_gen_gates : int; reseed_xors : int; tap_xors : int }

val hardware : t -> hardware
val hardware_gate_count : hardware -> int

(** The same hardware in AIG AND-node units (XOR = 3 ANDs). *)
val hardware_and_nodes : hardware -> int
