lib/core/threat.mli: Chip Orap
