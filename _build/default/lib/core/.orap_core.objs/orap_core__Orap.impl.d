lib/core/orap.ml: Array List Orap_dft Orap_lfsr Orap_locking Orap_netlist Orap_sim
