lib/core/chip.mli: Orap Orap_dft Orap_lfsr
