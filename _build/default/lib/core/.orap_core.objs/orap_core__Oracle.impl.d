lib/core/oracle.ml: Array Chip Orap Orap_locking Orap_netlist
