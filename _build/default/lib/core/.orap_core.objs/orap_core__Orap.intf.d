lib/core/orap.mli: Orap_dft Orap_lfsr Orap_locking
