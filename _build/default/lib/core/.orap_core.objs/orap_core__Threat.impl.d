lib/core/threat.ml: Array Chip List Oracle Orap Orap_dft Orap_lfsr Orap_locking Orap_sim
