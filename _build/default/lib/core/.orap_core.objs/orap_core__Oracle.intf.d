lib/core/oracle.mli: Chip Orap_locking
