lib/core/chip.ml: Array List Orap Orap_dft Orap_lfsr Orap_locking Orap_netlist
