lib/experiments/trojan_table.ml: List Orap_core Report Security
