lib/experiments/table2.ml: List Orap_atpg Orap_benchgen Orap_locking Orap_netlist Report
