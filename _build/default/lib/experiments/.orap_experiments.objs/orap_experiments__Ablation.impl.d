lib/experiments/ablation.ml: Array List Orap_benchgen Orap_core Orap_lfsr Orap_locking Orap_netlist Orap_sim Orap_synth Report Security
