lib/experiments/security.ml: Array List Orap_attacks Orap_benchgen Orap_core Orap_dft Orap_locking Orap_netlist Orap_sim Report
