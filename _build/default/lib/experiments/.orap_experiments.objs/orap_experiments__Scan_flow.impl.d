lib/experiments/scan_flow.ml: Array List Orap_atpg Orap_core Orap_locking Orap_netlist
