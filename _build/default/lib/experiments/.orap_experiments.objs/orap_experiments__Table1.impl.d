lib/experiments/table1.ml: List Orap_benchgen Orap_core Orap_locking Orap_netlist Orap_sim Orap_synth Report
