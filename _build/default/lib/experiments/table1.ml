(** Table I: Hamming distance, area and delay overhead of OraP + weighted
    logic locking on the eight benchmark profiles.

    Per circuit: a synthetic netlist at the profile's scale is locked with
    weighted logic locking (key size = LFSR size, control-gate width from
    the profile), wrapped in an OraP design, and measured:
    - HD: mean output Hamming distance of random keys vs. the valid key;
    - area/delay: ABC-style [strash -> refactor -> rewrite] of original and
      protected netlists (plus OraP's own pulse-generator and XOR hardware
      in AND-node units), as percentages over the original. *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Abc = Orap_synth.Abc_script
module Aig = Orap_synth.Aig
module Prng = Orap_sim.Prng

type row = {
  name : string;
  gates : int;
  outputs : int;
  lfsr_size : int;
  ctrl_inputs : int;
  hd_pct : float;
  area_pct : float;
  delay_pct : float;
}

type params = {
  scale : int;  (** divide the profile sizes by this (1 = paper scale) *)
  hd_words : int;  (** 64-pattern words per HD estimate *)
  hd_keys : int;  (** random keys averaged for the HD column *)
  synth_effort : int;
  seed : int;
}

let default_params =
  { scale = 1; hd_words = 320; hd_keys = 4; synth_effort = 1; seed = 2020 }

let quick_params =
  { scale = 16; hd_words = 64; hd_keys = 3; synth_effort = 1; seed = 2020 }

let run_profile (p : params) (profile : Benchgen.profile) : row =
  let profile =
    if p.scale = 1 then profile else Benchgen.scale ~factor:p.scale profile
  in
  let nl = Benchgen.of_profile profile in
  let locked =
    Weighted.lock nl ~key_size:profile.Benchgen.lfsr_size
      ~ctrl_inputs:profile.Benchgen.ctrl_inputs
  in
  let design =
    Orap.protect
      ~config:
        {
          (Orap.default_config ~kind:Orap.Basic
             ~num_ffs:(min 32 (N.num_outputs nl / 2)) ())
          with
          Orap.seed = p.seed;
        }
      locked
  in
  (* HD: valid key vs random keys *)
  let rng = Prng.create (p.seed + 3) in
  let hd_sum = ref 0.0 in
  for k = 1 to p.hd_keys do
    let key = Prng.bool_array rng (Locked.key_size locked) in
    hd_sum :=
      !hd_sum
      +. Locked.hamming_vs_original ~seed:(p.seed + k) ~words:p.hd_words
           locked key
  done;
  let hd = !hd_sum /. float_of_int p.hd_keys in
  (* area / delay through the resynthesis pipeline *)
  let mo = Abc.evaluate ~effort:p.synth_effort nl in
  let mp = Abc.evaluate ~effort:p.synth_effort locked.Locked.netlist in
  let orap_ands = Orap.hardware_and_nodes (Orap.hardware design) in
  let area_pct =
    100.0
    *. float_of_int (mp.Abc.ands + orap_ands - mo.Abc.ands)
    /. float_of_int mo.Abc.ands
  in
  let delay_pct =
    if mo.Abc.levels = 0 then 0.0
    else
      100.0
      *. float_of_int (max 0 (mp.Abc.levels - mo.Abc.levels))
      /. float_of_int mo.Abc.levels
  in
  {
    name = profile.Benchgen.name;
    gates = N.gate_count nl;
    outputs = N.num_outputs nl;
    lfsr_size = profile.Benchgen.lfsr_size;
    ctrl_inputs = profile.Benchgen.ctrl_inputs;
    hd_pct = hd;
    area_pct;
    delay_pct;
  }

let run ?(params = default_params) ?(profiles = Benchgen.table1_profiles) () :
    row list =
  List.map (run_profile params) profiles

let report (rows : row list) : Report.t =
  let t =
    Report.create ~title:"Table I: HD, area and delay overhead"
      ~header:
        [ "Circuit"; "# Gates"; "# Outputs"; "LFSR size"; "Ctrl inputs";
          "HD (%)"; "Area ovhd (%)"; "Delay ovhd (%)" ]
      ~aligns:[ Report.L; R; R; R; R; R; R; R ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.name; Report.d r.gates; Report.d r.outputs; Report.d r.lfsr_size;
          Report.d r.ctrl_inputs; Report.f2 r.hd_pct; Report.f2 r.area_pct;
          Report.f2 r.delay_pct ])
    rows;
  t
