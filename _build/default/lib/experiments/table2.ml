(** Table II: stuck-at fault coverage and redundant+aborted fault counts,
    original vs. OraP-protected versions of the benchmark profiles.

    The protected version's key inputs are free ATPG inputs — the LFSR is
    in the scan chains — which is why the paper observes *better* fault
    coverage for the protected circuits (key gates act as test points). *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Locked = Orap_locking.Locked
module Atpg = Orap_atpg.Atpg

type side = { fc_pct : float; redundant_aborted : int; total_faults : int }

type row = { name : string; original : side; protected_ : side }

type params = {
  scale : int;
  random_words : int;
  backtrack_limit : int;
  seed : int;
}

let default_params =
  { scale = 8; random_words = 32; backtrack_limit = 64; seed = 2020 }

let quick_params =
  { scale = 24; random_words = 16; backtrack_limit = 48; seed = 2020 }

let run_side (p : params) (nl : N.t) : side =
  let r =
    Atpg.run ~seed:p.seed ~random_words:p.random_words
      ~backtrack_limit:p.backtrack_limit nl
  in
  {
    fc_pct = Atpg.coverage r;
    redundant_aborted = Atpg.redundant_plus_aborted r;
    total_faults = r.Atpg.total_faults;
  }

let run_profile (p : params) (profile : Benchgen.profile) : row =
  let profile =
    if p.scale = 1 then profile else Benchgen.scale ~factor:p.scale profile
  in
  let nl = Benchgen.of_profile profile in
  let locked =
    Weighted.lock nl ~key_size:profile.Benchgen.lfsr_size
      ~ctrl_inputs:profile.Benchgen.ctrl_inputs
  in
  {
    name = profile.Benchgen.name;
    original = run_side p nl;
    protected_ = run_side p locked.Locked.netlist;
  }

let run ?(params = default_params) ?(profiles = Benchgen.table1_profiles) () :
    row list =
  List.map (run_profile params) profiles

let report (rows : row list) : Report.t =
  let t =
    Report.create
      ~title:"Table II: stuck-at fault coverage and redundant+aborted faults"
      ~header:
        [ "Circuit"; "Orig FC (%)"; "Orig #Red+Abrt"; "Prot FC (%)";
          "Prot #Red+Abrt" ]
      ~aligns:[ Report.L; R; R; R; R ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.name; Report.f2 r.original.fc_pct;
          Report.d r.original.redundant_aborted;
          Report.f2 r.protected_.fc_pct;
          Report.d r.protected_.redundant_aborted ])
    rows;
  t
