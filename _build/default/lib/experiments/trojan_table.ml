(** S2: the Section-III Trojan scenario table — payload overheads and
    end-to-end attack outcomes for scenarios (a)–(e), against both the
    basic and the modified OraP schemes. *)

module Orap = Orap_core.Orap
module Threat = Orap_core.Threat

type row = {
  scenario : Threat.scenario;
  scheme : string;
  outcome : Threat.outcome;
}

let run (fx : Security.fixture) : row list =
  List.concat_map
    (fun (scheme, design) ->
      List.map
        (fun sc -> { scenario = sc; scheme; outcome = Threat.run design sc })
        Threat.all_scenarios)
    [ ("basic", fx.Security.basic); ("modified", fx.Security.modified) ]

let report (rows : row list) : Report.t =
  let t =
    Report.create ~title:"Section III Trojan scenarios: payload and outcome"
      ~header:
        [ "Scenario"; "Scheme"; "Oracle obtained"; "Payload (NAND2-eq)";
          "Side-channel detectable"; "Defeated" ]
      ~aligns:[ Report.L; Report.L; Report.L; Report.R; Report.L; Report.L ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ Threat.scenario_label r.scenario; r.scheme;
          Report.b r.outcome.Threat.oracle_obtained;
          Report.f1 r.outcome.Threat.payload_nand2;
          Report.b r.outcome.Threat.detectable;
          Report.b (Threat.defeated r.outcome) ])
    rows;
  t

(** The paper's 128-bit reference point for scenario (a): "roughly 64 NAND2
    gates". *)
let paper_reference_payload_a ~key_size = 0.5 *. float_of_int key_size
