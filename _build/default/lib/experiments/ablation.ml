(** Ablations of the design choices DESIGN.md calls out:

    - A1: key-gate site selection — fault-impact ranking (with and without
      near-critical-path avoidance) vs. random sites: output corruption and
      delay overhead;
    - A2: control-gate width — corruption vs. key-gate count (also exercised
      by [examples/design_space.exe]);
    - A3: LFSR vs. plain shift register as key register — scenario-(d)
      XOR-tree payload (the paper's reason for the LFSR);
    - A4: basic vs. modified scheme — unlock latency and scenario-(e)
      verdict. *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Locked = Orap_locking.Locked
module Fault_impact = Orap_locking.Fault_impact
module Orap = Orap_core.Orap
module Threat = Orap_core.Threat
module Lfsr = Orap_lfsr.Lfsr
module Symbolic = Orap_lfsr.Symbolic
module Abc = Orap_synth.Abc_script
module Prng = Orap_sim.Prng

(* A1: site-selection policy *)

type a1_row = {
  policy : string;
  hd_pct : float;
  delay_overhead_pct : float;
}

let site_selection ?(seed = 6) ?(num_gates = 1200) ?(key_size = 30) () :
    a1_row list =
  let nl =
    Benchgen.generate
      { Benchgen.seed; num_inputs = 64; num_outputs = 48; num_gates }
  in
  let mo = Abc.evaluate nl in
  let measure policy params_avoid random_sites =
    let locked =
      if random_sites then Orap_locking.Random_ll.lock ~seed nl ~key_size
      else
        Weighted.lock
          ~params:
            {
              (Weighted.default_params ~key_size ~ctrl_inputs:3) with
              Weighted.avoid_critical = params_avoid;
              seed;
            }
          nl ~key_size ~ctrl_inputs:3
    in
    let rng = Prng.create (seed + 1) in
    let hd_sum = ref 0.0 in
    for _ = 1 to 3 do
      hd_sum :=
        !hd_sum
        +. Locked.hamming_vs_original locked
             (Prng.bool_array rng (Locked.key_size locked))
    done;
    let mp = Abc.evaluate locked.Locked.netlist in
    {
      policy;
      hd_pct = !hd_sum /. 3.0;
      delay_overhead_pct =
        (if mo.Abc.levels = 0 then 0.0
         else
           100.0
           *. float_of_int (max 0 (mp.Abc.levels - mo.Abc.levels))
           /. float_of_int mo.Abc.levels);
    }
  in
  [
    measure "fault-impact, slack-aware" true false;
    measure "fault-impact, unrestricted" false false;
    measure "random sites (EPIC)" true true;
  ]

let a1_report rows =
  let t =
    Report.create ~title:"A1: key-gate site selection"
      ~header:[ "Policy"; "HD random key (%)"; "Delay overhead (%)" ]
      ~aligns:[ Report.L; Report.R; Report.R ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.policy; Report.f1 r.hd_pct; Report.f1 r.delay_overhead_pct ])
    rows;
  t

(* A3: key-register structure vs scenario-(d) payload *)

type a3_row = { register : string; mean_terms : float; xor_gates : int }

let key_register_structure ?(size = 96) ?(num_seeds = 6) ?(free_run = 8) () :
    a3_row list =
  let schedule taps =
    let lfsr = Lfsr.create ?taps ~size () in
    let free_runs = List.init num_seeds (fun _ -> free_run) in
    Symbolic.of_schedule lfsr ~num_seeds ~free_runs
  in
  let row register exprs =
    {
      register;
      mean_terms = Symbolic.mean_terms exprs;
      xor_gates = Symbolic.xor_tree_gates exprs;
    }
  in
  [
    row "LFSR (tap every 8 cells)" (schedule None);
    row "plain shift register" (schedule (Some (Array.make size false)));
  ]

let a3_report rows =
  let t =
    Report.create ~title:"A3: key-register structure vs XOR-tree Trojan payload"
      ~header:[ "Register"; "Mean terms/cell"; "XOR-tree gates" ]
      ~aligns:[ Report.L; Report.R; Report.R ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.register; Report.f1 r.mean_terms; Report.d r.xor_gates ])
    rows;
  t

(* A4: basic vs modified *)

type a4_row = {
  scheme : string;
  unlock_cycles : int;
  freeze_defeated : bool;
}

let scheme_comparison (fx : Security.fixture) : a4_row list =
  let row name design =
    let o = Threat.run design Threat.Freeze_state_ffs in
    {
      scheme = name;
      unlock_cycles = Orap.unlock_cycles design;
      freeze_defeated = Threat.defeated o;
    }
  in
  [
    row "basic (Fig. 1)" fx.Security.basic;
    row "modified (Fig. 3)" fx.Security.modified;
  ]

let a4_report rows =
  let t =
    Report.create ~title:"A4: basic vs modified OraP"
      ~header:[ "Scheme"; "Unlock cycles"; "Scenario (e) defeated" ]
      ~aligns:[ Report.L; Report.R; Report.L ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.scheme; Report.d r.unlock_cycles; Report.b r.freeze_defeated ])
    rows;
  t
