(** Manufacturing-test flow through the protected chip (the Table-II story
    told end to end).

    ATPG runs on the protected combinational core with the key inputs as
    free inputs (the LFSR cells are scannable).  Each deterministic pattern
    is then turned into a *scan program* — shift the state and key portions
    into the chains, apply the external inputs at the pins, capture, shift
    out — and executed against the cycle-accurate chip model.  The flow
    checks that:
    - every observed response equals the locked core's prediction (the chip
      is tested exactly as ATPG assumed — *locked*, per the OraP protocol);
    - the key register never holds the secret key during the session; and
    - the tester never needed the unlock sequence. *)

module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Atpg = Orap_atpg.Atpg

type result = {
  patterns_applied : int;
  responses_match_prediction : bool;
  key_register_never_secret : bool;
  atpg_coverage_pct : float;
}

let run ?(random_words = 16) ?(backtrack_limit = 64) (design : Orap.t) : result
    =
  let locked = design.Orap.locked in
  let nl = locked.Locked.netlist in
  let report = Atpg.run ~random_words ~backtrack_limit nl in
  let chip = Chip.create design in
  let n_ext = Orap.num_ext_inputs design in
  let n_ffs = Orap.num_ffs design in
  let n_key = Orap.key_size design in
  let all_match = ref true in
  let never_secret = ref true in
  let applied = ref 0 in
  List.iter
    (fun pattern ->
      (* pattern covers ext ++ ffs ++ key, in the locked core's input order *)
      let ext = Array.sub pattern 0 n_ext in
      let state = Array.sub pattern n_ext n_ffs in
      let key = Array.sub pattern (n_ext + n_ffs) n_key in
      let ext_outs, captured = Chip.scan_test ~key chip ~state ~ext_inputs:ext in
      incr applied;
      let predicted = Locked.eval locked ~key ~inputs:(Array.append ext state) in
      let p_ext, p_ffs = Orap.split_outputs design predicted in
      if not (ext_outs = p_ext && captured = p_ffs) then all_match := false;
      if Chip.key_register chip = locked.Locked.correct_key then
        never_secret := false)
    report.Atpg.patterns;
  {
    patterns_applied = !applied;
    responses_match_prediction = !all_match;
    key_register_never_secret = !never_secret;
    atpg_coverage_pct = Atpg.coverage report;
  }
