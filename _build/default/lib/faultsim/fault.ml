(** Single stuck-at fault model with standard equivalence collapsing. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate

type site =
  | Output of int  (** node id: fault on the node's output stem *)
  | Input of int * int  (** (node id, fanin position): fanout-branch fault *)

type t = { site : site; stuck : bool }

let compare = Stdlib.compare

let to_string (nl : N.t) f =
  let v = if f.stuck then 1 else 0 in
  match f.site with
  | Output n -> Printf.sprintf "%s/sa%d" (N.node_name nl n) v
  | Input (n, pos) -> Printf.sprintf "%s.in%d/sa%d" (N.node_name nl n) pos v

(** Collapsed fault list:
    - both stuck-at faults on every node output (stem faults);
    - branch (gate-input) faults only where the driver has fanout > 1
      (single-fanout connections are equivalent to the stem fault);
    - controlled-value branch faults folded into the gate-output fault
      (e.g. an AND input s-a-0 is equivalent to the AND output s-a-0);
    - inverter/buffer input faults folded into their output faults. *)
let collapsed_list (nl : N.t) : t array =
  let fanout_count = Array.make (N.num_nodes nl) 0 in
  for i = 0 to N.num_nodes nl - 1 do
    Array.iter
      (fun f -> fanout_count.(f) <- fanout_count.(f) + 1)
      (N.fanins nl i)
  done;
  Array.iter
    (fun o -> fanout_count.(o) <- fanout_count.(o) + 1)
    (N.outputs nl);
  let acc = ref [] in
  let add f = acc := f :: !acc in
  for n = 0 to N.num_nodes nl - 1 do
    (* stem faults on every node that drives something *)
    if fanout_count.(n) > 0 then begin
      add { site = Output n; stuck = false };
      add { site = Output n; stuck = true }
    end;
    (* branch faults *)
    let keep_branch stuck =
      match N.kind nl n with
      | Gate.And | Gate.Nand -> stuck <> false (* s-a-0 == output fault *)
      | Gate.Or | Gate.Nor -> stuck <> true
      | Gate.Not | Gate.Buf -> false
      | Gate.Xor | Gate.Xnor | Gate.Mux -> true
      | Gate.Input | Gate.Const0 | Gate.Const1 -> false
    in
    Array.iteri
      (fun pos f ->
        if fanout_count.(f) > 1 then begin
          if keep_branch false then add { site = Input (n, pos); stuck = false };
          if keep_branch true then add { site = Input (n, pos); stuck = true }
        end)
      (N.fanins nl n)
  done;
  Array.of_list (List.rev !acc)

(** Uncollapsed count, for reporting. *)
let total_uncollapsed (nl : N.t) : int =
  let c = ref 0 in
  for n = 0 to N.num_nodes nl - 1 do
    c := !c + 2 + (2 * Array.length (N.fanins nl n))
  done;
  !c
