(** Single stuck-at fault model with standard equivalence collapsing. *)

type site =
  | Output of int  (** node id: fault on the node's output stem *)
  | Input of int * int  (** (node id, fanin position): fanout-branch fault *)

type t = { site : site; stuck : bool }

val compare : t -> t -> int
val to_string : Orap_netlist.Netlist.t -> t -> string

(** Collapsed list: stem faults everywhere, branch faults only on fanout
    branches, controlled-value and inverter/buffer input faults folded into
    their equivalents. *)
val collapsed_list : Orap_netlist.Netlist.t -> t array

(** Uncollapsed fault count, for reporting. *)
val total_uncollapsed : Orap_netlist.Netlist.t -> int
