(** Parallel-pattern single-fault propagation (HOPE-style): 64 patterns per
    word, event-driven faulty-value propagation restricted to the affected
    region, fault dropping on first detection. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Sim = Orap_sim.Sim
module Prng = Orap_sim.Prng

(* min-heap of node ids for event-driven forward propagation *)
module Heap = struct
  type h = { mutable a : int array; mutable len : int; mutable mem : bool array }

  let create n = { a = Array.make 64 0; len = 0; mem = Array.make n false }

  let push h x =
    if not h.mem.(x) then begin
      h.mem.(x) <- true;
      if h.len = Array.length h.a then begin
        let b = Array.make (2 * h.len) 0 in
        Array.blit h.a 0 b 0 h.len;
        h.a <- b
      end;
      h.a.(h.len) <- x;
      h.len <- h.len + 1;
      let i = ref (h.len - 1) in
      while !i > 0 && h.a.((!i - 1) / 2) > h.a.(!i) do
        let p = (!i - 1) / 2 in
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p
      done
    end

  let pop h =
    let top = h.a.(0) in
    h.mem.(top) <- false;
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.len && h.a.(l) < h.a.(!m) then m := l;
      if r < h.len && h.a.(r) < h.a.(!m) then m := r;
      if !m = !i then continue_ := false
      else begin
        let tmp = h.a.(!m) in
        h.a.(!m) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !m
      end
    done;
    top

  let is_empty h = h.len = 0
end

type t = {
  nl : N.t;
  fanouts : int array array;
  is_output : bool array;
  (* scratch: faulty values of the current fault's affected region *)
  faulty : int64 array;
  dirty : bool array;
  touched : int list ref;
  (* reusable event heap: drained (and thus self-cleaned) after every use *)
  heap : Heap.h;
}

let create (nl : N.t) : t =
  let n = N.num_nodes nl in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) (N.outputs nl);
  {
    nl;
    fanouts = N.fanouts nl;
    is_output;
    faulty = Array.make n 0L;
    dirty = Array.make n false;
    touched = ref [];
    heap = Heap.create n;
  }

(** Simulate one fault against one 64-pattern word of good values.
    Returns the mask of patterns that detect the fault. *)
let detect_word (t : t) (good : int64 array) (fault : Fault.t) : int64 =
  let nl = t.nl in
  (* clean scratch from the previous fault *)
  List.iter (fun n -> t.dirty.(n) <- false) !(t.touched);
  t.touched := [];
  let set_faulty n w =
    if not t.dirty.(n) then begin
      t.dirty.(n) <- true;
      t.touched := n :: !(t.touched)
    end;
    t.faulty.(n) <- w
  in
  let value n = if t.dirty.(n) then t.faulty.(n) else good.(n) in
  let stuck_word = if fault.Fault.stuck then Int64.minus_one else 0L in
  let eval_node ?forced n =
    match N.kind nl n with
    | Gate.Input -> good.(n) (* PI values never change *)
    | k ->
      let fan = N.fanins nl n in
      let ops =
        Array.mapi
          (fun pos f ->
            match forced with
            | Some (p, w) when p = pos -> w
            | _ -> value f)
          fan
      in
      Gate.eval_word k ops
  in
  let heap = t.heap in
  let activate n w =
    if w <> good.(n) then begin
      set_faulty n w;
      Array.iter (fun r -> Heap.push heap r) t.fanouts.(n)
    end
  in
  (match fault.Fault.site with
  | Fault.Output n -> activate n stuck_word
  | Fault.Input (n, pos) ->
    let w = eval_node ~forced:(pos, stuck_word) n in
    activate n w);
  let faulty_site_input n pos =
    (* during propagation the faulty branch keeps its stuck value *)
    match fault.Fault.site with
    | Fault.Input (fn, fpos) when fn = n && fpos = pos -> Some stuck_word
    | Fault.Input _ | Fault.Output _ -> None
  in
  while not (Heap.is_empty heap) do
    let n = Heap.pop heap in
    let w =
      match N.kind nl n with
      | Gate.Input -> good.(n)
      | k ->
        let fan = N.fanins nl n in
        let ops =
          Array.mapi
            (fun pos f ->
              match faulty_site_input n pos with
              | Some sw -> sw
              | None -> value f)
            fan
        in
        Gate.eval_word k ops
    in
    (match fault.Fault.site with
    | Fault.Output fn when fn = n -> () (* site output stays stuck *)
    | Fault.Output _ | Fault.Input _ ->
      if w <> value n then begin
        set_faulty n w;
        Array.iter (fun r -> Heap.push heap r) t.fanouts.(n)
      end)
  done;
  (* detected on the patterns where some primary output finally differs *)
  let final = ref 0L in
  List.iter
    (fun n ->
      if t.is_output.(n) then
        final := Int64.logor !final (Int64.logxor (value n) good.(n)))
    !(t.touched);
  !final

type stats = { mutable detected : int; mutable simulated_words : int }

(** Random-pattern fault simulation with dropping.  [faults] is mutated:
    [remaining.(i)] is set to [false] when fault [i] is detected.  Returns
    statistics. *)
let random_simulate ?(seed = 99) ~words (nl : N.t) (faults : Fault.t array)
    (remaining : bool array) : stats =
  let t = create nl in
  let rng = Prng.create seed in
  let ni = N.num_inputs nl in
  let stats = { detected = 0; simulated_words = 0 } in
  let input_buf = Array.make ni 0L in
  for _ = 1 to words do
    for i = 0 to ni - 1 do
      input_buf.(i) <- Prng.next64 rng
    done;
    let good = Sim.eval_word nl ~input_word:(fun i -> input_buf.(i)) in
    stats.simulated_words <- stats.simulated_words + 1;
    Array.iteri
      (fun i f ->
        if remaining.(i) then
          if detect_word t good f <> 0L then begin
            remaining.(i) <- false;
            stats.detected <- stats.detected + 1
          end)
      faults
  done;
  stats

(** Simulate a single concrete test pattern (from ATPG) against the
    remaining faults, dropping everything it detects.  Unspecified inputs
    must already be filled by the caller. *)
let simulate_pattern (t : t) (pattern : bool array) (faults : Fault.t array)
    (remaining : bool array) : int =
  let good =
    Sim.eval_word t.nl ~input_word:(fun i ->
        if pattern.(i) then Int64.minus_one else 0L)
  in
  let dropped = ref 0 in
  Array.iteri
    (fun i f ->
      if remaining.(i) then
        if detect_word t good f <> 0L then begin
          remaining.(i) <- false;
          incr dropped
        end)
    faults;
  !dropped
