lib/faultsim/fault.ml: Array List Orap_netlist Printf Stdlib
