lib/faultsim/fault.mli: Orap_netlist
