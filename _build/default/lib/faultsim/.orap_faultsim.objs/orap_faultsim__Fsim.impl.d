lib/faultsim/fsim.ml: Array Fault Int64 List Orap_netlist Orap_sim
