(** Symbolic (GF(2)) simulation of the key-register LFSR: every cell holds
    a linear expression over the seed-bit variables — the computation behind
    attack scenario (d) and the designer-side schedule solving. *)

type t

val create : Lfsr.t -> num_vars:int -> t
val cells : t -> Bitset.t array

(** One symbolic clock edge mirroring {!Lfsr.step}. *)
val step : ?injection:Bitset.t array -> Lfsr.t -> t -> unit

(** Final-state expressions after [num_seeds] seeds with the given free-run
    gaps; variable [s * width + k] is bit [k] of seed [s]. *)
val of_schedule : Lfsr.t -> num_seeds:int -> free_runs:int list -> Bitset.t array

(** XOR-gate count of trees realising the expressions (scenario (d)'s
    payload). *)
val xor_tree_gates : Bitset.t array -> int

(** Average variables per cell expression. *)
val mean_terms : Bitset.t array -> float

(** Solve [exprs * x = target] over GF(2); [None] when inconsistent. *)
val solve : Bitset.t array -> num_vars:int -> bool array -> bool array option
