(** Symbolic (GF(2)) simulation of the key-register LFSR: every cell holds a
    linear expression over the seed-bit variables instead of a binary value.

    This is exactly the computation the paper's attack scenario (d) performs
    ("replace the unknown key-bit values with binary variables and perform a
    symbolic simulation of the LFSR"); the size of the resulting expressions
    dictates the XOR-tree payload such a Trojan must embed, which is the
    countermeasure's security argument. *)

type t = {
  lfsr_size : int;
  num_vars : int;
  mutable cells : Bitset.t array;
}

let create (lfsr : Lfsr.t) ~num_vars =
  {
    lfsr_size = Lfsr.size lfsr;
    num_vars;
    cells = Array.init (Lfsr.size lfsr) (fun _ -> Bitset.create num_vars);
  }

let cells t = t.cells

(** One symbolic clock edge mirroring {!Lfsr.step}.  [injection] gives the
    expression XORed in at each reseeding point. *)
let step ?injection (lfsr : Lfsr.t) (t : t) =
  let n = t.lfsr_size in
  let fb = t.cells.(n - 1) in
  let next = Array.init n (fun _ -> Bitset.create t.num_vars) in
  Bitset.xor_into ~into:next.(0) fb;
  for i = 1 to n - 1 do
    Bitset.xor_into ~into:next.(i) t.cells.(i - 1);
    if (Lfsr.taps_of lfsr).(i) then Bitset.xor_into ~into:next.(i) fb
  done;
  (match injection with
  | None -> ()
  | Some inj ->
    Array.iteri
      (fun k p -> Bitset.xor_into ~into:next.(p) inj.(k))
      (Lfsr.reseed_points_of lfsr));
  t.cells <- next

(** Final-state expressions after feeding [num_seeds] seeds with the given
    free-run gaps.  Variable [s * width + k] is bit [k] of seed [s]. *)
let of_schedule (lfsr : Lfsr.t) ~num_seeds ~free_runs : Bitset.t array =
  let width = Lfsr.num_reseed_points lfsr in
  let num_vars = num_seeds * width in
  let t = create lfsr ~num_vars in
  List.iteri
    (fun s fr ->
      let inj =
        Array.init width (fun k -> Bitset.singleton num_vars ((s * width) + k))
      in
      step ~injection:inj lfsr t;
      for _ = 1 to fr do
        step lfsr t
      done)
    free_runs;
  t.cells

(** XOR-gate count of the combinational trees realising the expressions —
    the payload of attack scenario (d). *)
let xor_tree_gates (exprs : Bitset.t array) : int =
  Array.fold_left (fun acc e -> acc + max 0 (Bitset.popcount e - 1)) 0 exprs

(** Average number of variables per cell expression (expression density). *)
let mean_terms (exprs : Bitset.t array) : float =
  let total = Array.fold_left (fun acc e -> acc + Bitset.popcount e) 0 exprs in
  float_of_int total /. float_of_int (Array.length exprs)

(** Solve the GF(2) linear system [exprs * x = target] by Gaussian
    elimination.  [num_vars] is the variable universe of the expressions.
    Returns a satisfying assignment (free variables at [false]), or [None]
    when the system is inconsistent. *)
let solve (exprs : Bitset.t array) ~num_vars (target : bool array) :
    bool array option =
  let n = Array.length exprs in
  if Array.length target <> n then invalid_arg "Symbolic.solve";
  let rows = Array.map Bitset.copy exprs in
  let rhs = Array.copy target in
  let solution = Array.make num_vars false in
  let pivot_of_row = Array.make n (-1) in
  let r = ref 0 in
  for col = 0 to num_vars - 1 do
    if !r < n then begin
      let found = ref (-1) in
      for i = !r to n - 1 do
        if !found < 0 && Bitset.mem rows.(i) col then found := i
      done;
      match !found with
      | -1 -> ()
      | i ->
        let tmp = rows.(i) in
        rows.(i) <- rows.(!r);
        rows.(!r) <- tmp;
        let tb = rhs.(i) in
        rhs.(i) <- rhs.(!r);
        rhs.(!r) <- tb;
        for j = 0 to n - 1 do
          if j <> !r && Bitset.mem rows.(j) col then begin
            Bitset.xor_into ~into:rows.(j) rows.(!r);
            rhs.(j) <- rhs.(j) <> rhs.(!r)
          end
        done;
        pivot_of_row.(!r) <- col;
        incr r
    end
  done;
  let consistent = ref true in
  for i = !r to n - 1 do
    if rhs.(i) && Bitset.is_empty rows.(i) then consistent := false
  done;
  if not !consistent then None
  else begin
    for i = 0 to !r - 1 do
      if rhs.(i) then solution.(pivot_of_row.(i)) <- true
    done;
    Some solution
  end
