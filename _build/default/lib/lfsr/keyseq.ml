(** Key sequences: the secret the chip owner stores in tamper-proof memory.

    A key sequence is a list of LFSR seeds, each followed by a number of
    free-run cycles (which may vary, per the paper); feeding the whole
    sequence into a reset LFSR leaves the circuit key in the register. *)

module Prng = Orap_sim.Prng

type entry = { seed : bool array; free_run : int }
type t = { entries : entry list }

let entries t = t.entries
let num_seeds t = List.length t.entries
let total_seed_bits t =
  List.fold_left (fun acc e -> acc + Array.length e.seed) 0 t.entries

(** Total clock cycles of the unlock process. *)
let unlock_cycles t =
  List.fold_left (fun acc e -> acc + 1 + e.free_run) 0 t.entries

(** Feed the sequence into [lfsr] (which is reset first) and return the
    final register state — the circuit key. *)
let apply (lfsr : Lfsr.t) (t : t) : bool array =
  Lfsr.reset lfsr;
  List.iter
    (fun e ->
      Lfsr.step ~injection:e.seed lfsr;
      Lfsr.free_run lfsr e.free_run)
    t.entries;
  Lfsr.state lfsr

(** Generate a random schedule of [num_seeds] seeds with free-run gaps in
    [0, max_free_run]. *)
let random ?(max_free_run = 7) ~seed ~num_seeds (lfsr : Lfsr.t) : t =
  if num_seeds < 1 then invalid_arg "Keyseq.random";
  let rng = Prng.create seed in
  let width = Lfsr.num_reseed_points lfsr in
  let entry _ =
    {
      seed = Prng.bool_array rng width;
      free_run = Prng.int rng (max_free_run + 1);
    }
  in
  { entries = List.init num_seeds entry }

(** Search for a key sequence whose application yields [target_key]. Because
    the LFSR is linear over GF(2), the final state is an affine function of
    the seed bits; we solve for the last seed by Gaussian elimination over
    the symbolic simulation (see {!Symbolic}). *)
let solve_for_key ?(max_free_run = 7) ~seed ~num_seeds (lfsr : Lfsr.t)
    ~(target_key : bool array) : t =
  if Array.length target_key <> Lfsr.size lfsr then
    invalid_arg "Keyseq.solve_for_key";
  let base = random ~max_free_run ~seed ~num_seeds lfsr in
  (* final_state = M * seed_bits (linear): build the system symbolically and
     solve the whole seed-bit vector by Gaussian elimination *)
  let exprs =
    Symbolic.of_schedule lfsr ~num_seeds
      ~free_runs:(List.map (fun e -> e.free_run) base.entries)
  in
  let width = Lfsr.num_reseed_points lfsr in
  let total_vars = num_seeds * width in
  let solution =
    match Symbolic.solve exprs ~num_vars:total_vars target_key with
    | Some s -> s
    | None ->
      failwith "Keyseq.solve_for_key: unreachable key (degenerate schedule)"
  in
  let entries =
    List.mapi
      (fun s e ->
        let seed = Array.init width (fun k -> solution.((s * width) + k)) in
        { e with seed })
      base.entries
  in
  { entries }
