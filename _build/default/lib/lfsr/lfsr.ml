(** The key-register LFSR of the OraP scheme (Fig. 1).

    Galois-style shift register: on every clock the feedback bit (the last
    cell) is XORed into the cells selected by the characteristic polynomial,
    while external data — seed bits from the tamper-proof memory and, in the
    modified scheme, circuit responses — is XORed in at the designated
    reseeding points.  The paper's default polynomial places "a new tap
    after every eight LFSR cells". *)

type t = {
  size : int;
  taps : bool array;  (** taps.(i): feedback XORs into cell i *)
  reseed_points : int array;  (** cell indices with injection XORs *)
  mutable state : bool array;
}

(** Characteristic-polynomial taps: one every [stride] cells (paper: 8). *)
let default_taps ~size ~stride =
  let taps = Array.make size false in
  let i = ref (stride - 1) in
  while !i < size - 1 do
    taps.(!i) <- true;
    i := !i + stride
  done;
  taps

(** All cells are reseeding points — Fig. 1's "most general case". *)
let all_reseed_points size = Array.init size (fun i -> i)

let create ?taps ?reseed_points ~size () =
  if size < 2 then invalid_arg "Lfsr.create";
  let taps = match taps with Some t -> t | None -> default_taps ~size ~stride:8 in
  if Array.length taps <> size then invalid_arg "Lfsr.create: taps size";
  let reseed_points =
    match reseed_points with Some r -> r | None -> all_reseed_points size
  in
  Array.iter
    (fun p -> if p < 0 || p >= size then invalid_arg "Lfsr.create: reseed point")
    reseed_points;
  { size; taps; reseed_points; state = Array.make size false }

let size t = t.size
let state t = Array.copy t.state
let set_state t s =
  if Array.length s <> t.size then invalid_arg "Lfsr.set_state";
  t.state <- Array.copy s

(** Clear all cells — the pulse generators' reset action. *)
let reset t = Array.fill t.state 0 t.size false

let num_reseed_points t = Array.length t.reseed_points
let taps_of t = t.taps
let reseed_points_of t = t.reseed_points

(** One clock edge.  [injection], when given, carries one bit per reseeding
    point (position-aligned with [reseed_points]); omitted = all-zero word
    (a free-run cycle). *)
let step ?injection t =
  (match injection with
  | Some inj when Array.length inj <> Array.length t.reseed_points ->
    invalid_arg "Lfsr.step: injection width"
  | Some _ | None -> ());
  let fb = t.state.(t.size - 1) in
  let next = Array.make t.size false in
  next.(0) <- fb;
  for i = 1 to t.size - 1 do
    next.(i) <- t.state.(i - 1) <> (t.taps.(i) && fb)
  done;
  (match injection with
  | None -> ()
  | Some inj ->
    Array.iteri
      (fun k p -> if inj.(k) then next.(p) <- not next.(p))
      t.reseed_points);
  t.state <- next

let free_run t cycles =
  for _ = 1 to cycles do
    step t
  done

(** XOR-gate count of the hardware: reseeding XORs plus polynomial-tap XORs
    (used by the Table-I overhead accounting). *)
let xor_gate_count t =
  Array.length t.reseed_points
  + Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.taps
