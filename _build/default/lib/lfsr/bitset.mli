(** Dense bitsets over a fixed universe, used as GF(2) linear expressions
    (bit [i] set = variable [i] appears). *)

type t

val create : int -> t
val copy : t -> t
val singleton : int -> int -> t
val xor_into : into:t -> t -> unit
val xor : t -> t -> t
val mem : t -> int -> bool
val set : t -> int -> unit
val is_empty : t -> bool
val popcount : t -> int
val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list

(** Evaluate the linear expression on a variable assignment. *)
val eval : t -> bool array -> bool
