(** Key sequences: the secret stored in tamper-proof memory — LFSR seeds,
    each followed by a number of free-run cycles. *)

type entry = { seed : bool array; free_run : int }
type t = { entries : entry list }

val entries : t -> entry list
val num_seeds : t -> int
val total_seed_bits : t -> int

(** Clock cycles consumed by the unlock process. *)
val unlock_cycles : t -> int

(** Reset the LFSR, feed the sequence, return the final state (the key). *)
val apply : Lfsr.t -> t -> bool array

(** Random schedule of [num_seeds] seeds with free-run gaps in
    [0, max_free_run]. *)
val random : ?max_free_run:int -> seed:int -> num_seeds:int -> Lfsr.t -> t

(** Solve (by GF(2) elimination over the symbolic LFSR) for a sequence whose
    application yields [target_key].  Raises [Failure] on degenerate
    schedules whose linear system is rank-deficient. *)
val solve_for_key :
  ?max_free_run:int ->
  seed:int ->
  num_seeds:int ->
  Lfsr.t ->
  target_key:bool array ->
  t
