lib/lfsr/bitset.mli:
