lib/lfsr/keyseq.mli: Lfsr
