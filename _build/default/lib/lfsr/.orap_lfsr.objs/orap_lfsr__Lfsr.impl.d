lib/lfsr/lfsr.ml: Array
