lib/lfsr/symbolic.mli: Bitset Lfsr
