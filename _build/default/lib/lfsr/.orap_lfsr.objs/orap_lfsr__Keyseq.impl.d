lib/lfsr/keyseq.ml: Array Lfsr List Orap_sim Symbolic
