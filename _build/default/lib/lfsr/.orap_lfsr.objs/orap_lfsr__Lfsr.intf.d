lib/lfsr/lfsr.mli:
