lib/lfsr/symbolic.ml: Array Bitset Lfsr List
