lib/lfsr/bitset.ml: Array
