(** The key-register LFSR of the OraP scheme (Fig. 1): a Galois-style shift
    register whose feedback is XORed into the polynomial-tap cells and whose
    reseeding points accept external XOR injections (tamper-proof-memory
    seeds or, in the modified scheme, circuit responses). *)

type t

(** Characteristic-polynomial taps with one tap every [stride] cells (the
    paper uses a new tap after every eight cells). *)
val default_taps : size:int -> stride:int -> bool array

(** All cells as reseeding points — Fig. 1's most general case. *)
val all_reseed_points : int -> int array

(** [create ?taps ?reseed_points ~size ()] builds an LFSR of [size] cells,
    defaulting to stride-8 taps and all-cell reseeding.  Initial state is
    all-zero. *)
val create : ?taps:bool array -> ?reseed_points:int array -> size:int -> unit -> t

val size : t -> int
val state : t -> bool array
val set_state : t -> bool array -> unit

(** Clear all cells — the pulse generators' reset action. *)
val reset : t -> unit

val num_reseed_points : t -> int
val taps_of : t -> bool array
val reseed_points_of : t -> int array

(** One clock edge; [injection] carries one bit per reseeding point (omitted
    = free-run cycle). *)
val step : ?injection:bool array -> t -> unit

val free_run : t -> int -> unit

(** XOR-gate count (reseeding plus tap XORs) for overhead accounting. *)
val xor_gate_count : t -> int
