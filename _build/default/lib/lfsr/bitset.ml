(** Dense bitsets over a fixed universe, used as GF(2) linear expressions
    (bit [i] set = variable [i] appears in the expression). *)

type t = { width : int; words : int array }

let words_for width = (width + 62) / 63

let create width = { width; words = Array.make (max 1 (words_for width)) 0 }

let copy t = { t with words = Array.copy t.words }

let singleton width i =
  let t = create width in
  t.words.(i / 63) <- 1 lsl (i mod 63);
  t

let xor_into ~(into : t) (src : t) =
  for k = 0 to Array.length into.words - 1 do
    into.words.(k) <- into.words.(k) lxor src.words.(k)
  done

let xor a b =
  let r = copy a in
  xor_into ~into:r b;
  r

let mem t i = (t.words.(i / 63) lsr (i mod 63)) land 1 = 1

let set t i = t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount t =
  let pc x =
    let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
    go x 0
  in
  Array.fold_left (fun acc w -> acc + pc w) 0 t.words

let equal a b = a.width = b.width && a.words = b.words

let iter f t =
  for i = 0 to t.width - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.width - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

(** Evaluate the linear expression on a boolean variable assignment. *)
let eval t (assignment : bool array) =
  let acc = ref false in
  iter (fun i -> if assignment.(i) then acc := not !acc) t;
  !acc
