module E = Orap_experiments
module Benchgen = Orap_benchgen.Benchgen
let () =
  let profiles = List.filter (fun p -> p.Benchgen.name = "b19") Benchgen.table1_profiles in
  let t0 = Unix.gettimeofday () in
  let rows = E.Table2.run ~params:{ E.Table2.default_params with E.Table2.scale = 8 } ~profiles () in
  Printf.printf "b19/8 table2 took %.1fs\n" (Unix.gettimeofday () -. t0);
  E.Report.print (E.Table2.report rows)
