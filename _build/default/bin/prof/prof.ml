module N = Orap_netlist.Netlist
module Fault = Orap_faultsim.Fault
module Fsim = Orap_faultsim.Fsim
module Benchgen = Orap_benchgen.Benchgen
let () =
  let p = List.find (fun p -> p.Benchgen.name = "b19") Benchgen.table1_profiles in
  let p = Benchgen.scale ~factor:8 p in
  let nl = Benchgen.of_profile p in
  Printf.printf "gates=%d\n%!" (N.gate_count nl);
  let t0 = Unix.gettimeofday () in
  let faults = Fault.collapsed_list nl in
  Printf.printf "faults=%d (%.1fs)\n%!" (Array.length faults) (Unix.gettimeofday () -. t0);
  let remaining = Array.make (Array.length faults) true in
  let t0 = Unix.gettimeofday () in
  let stats = Fsim.random_simulate ~words:32 nl faults remaining in
  Printf.printf "random sim: detected=%d of %d (%.1fs)\n%!"
    stats.Fsim.detected (Array.length faults) (Unix.gettimeofday () -. t0);
  (* podem sample of survivors *)
  let engine = Orap_atpg.Podem.create nl in
  let survivors = ref [] in
  Array.iteri (fun i f -> if remaining.(i) then survivors := f :: !survivors) faults;
  Printf.printf "survivors=%d\n%!" (List.length !survivors);
  let t0 = Unix.gettimeofday () in
  let n = ref 0 and ab = ref 0 in
  (try List.iter (fun f ->
    if !n >= 200 then raise Exit;
    incr n;
    match Orap_atpg.Podem.run engine f ~backtrack_limit:64 with
    | Orap_atpg.Podem.Aborted -> incr ab | _ -> ()) !survivors with Exit -> ());
  Printf.printf "podem 200 faults: %.1fs (aborted %d)\n%!" (Unix.gettimeofday () -. t0) !ab
