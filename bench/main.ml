(** Benchmark harness.

    Two layers:
    1. {b Experiment regeneration} — every table and figure of the paper is
       recomputed and printed (Table I, Table II, the Figs. 1–3 behaviour
       checks, the Section II-A attack matrix and the Section III Trojan
       table).  Scale is controlled by the [ORAP_SCALE] environment
       variable: profile sizes are divided by it (default 8; set
       [ORAP_SCALE=1] for paper-scale circuits — several minutes).
    2. {b Bechamel micro-benchmarks} — one [Test.make] per experiment,
       timing the computational kernel each table/figure rests on.

    Set [ORAP_SKIP_TABLES=1], [ORAP_SKIP_RUNNER=1], [ORAP_SKIP_TELEMETRY=1]
    or [ORAP_SKIP_MICRO=1] to skip layers.  [ORAP_TRACE=FILE] /
    [ORAP_METRICS=FILE] mirror the CLI's [--trace] / [--metrics]. *)

open Bechamel
open Toolkit
module E = Orap_experiments
module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Oracle = Orap_core.Oracle
module Lfsr = Orap_lfsr.Lfsr
module Symbolic = Orap_lfsr.Symbolic
module Runner = Orap_runner.Runner
module Telemetry = Orap_telemetry.Telemetry
module Metrics = Orap_telemetry.Metrics

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)
  | None -> default

let env_flag name = Sys.getenv_opt name = Some "1"

let scale = env_int "ORAP_SCALE" 8

let section title = Printf.printf "\n###### %s ######\n%!" title

let time_it name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "(%s: %.1fs)\n%!" name (Unix.gettimeofday () -. t0);
  r

(* ---------- layer 1: regenerate every table and figure ---------- *)

let run_tables () =
  section (Printf.sprintf "Experiment regeneration (ORAP_SCALE=%d)" scale);

  section "Table I — HD, area and delay overhead";
  let params =
    { E.Table1.default_params with E.Table1.scale; hd_words = max 16 (320 / scale) }
  in
  let rows = time_it "table1" (fun () -> E.Table1.run ~params ()) in
  E.Report.print (E.Table1.report rows);

  section "Table II — stuck-at fault coverage";
  let params2 =
    { E.Table2.default_params with E.Table2.scale = max scale 4 }
  in
  let rows2 = time_it "table2" (fun () -> E.Table2.run ~params:params2 ()) in
  E.Report.print (E.Table2.report rows2);

  section "Figs. 1-3 — OraP behaviour";
  let fx = E.Security.make_fixture () in
  let f1 = E.Security.fig1 fx in
  Printf.printf
    "Fig.1  unlock places correct key: %b | scan_enable clears key: %b | scan responses locked: %b\n"
    f1.E.Security.unlock_key_correct f1.E.Security.key_cleared_on_scan
    f1.E.Security.scan_responses_locked;
  let f2 = E.Security.fig2 () in
  Printf.printf
    "Fig.2  pulse on rising edge: %b | silent on hold: %b | silent on falling edge: %b\n"
    f2.E.Security.fires_on_rising_edge f2.E.Security.silent_on_level_hold
    f2.E.Security.silent_on_falling_edge;
  let f3 = E.Security.fig3 fx in
  Printf.printf
    "Fig.3  honest closed-loop unlock: %b | frozen FFs corrupt key: %b | basic scheme freeze-immune: %b\n"
    f3.E.Security.honest_unlock_correct f3.E.Security.frozen_ffs_break_unlock
    f3.E.Security.responses_differ_from_basic;

  section "Section II-A — oracle-based attacks vs OraP";
  let rows3 = time_it "attack matrix" (fun () -> E.Security.attack_matrix fx) in
  E.Report.print (E.Security.attack_report rows3);
  Printf.printf "S3 hill-climb on locked test responses: %s\n"
    (Orap_attacks.Evaluate.to_string (E.Security.hill_climb_on_test_responses fx));

  section "Section III — Trojan scenarios";
  E.Report.print (E.Trojan_table.report (E.Trojan_table.run fx));

  section "Robustness — attacks vs noisy / rate-limited oracles";
  let rparams =
    {
      E.Robustness.default_params with
      E.Robustness.num_gates = max 60 (300 / scale);
      key_size = max 8 (16 / max 1 (scale / 4));
      trials = (if scale >= 8 then 2 else 3);
      max_iterations = 64;
      wall_clock_s = 5.0;
    }
  in
  let rrows =
    time_it "robustness" (fun () -> E.Robustness.run ~params:rparams ())
  in
  E.Report.print (E.Robustness.report rrows);

  section "Manufacturing-test flow through the protected chip (Table II, end to end)";
  let sf = time_it "scan flow" (fun () -> E.Scan_flow.run fx.E.Security.basic) in
  Printf.printf
    "patterns applied via scan: %d | responses match locked prediction: %b |\n\
     key register never held the secret: %b | ATPG coverage: %.2f%%\n"
    sf.E.Scan_flow.patterns_applied sf.E.Scan_flow.responses_match_prediction
    sf.E.Scan_flow.key_register_never_secret sf.E.Scan_flow.atpg_coverage_pct;

  section "Ablations (design choices)";
  E.Report.print (E.Ablation.a1_report (E.Ablation.site_selection ()));
  E.Report.print (E.Ablation.a3_report (E.Ablation.key_register_structure ()));
  E.Report.print (E.Ablation.a4_report (E.Ablation.scheme_comparison fx))

(* ---------- runner: serial vs parallel wall-clock ---------- *)

(* a scaled-down Table I grid: the embarrassingly parallel shape every
   paper table shares.  Results are bit-identical at any [jobs] (per-cell
   derived seeds), so only the wall-clock changes. *)
let run_runner_bench () =
  section "Runner: serial vs 2- and 4-domain wall-clock (Table I grid)";
  let params =
    { E.Table1.default_params with E.Table1.scale = max scale 16;
      hd_words = 48; hd_keys = 2 }
  in
  let time jobs =
    let options = { Runner.default_options with Runner.jobs } in
    let t0 = Unix.gettimeofday () in
    let rows = E.Table1.run ~params ~options () in
    let dt = Unix.gettimeofday () -. t0 in
    (List.length rows, dt)
  in
  ignore (time 1) (* warm the minor heap and code paths *);
  let cells, serial_s = time 1 in
  let _, jobs2_s = time 2 in
  let _, jobs4_s = time 4 in
  let speedup d = serial_s /. d in
  Printf.printf
    "cells=%d  serial %.2fs | 2 domains %.2fs (%.2fx) | 4 domains %.2fs (%.2fx)  [%d core(s)]\n%!"
    cells serial_s jobs2_s (speedup jobs2_s) jobs4_s (speedup jobs4_s)
    (Domain.recommended_domain_count ());
  let out =
    match Sys.getenv_opt "ORAP_BENCH_OUT" with
    | Some p -> p
    | None -> "BENCH_runner.json"
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"runner/table1-grid\",\n\
    \  \"cells\": %d,\n\
    \  \"scale\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"serial_s\": %.3f,\n\
    \  \"jobs2_s\": %.3f,\n\
    \  \"jobs4_s\": %.3f,\n\
    \  \"speedup_2\": %.3f,\n\
    \  \"speedup_4\": %.3f,\n\
    \  \"metrics\": %s\n\
     }\n"
    cells params.E.Table1.scale
    (Domain.recommended_domain_count ())
    serial_s jobs2_s jobs4_s (speedup jobs2_s) (speedup jobs4_s)
    (Metrics.snapshot_json ());
  close_out oc;
  Printf.printf "(wrote %s)\n%!" out

(* ---------- telemetry: disabled-path overhead ---------- *)

(* Permanent instrumentation is only acceptable if its disabled path is
   free.  Time an instrumented hot path (a full SAT attack: solver spans,
   oracle spans, metrics) with no sink installed and with the counting
   no-op sink, and require the delta to stay under 2%. *)
let run_telemetry_overhead () =
  section "Telemetry: overhead of the disabled path vs a no-op sink";
  let small =
    Benchgen.generate
      { Benchgen.seed = 5; num_inputs = 32; num_outputs = 24; num_gates = 400 }
  in
  let locked = Orap_locking.Random_ll.lock small ~key_size:16 in
  let workload () =
    ignore (Orap_attacks.Sat_attack.run locked (Oracle.functional locked))
  in
  let rounds = max 3 (24 / scale) in
  let time_rounds () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to rounds do
      workload ()
    done;
    Unix.gettimeofday () -. t0
  in
  workload () (* warm-up *);
  (* alternate measurements so drift hits both sides equally; keep minima *)
  let disabled_s = ref infinity and nullsink_s = ref infinity in
  for _ = 1 to 3 do
    disabled_s := Float.min !disabled_s (time_rounds ());
    Telemetry.install (Telemetry.null ());
    nullsink_s := Float.min !nullsink_s (time_rounds ());
    Telemetry.shutdown ()
  done;
  let overhead_pct = 100.0 *. ((!nullsink_s /. !disabled_s) -. 1.0) in
  Printf.printf
    "sat attack x%d: disabled %.3fs | null sink %.3fs | overhead %+.2f%% — %s\n%!"
    rounds !disabled_s !nullsink_s overhead_pct
    (if overhead_pct < 2.0 then "OK (<2%)" else "EXCEEDS 2% TARGET")

(* ---------- layer 2: bechamel micro-benchmarks ---------- *)

(* shared fixtures, built once *)
let bench_nl =
  lazy
    (Benchgen.generate
       { Benchgen.seed = 77; num_inputs = 96; num_outputs = 64; num_gates = 2000 })

let bench_locked = lazy (Weighted.lock (Lazy.force bench_nl) ~key_size:48 ~ctrl_inputs:3)

let bench_design =
  lazy
    (Orap.protect
       ~config:(Orap.default_config ~kind:Orap.Modified ~num_ffs:32 ())
       (Lazy.force bench_locked))

let tests () =
  let nl = Lazy.force bench_nl in
  let locked = Lazy.force bench_locked in
  let design = Lazy.force bench_design in
  let rng = Orap_sim.Prng.create 3 in
  let words = Array.init (N.num_inputs nl) (fun _ -> Orap_sim.Prng.next64 rng) in
  (* Table I kernels *)
  let t_sim =
    Test.make ~name:"table1/bit-parallel sim (64 patterns, 2k gates)"
      (Staged.stage (fun () ->
           ignore (Orap_sim.Sim.eval_word nl ~input_word:(fun i -> words.(i)))))
  in
  let wrong_key = Array.make 48 true in
  let t_hd =
    Test.make ~name:"table1/HD estimate (8 words)"
      (Staged.stage (fun () ->
           ignore (Locked.hamming_vs_original ~words:8 locked wrong_key)))
  in
  let t_lock =
    Test.make ~name:"table1/weighted locking (2k gates, 48-bit key)"
      (Staged.stage (fun () ->
           ignore (Weighted.lock nl ~key_size:48 ~ctrl_inputs:3)))
  in
  let small =
    Benchgen.generate
      { Benchgen.seed = 5; num_inputs = 32; num_outputs = 24; num_gates = 400 }
  in
  let t_synth =
    Test.make ~name:"table1/abc resynthesis (400 gates)"
      (Staged.stage (fun () -> ignore (Orap_synth.Abc_script.evaluate small)))
  in
  (* Table II kernels *)
  let faults = Orap_faultsim.Fault.collapsed_list small in
  let t_fsim =
    Test.make ~name:"table2/fault sim word (400 gates, all faults)"
      (Staged.stage (fun () ->
           let remaining = Array.make (Array.length faults) true in
           ignore
             (Orap_faultsim.Fsim.random_simulate ~words:1 small faults remaining)))
  in
  let t_atpg =
    Test.make ~name:"table2/full ATPG (400 gates)"
      (Staged.stage (fun () -> ignore (Orap_atpg.Atpg.run ~random_words:4 small)))
  in
  (* Figs. 1-3 kernels *)
  let t_unlock =
    Test.make ~name:"fig1-3/chip unlock (modified scheme)"
      (Staged.stage (fun () ->
           let chip = Chip.create design in
           Chip.unlock chip))
  in
  let chip = Chip.create design in
  Chip.unlock chip;
  let oracle_input =
    Array.init (Orap.num_ext_inputs design + Orap.num_ffs design) (fun i ->
        i land 1 = 0)
  in
  let t_scan =
    Test.make ~name:"fig1/scan oracle query"
      (Staged.stage (fun () ->
           let o = Oracle.scan_chip chip in
           ignore (Oracle.query o oracle_input)))
  in
  (* S1 kernel: one full SAT attack on a small fixture *)
  let small_locked = Orap_locking.Random_ll.lock small ~key_size:16 in
  let t_sat =
    Test.make ~name:"s1/SAT attack (400 gates, 16-bit key)"
      (Staged.stage (fun () ->
           ignore
             (Orap_attacks.Sat_attack.run small_locked
                (Oracle.functional small_locked))))
  in
  (* robustness kernel: one query through the full fault stack *)
  let faulty_input =
    Array.init small_locked.Locked.num_regular_inputs (fun i -> i land 1 = 1)
  in
  let faulty_stack =
    let o = Oracle.functional small_locked in
    let o = Orap_core.Faulty_oracle.bit_flip ~seed:9 ~p:0.05 o in
    Orap_core.Faulty_oracle.retry ~votes:3 o
  in
  let t_faulty =
    Test.make ~name:"robustness/faulty oracle query (bit-flip, 3 votes)"
      (Staged.stage (fun () -> ignore (Oracle.query faulty_stack faulty_input)))
  in
  (* S2 kernel: symbolic LFSR schedule *)
  let lfsr = Lfsr.create ~size:128 () in
  let t_sym =
    Test.make ~name:"s2/symbolic LFSR (128 cells, 8 seeds)"
      (Staged.stage (fun () ->
           ignore
             (Symbolic.of_schedule lfsr ~num_seeds:8
                ~free_runs:[ 3; 3; 3; 3; 3; 3; 3; 3 ])))
  in
  [ t_sim; t_hd; t_lock; t_synth; t_fsim; t_atpg; t_unlock; t_scan; t_sat;
    t_faulty; t_sym ]

let run_micro () =
  section "Bechamel micro-benchmarks (one kernel per table/figure)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.8) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] ->
            Printf.printf "%-55s %12.1f ns/run\n%!" name t
          | Some _ | None -> Printf.printf "%-55s (no estimate)\n%!" name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) (tests ()))

let () =
  (* ORAP_TRACE=FILE mirrors the CLI's --trace (chrome array for .json,
     JSONL otherwise); ORAP_METRICS=FILE snapshots the registry on exit *)
  (match Sys.getenv_opt "ORAP_TRACE" with
  | None -> ()
  | Some path ->
    Telemetry.install
      (if Filename.check_suffix path ".json" then Telemetry.chrome path
       else Telemetry.jsonl path));
  Fun.protect
    ~finally:(fun () ->
      Telemetry.shutdown ();
      match Sys.getenv_opt "ORAP_METRICS" with
      | None -> ()
      | Some path -> Metrics.write_json path)
    (fun () ->
      if not (env_flag "ORAP_SKIP_TABLES") then run_tables ();
      if not (env_flag "ORAP_SKIP_RUNNER") then run_runner_bench ();
      if not (env_flag "ORAP_SKIP_TELEMETRY") then run_telemetry_overhead ();
      if not (env_flag "ORAP_SKIP_MICRO") then run_micro ());
  print_newline ()
