(** Quickstart: lock a circuit, protect its oracle with OraP, and watch the
    SAT attack win without the protection and lose with it.

    Run with: dune exec examples/quickstart.exe *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Oracle = Orap_core.Oracle
module Sat_attack = Orap_attacks.Sat_attack
module Evaluate = Orap_attacks.Evaluate

let () =
  (* 1. a design to protect: synthetic here; load your own .bench with
     Orap_netlist.Bench_format.parse_file *)
  let nl =
    Benchgen.generate
      { Benchgen.seed = 1; num_inputs = 40; num_outputs = 30; num_gates = 400 }
  in
  Printf.printf "circuit: %d gates, %d inputs, %d outputs\n" (N.gate_count nl)
    (N.num_inputs nl) (N.num_outputs nl);

  (* 2. lock it with weighted logic locking (high output corruptibility) *)
  let locked = Weighted.lock nl ~key_size:32 ~ctrl_inputs:3 in
  Printf.printf "locked with %s; wrong keys corrupt %.1f%% of output bits\n"
    locked.Locked.technique
    (Locked.hamming_vs_original locked (Array.make 32 true));

  (* 3. wrap it in the OraP oracle protection *)
  let design =
    Orap.protect
      ~config:(Orap.default_config ~kind:Orap.Modified ~num_ffs:15 ())
      locked
  in
  Printf.printf "OraP: %d-cell key LFSR, %d unlock cycles, %d-cell scan chain\n"
    (Orap.key_size design) (Orap.unlock_cycles design)
    (Orap_dft.Scan.length design.Orap.chain);

  (* 4. the legitimate owner unlocks the chip *)
  let chip = Chip.create design in
  Chip.unlock chip;
  Printf.printf "owner unlock puts the correct key in the register: %b\n"
    (Chip.key_register chip = locked.Locked.correct_key);

  (* 5. the attacker, with scan access to an unprotected design, wins *)
  let r = Sat_attack.run locked (Oracle.functional locked) in
  Printf.printf "SAT attack, unprotected oracle: %s after %d DIPs\n"
    (Evaluate.to_string (Evaluate.of_outcome locked r.Sat_attack.outcome))
    r.Sat_attack.iterations;

  (* 6. against the OraP chip, scan access only sees the locked circuit *)
  let r = Sat_attack.run locked (Oracle.scan_chip chip) in
  Printf.printf "SAT attack, OraP-protected oracle: %s\n"
    (Evaluate.to_string (Evaluate.of_outcome locked r.Sat_attack.outcome))
