(** IP-piracy case study: an overproducing foundry attacks four locking
    techniques with the whole oracle-based arsenal, with and without OraP.

    This is the paper's introduction scenario: locking alone falls to the
    SAT attack family (and the SAT-resistant techniques that survive it pay
    with near-zero output corruption); protecting the oracle lets the
    designer keep a high-corruption technique and still resist. *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Oracle = Orap_core.Oracle
module E = Orap_experiments
module Evaluate = Orap_attacks.Evaluate

let () =
  let nl =
    Benchgen.generate
      { Benchgen.seed = 5; num_inputs = 32; num_outputs = 24; num_gates = 350 }
  in
  let techniques =
    [
      ("random", Orap_locking.Random_ll.lock nl ~key_size:24);
      ("weighted", Orap_locking.Weighted.lock nl ~key_size:24 ~ctrl_inputs:3);
      ("sarlock", Orap_locking.Sarlock.lock nl ~key_size:16);
      ("antisat", Orap_locking.Antisat.lock nl ~key_size:24);
    ]
  in
  let table =
    E.Report.create ~title:"Locking techniques vs SAT attack and corruption"
      ~header:
        [ "Technique"; "HD wrong key (%)"; "SAT (no OraP)"; "DIPs";
          "SAT (with OraP)" ]
      ~aligns:[ E.Report.L; E.Report.R; E.Report.L; E.Report.R; E.Report.L ]
  in
  List.iter
    (fun (name, locked) ->
      let wrong = Array.map not locked.Locked.correct_key in
      let hd = Locked.hamming_vs_original locked wrong in
      let r =
        Orap_attacks.Sat_attack.run ~max_iterations:80 locked
          (Oracle.functional locked)
      in
      let unprotected =
        Evaluate.to_string
          (Evaluate.of_outcome locked r.Orap_attacks.Sat_attack.outcome)
      in
      (* the same circuit behind an OraP chip *)
      let design =
        Orap.protect
          ~config:(Orap.default_config ~kind:Orap.Basic ~num_ffs:12 ())
          locked
      in
      let chip = Chip.create design in
      Chip.unlock chip;
      let r2 =
        Orap_attacks.Sat_attack.run ~max_iterations:80 locked
          (Oracle.scan_chip chip)
      in
      let with_orap =
        Evaluate.to_string
          (Evaluate.of_outcome locked r2.Orap_attacks.Sat_attack.outcome)
      in
      E.Report.add_row table
        [ name; E.Report.f1 hd; unprotected;
          E.Report.d r.Orap_attacks.Sat_attack.iterations; with_orap ])
    techniques;
  E.Report.print table;
  print_endline
    "\nNote the tradeoff OraP removes: SARLock/Anti-SAT survive the SAT\n\
     attack longest but corrupt almost nothing (a pirated chip remains\n\
     usable); weighted locking corrupts heavily but falls immediately —\n\
     unless the oracle itself is protected."
