open Util
module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Bench_format = Orap_netlist.Bench_format
module Dot = Orap_netlist.Dot

(* the tiny reference circuit lives in Util.full_adder *)
let test_full_adder_truth () =
  let nl = full_adder () in
  for m = 0 to 7 do
    let a = m land 1 = 1 and b = (m lsr 1) land 1 = 1 and c = (m lsr 2) land 1 = 1 in
    let outs = Orap_sim.Sim.eval_bools nl [| a; b; c |] in
    let total = (if a then 1 else 0) + (if b then 1 else 0) + if c then 1 else 0 in
    check Alcotest.bool "sum" (total land 1 = 1) outs.(0);
    check Alcotest.bool "cout" (total >= 2) outs.(1)
  done

let test_counts () =
  let nl = full_adder () in
  check Alcotest.int "nodes" 8 (N.num_nodes nl);
  check Alcotest.int "inputs" 3 (N.num_inputs nl);
  check Alcotest.int "outputs" 2 (N.num_outputs nl);
  check Alcotest.int "gates" 5 (N.gate_count nl);
  check Alcotest.int "depth" 3 (N.depth nl)

let test_gate_count_excludes_inverters () =
  let b = N.Builder.create () in
  let a = N.Builder.add_input b in
  let n1 = N.Builder.add_node b Gate.Not [| a |] in
  let n2 = N.Builder.add_node b Gate.Buf [| n1 |] in
  let n3 = N.Builder.add_node b Gate.And [| n2; a |] in
  N.Builder.mark_output b n3;
  let nl = N.Builder.finish b in
  check Alcotest.int "gates w/o inverters" 1 (N.gate_count nl);
  check Alcotest.int "all logic nodes" 3 (N.node_count nl);
  (* inverters are depth-transparent *)
  check Alcotest.int "depth" 1 (N.depth nl)

let test_builder_rejects_forward_refs () =
  let b = N.Builder.create () in
  let _ = N.Builder.add_input b in
  Alcotest.check_raises "forward fanin" (N.Invalid "fanin 5 out of range (next id 1): not topological")
    (fun () -> ignore (N.Builder.add_node b Gate.And [| 5; 0 |]))

let test_builder_rejects_bad_arity () =
  let b = N.Builder.create () in
  let a = N.Builder.add_input b in
  Alcotest.check_raises "NOT with 2 fanins" (N.Invalid "gate NOT cannot take 2 fanins")
    (fun () -> ignore (N.Builder.add_node b Gate.Not [| a; a |]))

let test_duplicate_names_rejected () =
  let b = N.Builder.create () in
  let _ = N.Builder.add_input ~name:"x" b in
  Alcotest.check_raises "dup name" (N.Invalid "duplicate node name \"x\"")
    (fun () -> ignore (N.Builder.add_input ~name:"x" b))

let test_fanouts () =
  let nl = full_adder () in
  let fo = N.fanouts nl in
  (* node 0 = input a feeds s1 (3) and c1 (5) *)
  check Alcotest.(list int) "fanouts of a" [ 3; 5 ] (Array.to_list fo.(0));
  (* sum (4) feeds nothing *)
  check Alcotest.int "sum fanout" 0 (Array.length fo.(4))

let test_levels_and_slacks () =
  let nl = full_adder () in
  let lev = N.levels nl in
  check Alcotest.int "lev s1" 1 lev.(3);
  check Alcotest.int "lev sum" 2 lev.(4);
  check Alcotest.int "lev cout" 3 lev.(7);
  let s = N.slacks nl in
  check Alcotest.int "cout critical" 0 s.(7);
  let crit = N.critical_nodes nl in
  check Alcotest.bool "cout on critical path" true crit.(7)

let test_fanin_cone () =
  let nl = full_adder () in
  let cone = N.fanin_cone nl [ 4 ] (* sum *) in
  check Alcotest.bool "includes cin" true cone.(2);
  check Alcotest.bool "excludes c1" false cone.(5)

let test_copy_into_preserves_function () =
  let nl = full_adder () in
  let b = N.Builder.create () in
  let map = Array.make (N.num_nodes nl) (-1) in
  let map = N.copy_into b nl map in
  Array.iter (fun o -> N.Builder.mark_output b map.(o)) (N.outputs nl);
  let copy = N.Builder.finish b in
  check Alcotest.bool "equivalent" true (equivalent_on_random nl copy)

let test_validate_ok () =
  let nl = full_adder () in
  N.validate nl

(* --- bench format --- *)

let test_bench_roundtrip () =
  let nl = full_adder () in
  let text = Bench_format.print nl in
  let src = Bench_format.parse text in
  check Alcotest.bool "roundtrip equivalent" true
    (equivalent_on_random nl src.Bench_format.netlist)

(* golden round-trip on the real ISCAS s27: the runner's journals reference
   .bench inputs by path + content hash, so parser/printer drift would
   silently invalidate every journaled cell *)
let test_s27_golden_roundtrip () =
  let path = "../../../data/s27.bench" in
  let src = Bench_format.parse_file path in
  let nl = src.Bench_format.netlist in
  let printed = Bench_format.print nl in
  let reparsed = (Bench_format.parse printed).Bench_format.netlist in
  check Alcotest.bool "print/parse is structurally the identity" true
    (netlists_structurally_equal nl reparsed);
  (* 7 combinational inputs: exhaustive functional equality *)
  let n_in = N.num_inputs nl in
  let ok = ref true in
  for m = 0 to (1 lsl n_in) - 1 do
    let inp = Array.init n_in (fun i -> (m lsr i) land 1 = 1) in
    if Sim.eval_bools nl inp <> Sim.eval_bools reparsed inp then ok := false
  done;
  check Alcotest.bool "exhaustive functional equality" true !ok;
  (* and a second print is byte-identical (printing is deterministic) *)
  check Alcotest.string "printing is stable" printed
    (Bench_format.print reparsed)

let test_bench_parse_sequential () =
  let text =
    "INPUT(x)\nOUTPUT(y)\nq = DFF(d)\nd = XOR(x, q)\ny = AND(x, q)\n"
  in
  let src = Bench_format.parse text in
  let nl = src.Bench_format.netlist in
  (* x + pseudo-input q, y + pseudo-output d *)
  check Alcotest.int "inputs" 2 (N.num_inputs nl);
  check Alcotest.int "outputs" 2 (N.num_outputs nl);
  check Alcotest.(list (pair string string)) "flip flops" [ ("q", "d") ]
    src.Bench_format.flip_flops

let test_bench_parse_comments_and_case () =
  let text = "# header\nINPUT(a)\nINPUT(b)\nOUTPUT(o)\no = nand(a, b) # gate\n" in
  let src = Bench_format.parse text in
  let outs = Orap_sim.Sim.eval_bools src.Bench_format.netlist [| true; true |] in
  check Alcotest.bool "nand(1,1)" false outs.(0)

let test_bench_parse_errors () =
  let bad = "INPUT(a)\nOUTPUT(o)\no = FROB(a)\n" in
  (match Bench_format.parse bad with
  | exception Bench_format.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "expected parse error");
  let undefined = "INPUT(a)\nOUTPUT(o)\no = AND(a, ghost)\n" in
  match Bench_format.parse undefined with
  | exception Bench_format.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "expected undefined-signal error"

let test_bench_cycle_detected () =
  let cyc = "INPUT(a)\nOUTPUT(o)\no = AND(a, p)\np = AND(a, o)\n" in
  match Bench_format.parse cyc with
  | exception Bench_format.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "expected cycle error"

let test_dot_output () =
  let nl = full_adder () in
  let dot = Dot.of_netlist nl in
  check Alcotest.bool "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph")

(* --- gate semantics --- *)

let test_gate_eval_word () =
  let open Gate in
  let t = Int64.minus_one and f = 0L in
  check Alcotest.bool "and" true (eval_word And [| t; t |] = t);
  check Alcotest.bool "and0" true (eval_word And [| t; f |] = f);
  check Alcotest.bool "nand" true (eval_word Nand [| t; t |] = f);
  check Alcotest.bool "or" true (eval_word Or [| f; f |] = f);
  check Alcotest.bool "nor" true (eval_word Nor [| f; f |] = t);
  check Alcotest.bool "xor" true (eval_word Xor [| t; t; t |] = t);
  check Alcotest.bool "xnor" true (eval_word Xnor [| t; f |] = f);
  check Alcotest.bool "mux sel0" true (eval_word Mux [| f; t; f |] = t);
  check Alcotest.bool "mux sel1" true (eval_word Mux [| t; t; f |] = f);
  check Alcotest.bool "const" true (eval_word Const1 [||] = t)

let test_gate_string_roundtrip () =
  List.iter
    (fun k ->
      match Gate.of_string (Gate.to_string k) with
      | Some k' -> check Alcotest.bool (Gate.to_string k) true (k = k')
      | None -> Alcotest.fail "of_string failed")
    [ Gate.Input; Gate.Buf; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor;
      Gate.Xor; Gate.Xnor; Gate.Mux ]

(* --- properties --- *)

let prop_generated_valid =
  qtest "generated netlists validate" seed_gen (fun seed ->
      let nl = random_netlist seed in
      N.validate nl;
      true)

let prop_roundtrip =
  qtest ~count:20 "bench print/parse preserves function" seed_gen (fun seed ->
      let nl = random_netlist ~inputs:6 ~outputs:4 ~gates:40 seed in
      let src = Bench_format.parse (Bench_format.print nl) in
      equivalent_on_random ~n:64 nl src.Bench_format.netlist)

let prop_levels_bound_depth =
  qtest "levels bound the depth" seed_gen (fun seed ->
      let nl = random_netlist seed in
      let lev = N.levels nl in
      let m = Array.fold_left max 0 lev in
      N.depth nl <= m)

let prop_slack_nonneg =
  qtest "slacks of reachable nodes are non-negative" seed_gen (fun seed ->
      let nl = random_netlist seed in
      let s = N.slacks nl in
      Array.for_all (fun x -> x >= 0) s)

let suite =
  ( "netlist",
    [
      tc "full adder truth table" `Quick test_full_adder_truth;
      tc "node/gate counts" `Quick test_counts;
      tc "gate count excludes inverters" `Quick test_gate_count_excludes_inverters;
      tc "builder rejects forward refs" `Quick test_builder_rejects_forward_refs;
      tc "builder rejects bad arity" `Quick test_builder_rejects_bad_arity;
      tc "duplicate names rejected" `Quick test_duplicate_names_rejected;
      tc "fanouts" `Quick test_fanouts;
      tc "levels and slacks" `Quick test_levels_and_slacks;
      tc "fanin cone" `Quick test_fanin_cone;
      tc "copy_into preserves function" `Quick test_copy_into_preserves_function;
      tc "validate accepts well-formed" `Quick test_validate_ok;
      tc "bench roundtrip" `Quick test_bench_roundtrip;
      tc "s27 golden roundtrip" `Quick test_s27_golden_roundtrip;
      tc "bench sequential extraction" `Quick test_bench_parse_sequential;
      tc "bench comments and case" `Quick test_bench_parse_comments_and_case;
      tc "bench parse errors" `Quick test_bench_parse_errors;
      tc "bench combinational cycle" `Quick test_bench_cycle_detected;
      tc "dot export" `Quick test_dot_output;
      tc "gate word evaluation" `Quick test_gate_eval_word;
      tc "gate name roundtrip" `Quick test_gate_string_roundtrip;
      prop_generated_valid;
      prop_roundtrip;
      prop_levels_bound_depth;
      prop_slack_nonneg;
    ] )
