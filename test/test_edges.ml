(** Edge cases, error paths and cross-cutting invariants that the
    module-focused suites do not cover. *)

open Util
module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Vec = Orap_sat.Vec
module Aig = Orap_synth.Aig
module Isop = Orap_synth.Isop
module Truth = Orap_synth.Truth
module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Oracle = Orap_core.Oracle
module Prng = Orap_sim.Prng

(* --- Vec --- *)

let test_vec () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get" 42 (Vec.get v 42);
  check Alcotest.int "last" 99 (Vec.last v);
  check Alcotest.int "pop" 99 (Vec.pop v);
  Vec.remove v 0;
  check Alcotest.int "removed" 98 (Vec.length v);
  Vec.shrink v 10;
  check Alcotest.int "shrunk" 10 (Vec.length v);
  Vec.clear v;
  check Alcotest.int "cleared" 0 (Vec.length v)

(* --- fault-sim heap pops in sorted order and self-cleans --- *)

let test_heap_sorted_pops () =
  let module H = Orap_faultsim.Fsim.Heap in
  let h = H.create 1000 in
  let rng = Prng.create 4 in
  let pushed = List.init 200 (fun _ -> Prng.int rng 1000) in
  List.iter (fun x -> H.push h x) pushed;
  let rec drain acc = if H.is_empty h then List.rev acc else drain (H.pop h :: acc) in
  let out = drain [] in
  check Alcotest.(list int) "sorted distinct"
    (List.sort_uniq compare pushed) out;
  (* self-cleaned: reusable immediately *)
  H.push h 7;
  check Alcotest.int "reusable" 7 (H.pop h)

(* --- solver degenerate clauses --- *)

let test_solver_tautology_and_dups () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  (* tautological clause is dropped, duplicate literals deduped *)
  ignore (Solver.add_clause s [ Lit.pos a; Lit.neg a ]);
  ignore (Solver.add_clause s [ Lit.pos b; Lit.pos b; Lit.pos b ]);
  (match Solver.solve s with
  | Solver.Sat -> check Alcotest.bool "b forced" true (Solver.model_value s b)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "should be SAT");
  (* adding a clause with an already-true literal is a no-op *)
  ignore (Solver.add_clause s [ Lit.pos b; Lit.pos a ]);
  check Alcotest.bool "still sat" true (Solver.solve s = Solver.Sat)

let test_solver_empty_clause () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  ignore (Solver.add_clause s [ Lit.pos a ]);
  ignore (Solver.add_clause s [ Lit.neg a ]);
  (* the second unit contradicts at level 0 on propagation *)
  check Alcotest.bool "unsat" true (Solver.solve s = Solver.Unsat);
  (* solver stays unsat forever *)
  check Alcotest.bool "sticky" true (Solver.solve s = Solver.Unsat)

(* --- AIG corner cases --- *)

let test_aig_const_outputs () =
  let b = N.Builder.create () in
  let a = N.Builder.add_input b in
  let na = N.Builder.add_node b Gate.Not [| a |] in
  let zero = N.Builder.add_node b Gate.And [| a; na |] in
  N.Builder.mark_output b zero;
  N.Builder.mark_output b a;
  let nl = N.Builder.finish b in
  let g = Aig.of_netlist nl in
  check Alcotest.int "a & ~a collapses" 0 (Aig.num_live_ands g);
  let back = Aig.to_netlist g in
  N.validate back;
  check Alcotest.bool "functionally zero" true
    (equivalent_on_random nl back)

let test_aig_complemented_output () =
  let b = N.Builder.create () in
  let a = N.Builder.add_input b in
  let na = N.Builder.add_node b Gate.Not [| a |] in
  N.Builder.mark_output b na;
  let nl = N.Builder.finish b in
  let back = Aig.to_netlist (Aig.of_netlist nl) in
  check Alcotest.bool "inverter-only circuit" true (equivalent_on_random nl back)

let prop_isop_to_aig_builds_function =
  qtest ~count:30 "Isop.to_aig realises the cover"
    QCheck.(pair seed_gen (int_range 2 6))
    (fun (seed, nvars) ->
      let rng = Prng.create seed in
      let t = Truth.zero nvars in
      let words = t.Truth.words in
      for i = 0 to Array.length words - 1 do
        words.(i) <- Prng.next64 rng
      done;
      let f = Truth.logand t (Truth.ones nvars) in
      let cubes = Isop.compute f in
      let g = Aig.create ~num_pis:nvars in
      let leaves = Array.init nvars (fun i -> Aig.pi_lit g i) in
      let out = Isop.to_aig g leaves cubes in
      Aig.set_outputs g [| out |];
      (* compare against the truth table on all minterms *)
      let ok = ref true in
      for m = 0 to (1 lsl nvars) - 1 do
        let inputs = Array.init nvars (fun i -> (m lsr i) land 1 = 1) in
        let v = Array.make (Aig.num_nodes g) false in
        for i = 0 to nvars - 1 do
          v.(i + 1) <- inputs.(i)
        done;
        for id = nvars + 1 to Aig.num_nodes g - 1 do
          let lv l =
            let x = v.(Aig.node_of_lit l) in
            if Aig.is_compl l then not x else x
          in
          v.(id) <- lv (Aig.fanin0 g id) && lv (Aig.fanin1 g id)
        done;
        let got =
          let x = v.(Aig.node_of_lit out) in
          if Aig.is_compl out then not x else x
        in
        if got <> Truth.get f m then ok := false
      done;
      !ok)

(* --- chip protocol errors --- *)

let chip_fixture () =
  let nl = random_netlist ~inputs:20 ~outputs:16 ~gates:150 3 in
  let lk = Orap_locking.Weighted.lock nl ~key_size:12 ~ctrl_inputs:3 in
  let design =
    Orap.protect ~config:(Orap.default_config ~kind:Orap.Basic ~num_ffs:8 ()) lk
  in
  Chip.create design

let test_chip_mode_errors () =
  let chip = chip_fixture () in
  Alcotest.check_raises "shift outside scan mode"
    (Invalid_argument "Chip.scan_shift: not in scan mode") (fun () ->
      ignore (Chip.scan_shift chip ~scan_in:false));
  Alcotest.check_raises "capture outside scan mode"
    (Invalid_argument "Chip.capture: not in scan mode") (fun () ->
      ignore (Chip.capture chip ~ext_inputs:(Array.make 12 false)));
  Chip.set_scan_enable chip true;
  Alcotest.check_raises "functional cycle in scan mode"
    (Invalid_argument "Chip.functional_cycle: scan mode") (fun () ->
      ignore (Chip.functional_cycle chip ~ext_inputs:(Array.make 12 false)))

let test_oracle_width_error () =
  let chip = chip_fixture () in
  Chip.unlock chip;
  let o = Oracle.scan_chip chip in
  let d = chip.Chip.design in
  let w = Orap.num_ext_inputs d + Orap.num_ffs d in
  Alcotest.check_raises "wrong width"
    (Invalid_argument
       (Printf.sprintf "Oracle.scan_chip: expected input width %d, got 3" w))
    (fun () -> ignore (Oracle.query o (Array.make 3 false)))

let test_scan_oracle_deterministic () =
  (* repeated identical queries must return identical (locked) answers;
     the SAT attack's constraint accumulation relies on this *)
  let chip = chip_fixture () in
  Chip.unlock chip;
  let o = Oracle.scan_chip chip in
  let rng = Prng.create 6 in
  let d = chip.Chip.design in
  let width = Orap.num_ext_inputs d + Orap.num_ffs d in
  for _ = 1 to 8 do
    let x = Prng.bool_array rng width in
    let y1 = Oracle.query o x in
    let y2 = Oracle.query o x in
    check Alcotest.bool "deterministic" true (y1 = y2)
  done

let test_protect_validation () =
  let nl = random_netlist ~inputs:10 ~outputs:6 ~gates:80 5 in
  let lk = Orap_locking.Weighted.lock nl ~key_size:9 ~ctrl_inputs:3 in
  match
    Orap.protect ~config:(Orap.default_config ~kind:Orap.Basic ~num_ffs:99 ()) lk
  with
  | exception Orap.Construction_failure _ -> ()
  | _ -> Alcotest.fail "expected Construction_failure"

let test_unlock_idempotent_key () =
  (* unlocking twice re-runs the controller; the second run starts from a
     dirty state, but a fresh chip always lands on the correct key *)
  let chip = chip_fixture () in
  Chip.unlock chip;
  let k1 = Chip.key_register chip in
  let chip2 = chip_fixture () in
  Chip.unlock chip2;
  check Alcotest.bool "deterministic unlock" true (k1 = Chip.key_register chip2)

(* --- locked-circuit helpers --- *)

let test_locked_eval_width_check () =
  let nl = random_netlist ~inputs:10 ~outputs:6 ~gates:80 5 in
  let lk = Orap_locking.Weighted.lock nl ~key_size:9 ~ctrl_inputs:3 in
  Alcotest.check_raises "wrong input width" (Invalid_argument "Locked.eval")
    (fun () ->
      ignore (Locked.eval lk ~key:lk.Locked.correct_key ~inputs:(Array.make 3 false)))

let test_key_input_positions () =
  let nl = random_netlist ~inputs:10 ~outputs:6 ~gates:80 5 in
  let lk = Orap_locking.Weighted.lock nl ~key_size:9 ~ctrl_inputs:3 in
  let pos = Locked.key_input_positions lk in
  check Alcotest.int "first key input" 10 pos.(0);
  check Alcotest.int "last key input" 18 pos.(8);
  (* key inputs carry their names in the locked netlist *)
  check Alcotest.bool "named key0" true
    (N.find lk.Locked.netlist "key0" <> None)

let suite =
  ( "edges",
    [
      tc "vec operations" `Quick test_vec;
      tc "heap sorted pops + reuse" `Quick test_heap_sorted_pops;
      tc "solver tautology/duplicates" `Quick test_solver_tautology_and_dups;
      tc "solver sticky unsat" `Quick test_solver_empty_clause;
      tc "aig constant outputs" `Quick test_aig_const_outputs;
      tc "aig complemented output" `Quick test_aig_complemented_output;
      prop_isop_to_aig_builds_function;
      tc "chip mode errors" `Quick test_chip_mode_errors;
      tc "oracle width check" `Quick test_oracle_width_error;
      tc "scan oracle deterministic" `Quick test_scan_oracle_deterministic;
      tc "protect validation" `Quick test_protect_validation;
      tc "unlock determinism" `Quick test_unlock_idempotent_key;
      tc "locked eval width check" `Quick test_locked_eval_width_check;
      tc "key input positions" `Quick test_key_input_positions;
    ] )
