let () =
  Alcotest.run "orap"
    [
      Test_netlist.suite;
      Test_sim.suite;
      Test_sat.suite;
      Test_synth.suite;
      Test_faultsim.suite;
      Test_atpg.suite;
      Test_lfsr.suite;
      Test_dft.suite;
      Test_locking.suite;
      Test_core.suite;
      Test_attacks.suite;
      Test_faulty.suite;
      Test_experiments.suite;
      Test_edges.suite;
      Test_attacks2.suite;
      Test_tools.suite;
      Test_bypass_s27.suite;
      Test_runner.suite;
      Test_prop_netlist.suite;
      Test_prop_equiv.suite;
      Test_prop_synth.suite;
      Test_prop_locking.suite;
      Test_prop_attacks.suite;
      Test_prop_testability.suite;
    ]
