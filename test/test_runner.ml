(** The experiment-execution engine: deterministic sharding, the Domain
    pool, the JSONL journal (including crash recovery) and resume. *)

open Util
module Task = Orap_runner.Task
module Pool = Orap_runner.Pool
module Journal = Orap_runner.Journal
module Progress = Orap_runner.Progress
module Runner = Orap_runner.Runner
module E = Orap_experiments

(* --- task: hashing and seed derivation --- *)

let test_task_hashing () =
  (* FNV-1a 64-bit reference vectors *)
  check Alcotest.string "fnv empty" "cbf29ce484222325" (Task.hash_hex "");
  check Alcotest.string "fnv 'a'" "af63dc4c8601ec8c" (Task.hash_hex "a");
  check Alcotest.bool "key mixes root seed" true
    (Task.cell_key ~root_seed:1 ~id:"x" <> Task.cell_key ~root_seed:2 ~id:"x");
  check Alcotest.bool "key mixes id" true
    (Task.cell_key ~root_seed:1 ~id:"x" <> Task.cell_key ~root_seed:1 ~id:"y");
  let s1 = Task.derive_seed ~root_seed:7 ~id:"cell-a" in
  let s2 = Task.derive_seed ~root_seed:7 ~id:"cell-b" in
  check Alcotest.bool "seeds non-negative" true (s1 >= 0 && s2 >= 0);
  check Alcotest.bool "seeds differ per cell" true (s1 <> s2);
  check Alcotest.int "derivation is stable" s1
    (Task.derive_seed ~root_seed:7 ~id:"cell-a");
  let cells = Task.grid ~root_seed:3 ~id:string_of_int [ 10; 20; 30 ] in
  check Alcotest.(list int) "grid preserves order" [ 0; 1; 2 ]
    (List.map (fun c -> c.Task.index) cells)

(* --- pool --- *)

let test_pool_matches_serial () =
  let items = Array.init 100 (fun i -> i) in
  let f _ x = (x * x) + 1 in
  let serial = Array.map (fun x -> Ok (f 0 x)) items in
  List.iter
    (fun jobs ->
      let got = Pool.map ~jobs f items in
      check Alcotest.bool
        (Printf.sprintf "jobs=%d equals serial" jobs)
        true
        (got = serial))
    [ 1; 2; 4; 7 ]

let test_pool_isolates_exceptions () =
  let items = Array.init 10 (fun i -> i) in
  let rs =
    Pool.map ~jobs:4 (fun _ x -> if x = 5 then failwith "boom" else x) items
  in
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 5, Error (Failure m) -> check Alcotest.string "message" "boom" m
      | 5, _ -> Alcotest.fail "index 5 should have failed"
      | i, Ok v -> check Alcotest.int "value" i v
      | _, Error _ -> Alcotest.fail "unexpected error")
    rs

let test_pool_on_result () =
  let hits = Atomic.make 0 in
  let rs =
    Pool.map ~jobs:4
      ~on_result:(fun _ _ -> Atomic.incr hits)
      (fun _ x -> x)
      (Array.init 37 (fun i -> i))
  in
  check Alcotest.int "one callback per item" 37 (Atomic.get hits);
  check Alcotest.int "all ok" 37
    (Array.fold_left (fun n r -> match r with Ok _ -> n + 1 | _ -> n) 0 rs)

(* --- journal --- *)

let temp_path () = Filename.temp_file "orap_journal" ".jsonl"

let test_journal_roundtrip () =
  let path = temp_path () in
  let j = Journal.open_append path in
  Journal.append j ~key:"k1" ~id:"plain" ~data:"v1";
  Journal.append j ~key:"k2" ~id:"with\ttab \"quotes\" \\ and\nnewline"
    ~data:"\x01control";
  Journal.close j;
  (match Journal.load path with
  | [ e1; e2 ] ->
    check Alcotest.string "key 1" "k1" e1.Journal.key;
    check Alcotest.string "data 1" "v1" e1.Journal.data;
    check Alcotest.string "id 2 escapes survive"
      "with\ttab \"quotes\" \\ and\nnewline" e2.Journal.id;
    check Alcotest.string "data 2 control char" "\x01control" e2.Journal.data
  | l -> Alcotest.fail (Printf.sprintf "expected 2 entries, got %d" (List.length l)));
  Sys.remove path

let test_journal_missing_file () =
  check Alcotest.int "missing journal is empty" 0
    (List.length (Journal.load "/nonexistent/journal.jsonl"))

let test_journal_crash_truncation () =
  let path = temp_path () in
  let j = Journal.open_append path in
  for i = 1 to 5 do
    Journal.append j ~key:(Printf.sprintf "k%d" i) ~id:"cell" ~data:"d"
  done;
  Journal.close j;
  (* simulate a crash during the final append: chop bytes mid-line *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 7);
  Unix.close fd;
  let entries = Journal.load path in
  check Alcotest.int "valid prefix recovered" 4 (List.length entries);
  let ok, bad = Journal.scan path in
  check Alcotest.(pair int int) "scan counts the corrupt line" (4, 1) (ok, bad);
  (* appends after recovery coexist with the corrupt line *)
  let j = Journal.open_append path in
  Journal.append j ~key:"k5" ~id:"cell" ~data:"d";
  Journal.close j;
  check Alcotest.int "recovered + reappended" 5
    (List.length (Journal.load path));
  Sys.remove path

let test_journal_rejects_garbage () =
  check Alcotest.bool "not json" true (Journal.parse_line "hello" = None);
  check Alcotest.bool "half object" true
    (Journal.parse_line "{\"key\":\"a\",\"id\":\"b\",\"da" = None);
  check Alcotest.bool "trailing junk" true
    (Journal.parse_line
       "{\"key\":\"a\",\"id\":\"b\",\"data\":\"c\"}x" = None);
  check Alcotest.bool "missing field" true
    (Journal.parse_line "{\"key\":\"a\",\"id\":\"b\"}" = None);
  match Journal.parse_line (Journal.format_line ~key:"k" ~id:"i" ~data:"d") with
  | Some e ->
    check Alcotest.string "format/parse key" "k" e.Journal.key;
    check Alcotest.string "format/parse data" "d" e.Journal.data
  | None -> Alcotest.fail "own format must parse"

(* --- progress --- *)

let test_progress_counters () =
  let p = Progress.create ~enabled:false ~total:10 () in
  Progress.add_cached p 3;
  Progress.tick p ~tag:"exact";
  Progress.tick p ~tag:"timeout";
  Progress.tick p ~tag:"exact";
  check Alcotest.int "completed" 6 (Progress.completed p);
  let line = Progress.line p in
  check Alcotest.bool "line shows done/total" true (contains line "6/10");
  check Alcotest.bool "line shows cached" true (contains line "(3 cached)");
  check Alcotest.bool "line tallies outcomes" true (contains line "2 exact");
  check Alcotest.bool "line keeps first-seen order" true (contains line "1 timeout")

let test_progress_rate_excludes_replay () =
  (* regression: on a resumed run the rate divided by time-since-create,
     which includes journal replay, so the ETA was inflated by however
     long the replay took *)
  let now = ref 100.0 in
  let p = Progress.create ~enabled:false ~now:(fun () -> !now) ~total:100 () in
  now := 150.0;
  (* 50s spent replaying 80 cached cells *)
  Progress.add_cached p 80;
  Progress.start_compute p;
  now := 160.0;
  (* 10s of compute produced 5 cells: 0.5 cells/s, 15 left -> ETA 30s *)
  for _ = 1 to 5 do
    Progress.tick p ~tag:"exact"
  done;
  check (Alcotest.float 1e-6) "rate is per compute second" 0.5
    (Progress.rate p);
  (match Progress.eta_s p with
  | Some eta -> check (Alcotest.float 1e-6) "eta ignores replay time" 30.0 eta
  | None -> Alcotest.fail "rate is measurable, eta must be Some");
  (* at a constant rate the ETA must shrink monotonically as cells land *)
  let last = ref infinity in
  for _ = 1 to 10 do
    now := !now +. 2.0;
    Progress.tick p ~tag:"exact";
    match Progress.eta_s p with
    | Some eta ->
      check Alcotest.bool "eta non-increasing at constant rate" true
        (eta <= !last +. 1e-9);
      last := eta
    | None -> Alcotest.fail "eta must stay measurable"
  done;
  (* all cells done: ETA pins to zero *)
  for _ = 1 to 5 do
    Progress.tick p ~tag:"exact"
  done;
  check Alcotest.bool "done -> Some 0" true (Progress.eta_s p = Some 0.0)

(* --- runner: map_grid --- *)

let int_codec : int Runner.codec =
  { encode = string_of_int; decode = int_of_string_opt }

let test_map_grid_order_and_parallel () =
  let items = List.init 23 (fun i -> i) in
  let f ~seed:_ x = 3 * x in
  let serial =
    Runner.map_grid
      ~options:{ Runner.default_options with Runner.jobs = 1 }
      ~id:string_of_int ~f items
  in
  let parallel =
    Runner.map_grid
      ~options:{ Runner.default_options with Runner.jobs = 4 }
      ~id:string_of_int ~f items
  in
  check Alcotest.(list int) "parallel = serial" serial parallel;
  check Alcotest.(list int) "input order" (List.map (fun x -> 3 * x) items)
    parallel

let test_map_grid_seeds_schedule_independent () =
  let items = List.init 16 (fun i -> i) in
  let f ~seed _ = seed in
  let run jobs =
    Runner.map_grid
      ~options:{ Runner.default_options with Runner.jobs; root_seed = 42 }
      ~id:string_of_int ~f items
  in
  check Alcotest.bool "derived seeds identical at any job count" true
    (run 1 = run 4)

let test_map_grid_resume_skips_journaled () =
  let path = temp_path () in
  Sys.remove path;
  let items = List.init 8 (fun i -> i) in
  let computed = Atomic.make 0 in
  let f ~seed:_ x =
    Atomic.incr computed;
    x * 7
  in
  let options jobs =
    { Runner.default_options with Runner.jobs; journal = Some path;
      resume = true; root_seed = 5 }
  in
  let first =
    Runner.map_grid ~options:(options 2) ~codec:int_codec ~id:string_of_int ~f
      items
  in
  check Alcotest.int "all cells computed once" 8 (Atomic.get computed);
  (* crash simulation: truncate the journal inside its last line *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 5);
  Unix.close fd;
  let resumed =
    Runner.map_grid ~options:(options 2) ~codec:int_codec ~id:string_of_int ~f
      items
  in
  check Alcotest.int "only the corrupted cell re-ran" 9 (Atomic.get computed);
  check Alcotest.(list int) "resumed run returns the same rows" first resumed;
  (* a third run finds a complete journal and computes nothing *)
  let again =
    Runner.map_grid ~options:(options 1) ~codec:int_codec ~id:string_of_int ~f
      items
  in
  check Alcotest.int "fully journaled: zero recomputation" 9
    (Atomic.get computed);
  check Alcotest.(list int) "journal replay preserves grid order" first again;
  Sys.remove path

let test_map_grid_journal_requires_codec () =
  Alcotest.check_raises "journal without codec"
    (Invalid_argument "Runner.map_grid: a journal requires a result codec")
    (fun () ->
      ignore
        (Runner.map_grid
           ~options:
             { Runner.default_options with Runner.journal = Some "/tmp/x" }
           ~id:string_of_int
           ~f:(fun ~seed:_ x -> x)
           [ 1 ]))

let test_map_grid_propagates_failure () =
  let path = temp_path () in
  Sys.remove path;
  let options =
    { Runner.default_options with Runner.jobs = 2; journal = Some path;
      resume = true }
  in
  let boom ~seed:_ x = if x = 3 then failwith "cell down" else x in
  (try
     ignore
       (Runner.map_grid ~options ~codec:int_codec ~id:string_of_int ~f:boom
          (List.init 6 (fun i -> i)));
     Alcotest.fail "expected failure"
   with Failure m -> check Alcotest.string "first error surfaces" "cell down" m);
  (* the other five cells were still journaled before the raise *)
  check Alcotest.int "completed cells checkpointed" 5
    (List.length (Journal.load path));
  Sys.remove path

(* --- satellite: robustness grid determinism, jobs=1 vs jobs=4 --- *)

let test_robustness_grid_deterministic () =
  let params =
    {
      E.Robustness.default_params with
      E.Robustness.num_gates = 80;
      key_size = 8;
      noise_levels = [ 0.0; 0.05 ];
      query_budgets = [ 0; 300 ];
      trials = 2;
      attacks = [ E.Robustness.Hill; E.Robustness.Sensitize ];
      max_iterations = 32;
      wall_clock_s = 120.0 (* generous: no timeout nondeterminism *);
    }
  in
  let run jobs =
    E.Robustness.run ~params
      ~options:{ Runner.default_options with Runner.jobs }
      ()
  in
  let canon rows = List.sort compare (List.map E.Robustness.canonical rows) in
  let r1 = canon (run 1) and r4 = canon (run 4) in
  check Alcotest.int "8 cells" 8 (List.length r1);
  check Alcotest.(list string) "jobs=1 and jobs=4 rows byte-identical" r1 r4

let suite =
  ( "runner",
    [
      tc "task hashing and seed derivation" `Quick test_task_hashing;
      tc "pool matches serial map" `Quick test_pool_matches_serial;
      tc "pool isolates exceptions" `Quick test_pool_isolates_exceptions;
      tc "pool on_result callback" `Quick test_pool_on_result;
      tc "journal round-trip" `Quick test_journal_roundtrip;
      tc "journal missing file" `Quick test_journal_missing_file;
      tc "journal crash truncation" `Quick test_journal_crash_truncation;
      tc "journal rejects garbage" `Quick test_journal_rejects_garbage;
      tc "progress counters" `Quick test_progress_counters;
      tc "progress rate excludes cache replay" `Quick
        test_progress_rate_excludes_replay;
      tc "map_grid order + parallel" `Quick test_map_grid_order_and_parallel;
      tc "map_grid seeds schedule-independent" `Quick
        test_map_grid_seeds_schedule_independent;
      tc "map_grid resume skips journaled cells" `Quick
        test_map_grid_resume_skips_journaled;
      tc "map_grid journal requires codec" `Quick
        test_map_grid_journal_requires_codec;
      tc "map_grid checkpoints before failing" `Quick
        test_map_grid_propagates_failure;
      tc "robustness grid deterministic at any job count" `Slow
        test_robustness_grid_deterministic;
    ] )
