open Util
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Tseitin = Orap_sat.Tseitin
module Dimacs = Orap_sat.Dimacs
module N = Orap_netlist.Netlist
module Prng = Orap_sim.Prng

let result = Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt
        (match r with
        | Solver.Sat -> "SAT"
        | Solver.Unsat -> "UNSAT"
        | Solver.Unknown -> "UNKNOWN"))
    ( = )

let test_lit_encoding () =
  let l = Lit.pos 5 in
  check Alcotest.int "var" 5 (Lit.var l);
  check Alcotest.bool "pos" false (Lit.is_neg l);
  check Alcotest.bool "negate" true (Lit.is_neg (Lit.negate l));
  check Alcotest.int "dimacs" 6 (Lit.to_dimacs l);
  check Alcotest.int "dimacs neg" (-6) (Lit.to_dimacs (Lit.neg 5));
  check Alcotest.int "of_dimacs roundtrip" l (Lit.of_dimacs 6)

let test_empty_sat () =
  let s = Solver.create () in
  check result "empty" Solver.Sat (Solver.solve s)

let test_unit_conflict () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  ignore (Solver.add_clause s [ Lit.pos v ]);
  ignore (Solver.add_clause s [ Lit.neg v ]);
  check result "x & ~x" Solver.Unsat (Solver.solve s)

let php_solver ~holes ~pigeons =
  let s = Solver.create () in
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    ignore (Solver.add_clause s (List.init holes (fun h -> Lit.pos v.(p).(h))))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        ignore (Solver.add_clause s [ Lit.neg v.(p1).(h); Lit.neg v.(p2).(h) ])
      done
    done
  done;
  s

let php ~holes ~pigeons = Solver.solve (php_solver ~holes ~pigeons)

(* conflicts a fresh solver spends refuting php(holes, pigeons); the solver
   is deterministic so a second fresh run replays the same trajectory *)
let php_refutation_conflicts ~holes ~pigeons =
  let s = php_solver ~holes ~pigeons in
  check result "refutable" Solver.Unsat (Solver.solve s);
  Solver.num_conflicts s

let test_conflict_limit_unknown () =
  let full = php_refutation_conflicts ~holes:7 ~pigeons:8 in
  check Alcotest.bool "php(7,8) costs conflicts" true (full > 4);
  let s = php_solver ~holes:7 ~pigeons:8 in
  check result "limit trips mid-proof" Solver.Unknown
    (Solver.solve ~conflict_limit:4 s);
  (* the solver stays usable: an uncapped resume reaches the real answer *)
  check result "resume after Unknown" Solver.Unsat (Solver.solve s)

(* regression: a genuine refutation completed on exactly the cap-th
   conflict used to be indistinguishable from a tripped limit *)
let test_unsat_at_exact_cap () =
  let c = php_refutation_conflicts ~holes:3 ~pigeons:4 in
  check Alcotest.bool "php(3,4) costs conflicts" true (c > 0);
  let s = php_solver ~holes:3 ~pigeons:4 in
  check result "real Unsat at exactly the cap" Solver.Unsat
    (Solver.solve ~conflict_limit:c s);
  let s = php_solver ~holes:3 ~pigeons:4 in
  check result "one conflict short is Unknown" Solver.Unknown
    (Solver.solve ~conflict_limit:(c - 1) s)

(* same boundary one layer up: Budget.solve must report Ok Unsat, not a
   spent conflict budget, when the proof lands exactly on the cap *)
let test_budget_unsat_at_exact_cap () =
  let module Budget = Orap_attacks.Budget in
  let c = php_refutation_conflicts ~holes:3 ~pigeons:4 in
  let clock = Budget.start (Budget.make ~max_conflicts:c ()) in
  (match Budget.solve clock (php_solver ~holes:3 ~pigeons:4) with
  | Ok Solver.Unsat -> ()
  | Ok Solver.Sat -> Alcotest.fail "expected Unsat, got Sat"
  | Ok Solver.Unknown -> Alcotest.fail "Budget.solve leaked Unknown"
  | Error r ->
    Alcotest.fail
      ("budget misread a genuine refutation as " ^ Budget.reason_to_string r));
  let clock = Budget.start (Budget.make ~max_conflicts:(c - 1) ()) in
  match Budget.solve clock (php_solver ~holes:3 ~pigeons:4) with
  | Error (Budget.Conflicts _) -> ()
  | Error r -> Alcotest.fail ("unexpected reason: " ^ Budget.reason_to_string r)
  | Ok _ -> Alcotest.fail "a too-small budget must not produce an answer"

let test_pigeonhole () =
  check result "php(3,4)" Solver.Unsat (php ~holes:3 ~pigeons:4);
  check result "php(4,4)" Solver.Sat (php ~holes:4 ~pigeons:4);
  check result "php(7,8)" Solver.Unsat (php ~holes:7 ~pigeons:8)

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  ignore (Solver.add_clause s [ Lit.pos a; Lit.pos b ]);
  check result "both negated" Solver.Unsat
    (Solver.solve ~assumptions:[| Lit.neg a; Lit.neg b |] s);
  check result "one negated" Solver.Sat
    (Solver.solve ~assumptions:[| Lit.neg a |] s);
  check Alcotest.bool "model forces b" true (Solver.model_value s b);
  (* solver remains usable *)
  check result "no assumptions" Solver.Sat (Solver.solve s)

let test_incremental_add () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  ignore (Solver.add_clause s [ Lit.pos a; Lit.pos b ]);
  check result "sat" Solver.Sat (Solver.solve s);
  Solver.backtrack_to_root s;
  ignore (Solver.add_clause s [ Lit.neg a ]);
  ignore (Solver.add_clause s [ Lit.neg b ]);
  check result "unsat after adds" Solver.Unsat (Solver.solve s)

let brute_force_sat nv clauses =
  let sat = ref false in
  for m = 0 to (1 lsl nv) - 1 do
    if not !sat then
      if
        List.for_all
          (List.exists (fun l ->
               let v = Lit.var l in
               let bit = (m lsr v) land 1 = 1 in
               if Lit.is_neg l then not bit else bit))
          clauses
      then sat := true
  done;
  !sat

let prop_random_3sat_sound =
  qtest ~count:60 "random 3-SAT agrees with brute force" seed_gen (fun seed ->
      let rng = Prng.create seed in
      let nv = 12 in
      let s = Solver.create () in
      let vars = Solver.new_vars s nv in
      let clauses = ref [] in
      for _ = 1 to 52 do
        let cl =
          List.init 3 (fun _ ->
              Lit.of_var ~negated:(Prng.bool rng) vars.(Prng.int rng nv))
        in
        clauses := cl :: !clauses;
        ignore (Solver.add_clause s cl)
      done;
      let expected = brute_force_sat nv !clauses in
      match Solver.solve s with
      | Solver.Sat ->
        expected
        && List.for_all
             (List.exists (fun l -> Solver.model_lit s l))
             !clauses
      | Solver.Unsat -> not expected
      | Solver.Unknown -> false)

(* --- Tseitin --- *)

let test_tseitin_equivalence () =
  (* miter of a netlist against itself must be UNSAT *)
  let nl = random_netlist ~inputs:8 ~outputs:5 ~gates:60 77 in
  let s = Solver.create () in
  let x = Solver.new_vars s (N.num_inputs nl) in
  let n1 = Tseitin.encode s nl ~input_var:(fun i -> x.(i)) in
  let n2 = Tseitin.encode s nl ~input_var:(fun i -> x.(i)) in
  let o1 = Tseitin.output_vars nl n1 and o2 = Tseitin.output_vars nl n2 in
  let diffs =
    Array.map2
      (fun a b ->
        let d = Solver.new_var s in
        ignore (Solver.add_clause s [ Lit.neg d; Lit.pos a; Lit.pos b ]);
        ignore (Solver.add_clause s [ Lit.neg d; Lit.neg a; Lit.neg b ]);
        ignore (Solver.add_clause s [ Lit.pos d; Lit.pos a; Lit.neg b ]);
        ignore (Solver.add_clause s [ Lit.pos d; Lit.neg a; Lit.pos b ]);
        d)
      o1 o2
  in
  ignore (Solver.add_clause s (Array.to_list (Array.map Lit.pos diffs)));
  check result "self-miter UNSAT" Solver.Unsat (Solver.solve s)

let prop_tseitin_matches_simulation =
  qtest ~count:30 "tseitin model agrees with simulation" seed_gen (fun seed ->
      let nl = random_netlist ~inputs:7 ~outputs:4 ~gates:45 seed in
      let s = Solver.create () in
      let x = Solver.new_vars s (N.num_inputs nl) in
      let nodes = Tseitin.encode s nl ~input_var:(fun i -> x.(i)) in
      let outs = Tseitin.output_vars nl nodes in
      (* force a random input assignment via unit clauses *)
      let rng = Prng.create (seed + 1) in
      let inp = Array.init (N.num_inputs nl) (fun _ -> Prng.bool rng) in
      Array.iteri
        (fun i v ->
          ignore
            (Solver.add_clause s [ (if inp.(i) then Lit.pos v else Lit.neg v) ]))
        x;
      match Solver.solve s with
      | Solver.Unsat | Solver.Unknown -> false
      | Solver.Sat ->
        let sim = Orap_sim.Sim.eval_bools nl inp in
        Array.for_all2 (fun ov expect -> Solver.model_value s ov = expect)
          outs sim)

(* --- DIMACS --- *)

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = Dimacs.parse text in
  check Alcotest.int "vars" 3 cnf.Dimacs.num_vars;
  check Alcotest.int "clauses" 2 (List.length cnf.Dimacs.clauses);
  let cnf2 = Dimacs.parse (Dimacs.print cnf) in
  check Alcotest.bool "roundtrip" true (cnf.Dimacs.clauses = cnf2.Dimacs.clauses);
  let s, _ = Dimacs.to_solver cnf in
  check result "sat" Solver.Sat (Solver.solve s)

(* to_solver must reach the same verdict as loading the same clauses into a
   fresh Solver by hand, for both satisfiable and unsatisfiable inputs *)
let test_dimacs_solver_cross_check () =
  let manual_solve (cnf : Dimacs.cnf) =
    let s = Solver.create () in
    let vars = Solver.new_vars s cnf.Dimacs.num_vars in
    List.iter
      (fun clause ->
        ignore
          (Solver.add_clause s
             (List.map
                (fun i -> Lit.of_var ~negated:(i < 0) vars.(abs i - 1))
                clause)))
      cnf.Dimacs.clauses;
    Solver.solve s
  in
  let cases =
    [
      ("sat", "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n", Solver.Sat);
      ("unsat", "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n", Solver.Unsat);
      ("unit chain", "p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n", Solver.Sat);
    ]
  in
  List.iter
    (fun (name, text, expected) ->
      let cnf = Dimacs.parse text in
      let s, _ = Dimacs.to_solver cnf in
      check result (name ^ " via to_solver") expected (Solver.solve s);
      check result (name ^ " via manual load") expected (manual_solve cnf);
      (* and the verdict survives a print/parse round-trip *)
      let s2, _ = Dimacs.to_solver (Dimacs.parse (Dimacs.print cnf)) in
      check result (name ^ " after roundtrip") expected (Solver.solve s2))
    cases

let test_stats_exposed () =
  let s = Solver.create () in
  ignore (php ~holes:3 ~pigeons:4);
  check Alcotest.bool "fresh solver has no conflicts" true
    (Solver.num_conflicts s = 0 && Solver.num_decisions s = 0
     && Solver.num_propagations s = 0);
  check Alcotest.int "vars" 0 (Solver.num_vars s)

let suite =
  ( "sat",
    [
      tc "literal encoding" `Quick test_lit_encoding;
      tc "empty formula" `Quick test_empty_sat;
      tc "unit conflict" `Quick test_unit_conflict;
      tc "pigeonhole" `Quick test_pigeonhole;
      tc "conflict limit yields Unknown" `Quick test_conflict_limit_unknown;
      tc "real Unsat at exact conflict cap" `Quick test_unsat_at_exact_cap;
      tc "budget honours Unsat at exact cap" `Quick test_budget_unsat_at_exact_cap;
      tc "assumptions" `Quick test_assumptions;
      tc "incremental clause adding" `Quick test_incremental_add;
      prop_random_3sat_sound;
      tc "tseitin self-miter" `Quick test_tseitin_equivalence;
      prop_tseitin_matches_simulation;
      tc "dimacs roundtrip" `Quick test_dimacs_roundtrip;
      tc "dimacs solver cross-check" `Quick test_dimacs_solver_cross_check;
      tc "statistics exposed" `Quick test_stats_exposed;
    ] )
