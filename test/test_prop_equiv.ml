(** Differential tests of the equivalence oracle itself, plus SAT-layer
    DIMACS properties.  The SAT-miter decider and the exhaustive simulator
    are independent implementations; on circuits small enough for both,
    they must return the same verdict, and every counterexample either
    produces must actually distinguish the circuits. *)

open Util
module Prop = Orap_proptest.Prop
module Gen = Orap_proptest.Gen
module Equiv = Orap_proptest.Equiv
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Dimacs = Orap_sat.Dimacs

let tiny = Gen.tiny_params

(* netlist + one-gate mutant: the workload that exercises both verdicts *)
let mutant_pair_gen = Gen.bind (Gen.netlist ~params:tiny ()) (fun nl ->
    Gen.map (fun m -> (nl, m)) (Gen.mutant nl))

(* P: SAT miter and exhaustive simulation agree on every (nl, mutant) pair *)
let prop_sat_agrees_with_exhaustive =
  Prop.to_alcotest ~count:60 ~name:"sat miter verdict = exhaustive verdict"
    ~gen:mutant_pair_gen
    ~print:(fun (nl, m) ->
      "original:\n" ^ Orap_proptest.Shrink.report nl ^ "mutant:\n"
      ^ Orap_proptest.Shrink.report m)
    (fun (nl, m) ->
      let s = Equiv.sat_equiv nl m in
      let e = Equiv.exhaustive_equiv nl m in
      match (s, e) with
      | Equiv.Equivalent, Equiv.Equivalent -> true
      | Equiv.Inequivalent a, Equiv.Inequivalent b ->
        Equiv.counterexample_valid nl m a && Equiv.counterexample_valid nl m b
      | Equiv.Equivalent, Equiv.Inequivalent _
      | Equiv.Inequivalent _, Equiv.Equivalent ->
        false)

(* P: reflexivity, and complementing an output is always caught *)
let prop_self_and_complement =
  Prop.netlist ~count:40 ~params:tiny
    "self-equivalence and output-complement inequivalence" (fun nl ->
      let b = N.Builder.create () in
      let map = N.copy_into b nl (Array.make (N.num_nodes nl) (-1)) in
      let outs = N.outputs nl in
      Array.iteri
        (fun j o ->
          if j = 0 then
            N.Builder.mark_output b
              (N.Builder.add_node b Gate.Not [| map.(o) |])
          else N.Builder.mark_output b map.(o))
        outs;
      let complemented = N.Builder.finish b in
      Equiv.sat_equiv nl nl = Equiv.Equivalent
      && Equiv.exhaustive_equiv nl nl = Equiv.Equivalent
      && (match Equiv.sat_equiv nl complemented with
         | Equiv.Inequivalent cex ->
           Equiv.counterexample_valid nl complemented cex
         | Equiv.Equivalent -> false))

(* P: with_fixed_inputs really is partial evaluation: fixing input 0 to v
   agrees with simulating the original on (v, rest) *)
let prop_fixed_inputs_partial_eval =
  Prop.netlist_with_seed ~count:40 ~params:tiny
    "with_fixed_inputs is partial evaluation" (fun nl ~aux ->
      let rng = Prng.create aux in
      let ni = N.num_inputs nl in
      if ni < 2 then true
      else begin
        let v = Prng.bool rng in
        let specialized = Equiv.with_fixed_inputs nl [ (0, v) ] in
        let ok = ref true in
        for _ = 1 to 16 do
          let rest = Prng.bool_array rng (ni - 1) in
          let full = Array.init ni (fun i -> if i = 0 then v else rest.(i - 1)) in
          if Sim.eval_bools nl full <> Sim.eval_bools specialized rest then
            ok := false
        done;
        !ok
      end)

(* --- DIMACS / solver cross-checks (sat layer) --- *)

let clause_gen ~num_vars =
  Gen.list_of (Gen.int_range 1 3)
    (Gen.map
       (fun (v, s) -> if s then v else -v)
       (Gen.pair (Gen.int_range 1 num_vars) Gen.bool))

let cnf_gen =
  Gen.bind (Gen.int_range 2 6) (fun num_vars ->
      Gen.map
        (fun clauses ->
          { Dimacs.num_vars; clauses = List.filter (( <> ) []) clauses })
        (Gen.list_of (Gen.int_range 1 12) (clause_gen ~num_vars)))

let brute_force_sat (c : Dimacs.cnf) =
  let n = c.Dimacs.num_vars in
  let sat = ref false in
  for m = 0 to (1 lsl n) - 1 do
    if
      List.for_all
        (List.exists (fun l ->
             let v = abs l - 1 in
             let asg = (m lsr v) land 1 = 1 in
             if l > 0 then asg else not asg))
        c.Dimacs.clauses
    then sat := true
  done;
  !sat

let pp_cnf c = Dimacs.print c

(* P: print/parse round-trips the clause set *)
let prop_dimacs_roundtrip =
  Prop.to_alcotest ~count:60 ~name:"dimacs print/parse round-trip"
    ~gen:cnf_gen ~print:pp_cnf (fun c ->
      let back = Dimacs.parse (Dimacs.print c) in
      back.Dimacs.clauses = c.Dimacs.clauses
      && back.Dimacs.num_vars = c.Dimacs.num_vars)

(* P: the CDCL solver on a loaded CNF agrees with brute-force enumeration *)
let prop_solver_matches_brute_force =
  Prop.to_alcotest ~count:60 ~name:"solver verdict = brute force on tiny CNFs"
    ~gen:cnf_gen ~print:pp_cnf (fun c ->
      let s, _vars = Dimacs.to_solver c in
      let verdict = Solver.solve s in
      (verdict = Solver.Sat) = brute_force_sat c)

let suite =
  ( "prop_equiv",
    [
      prop_sat_agrees_with_exhaustive;
      prop_self_and_complement;
      prop_fixed_inputs_partial_eval;
      prop_dimacs_roundtrip;
      prop_solver_matches_brute_force;
    ] )
