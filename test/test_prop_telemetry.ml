(** Cross-layer properties tying the attack statistics to the telemetry
    stream: the numbers an attack reports must agree with the events its
    instrumented hot paths actually emitted.  This is the check that the
    stats cannot silently drift from reality again (they used to: lifetime
    oracle counts reported as per-run queries). *)

module Locked = Orap_locking.Locked
module Random_ll = Orap_locking.Random_ll
module Oracle = Orap_core.Oracle
module Budget = Orap_attacks.Budget
module Sat_attack = Orap_attacks.Sat_attack
module Prop = Orap_proptest.Prop
module Gen = Orap_proptest.Gen
module Telemetry = Orap_telemetry.Telemetry

let benchgen = Gen.benchgen_netlist ~inputs:8 ~outputs:4 ~gates:40

let with_seed g = Gen.pair g (Gen.int_range 0 0x3FFFFFFF)

(* Run the SAT attack with a memory sink capturing every event it emits. *)
let traced_attack (nl, seed) =
  let lk = Random_ll.lock ~seed nl ~key_size:6 in
  let oracle = Oracle.functional lk in
  let sink, events = Telemetry.memory () in
  let r = Telemetry.with_sink sink (fun () -> Sat_attack.run lk oracle) in
  (r, events ())

let spans name events =
  List.filter
    (fun e ->
      e.Telemetry.phase = Telemetry.Complete && e.Telemetry.name = name)
    events

let int_arg key e =
  match List.assoc_opt key e.Telemetry.args with
  | Some (Telemetry.Int n) -> Some n
  | _ -> None

(* P: the attack's reported [queries] equals the number of "oracle.query"
   spans in its trace — the report and the stream count the same thing *)
let prop_queries_match_trace =
  Prop.to_alcotest ~count:12
    ~name:"reported queries = oracle.query span count"
    ~gen:(with_seed benchgen) (fun input ->
      let r, events = traced_attack input in
      r.Sat_attack.queries = List.length (spans "oracle.query" events))

(* P: the per-solve conflict deltas attached to "solver.solve" spans sum to
   the attack's reported [conflicts], which in turn is the fresh solver's
   lifetime total — no solve escapes instrumentation, none is counted
   twice *)
let prop_conflict_deltas_sum =
  Prop.to_alcotest ~count:12
    ~name:"solver.solve conflict deltas sum to reported conflicts"
    ~gen:(with_seed benchgen) (fun input ->
      let r, events = traced_attack input in
      let solves = spans "solver.solve" events in
      solves <> []
      && List.for_all (fun e -> int_arg "conflicts" e <> None) solves
      && List.fold_left
           (fun acc e -> acc + Option.get (int_arg "conflicts" e))
           0 solves
         = r.Sat_attack.conflicts)

(* P: the run span's exit args restate the result record, and the
   iteration spans count every DIP round plus the final (UNSAT) round
   that proves the key *)
let prop_run_span_restates_result =
  Prop.to_alcotest ~count:8
    ~name:"sat_attack.run exit args match the result record"
    ~gen:(with_seed benchgen) (fun input ->
      let r, events = traced_attack input in
      match spans "sat_attack.run" events with
      | [ run ] ->
        int_arg "iterations" run = Some r.Sat_attack.iterations
        && int_arg "queries" run = Some r.Sat_attack.queries
        && int_arg "conflicts" run = Some r.Sat_attack.conflicts
        && List.length (spans "sat_attack.iteration" events)
           = r.Sat_attack.iterations + 1
      | _ -> false)

let suite =
  ( "prop-telemetry",
    [
      prop_queries_match_trace;
      prop_conflict_deltas_sum;
      prop_run_span_restates_result;
    ] )
