(** Locking-layer properties.  Every scheme must be invisible under the
    correct key (miter-UNSAT against the original) and the point-function
    schemes must be provably corrupted under wrong keys; verdicts are
    cross-checked against random-pattern simulation so the SAT path and
    the simulation path audit each other. *)

open Util
module Locked = Orap_locking.Locked
module Random_ll = Orap_locking.Random_ll
module Weighted = Orap_locking.Weighted
module Sarlock = Orap_locking.Sarlock
module Antisat = Orap_locking.Antisat
module Prop = Orap_proptest.Prop
module Gen = Orap_proptest.Gen
module Equiv = Orap_proptest.Equiv

(* the locked netlist with its key inputs fixed to [key]: an ordinary
   netlist over the regular inputs, directly comparable to the original *)
let keyed (lk : Locked.t) key =
  let positions = Locked.key_input_positions lk in
  Equiv.with_fixed_inputs lk.Locked.netlist
    (Array.to_list (Array.mapi (fun j pos -> (pos, key.(j))) positions))

let benchgen = Gen.benchgen_netlist ~inputs:8 ~outputs:4 ~gates:50

let with_seed g = Gen.pair g (Gen.int_range 0 0x3FFFFFFF)

(* P: XOR/XNOR random locking is transparent under the correct key *)
let prop_random_ll_correct_key =
  Prop.to_alcotest ~count:25 ~name:"random_ll: correct key is transparent"
    ~gen:(with_seed benchgen) (fun (nl, seed) ->
      let lk = Random_ll.lock ~seed nl ~key_size:8 in
      Equiv.check ~method_:`Sat nl (keyed lk lk.Locked.correct_key)
      = Equiv.Equivalent)

(* P: weighted locking is transparent under the correct key *)
let prop_weighted_correct_key =
  Prop.to_alcotest ~count:20 ~name:"weighted: correct key is transparent"
    ~gen:(with_seed benchgen) (fun (nl, seed) ->
      let params =
        { (Weighted.default_params ~key_size:9 ~ctrl_inputs:3) with
          Weighted.seed }
      in
      let lk = Weighted.lock ~params nl ~key_size:9 ~ctrl_inputs:3 in
      Equiv.check ~method_:`Sat nl (keyed lk lk.Locked.correct_key)
      = Equiv.Equivalent)

(* P: SARLock is transparent under the correct key and provably corrupted
   under EVERY wrong key (its comparator flips an output exactly on the
   matching input pattern) *)
let prop_sarlock_keys =
  Prop.to_alcotest ~count:20
    ~name:"sarlock: correct key transparent, any wrong key caught"
    ~gen:(with_seed benchgen) (fun (nl, seed) ->
      let lk = Sarlock.lock ~seed nl ~key_size:6 in
      let correct = lk.Locked.correct_key in
      let rng = Prng.create (seed + 1) in
      let wrong = Array.copy correct in
      (* flip 1..k random bits: never equal to the correct key afterwards *)
      let flips = 1 + Prng.int rng (Array.length wrong) in
      for _ = 1 to flips do
        let j = Prng.int rng (Array.length wrong) in
        wrong.(j) <- not wrong.(j)
      done;
      let wrong = if wrong = correct then (wrong.(0) <- not wrong.(0); wrong) else wrong in
      Equiv.check ~method_:`Sat nl (keyed lk correct) = Equiv.Equivalent
      && (match Equiv.sat_equiv nl (keyed lk wrong) with
         | Equiv.Inequivalent cex ->
           Equiv.counterexample_valid nl (keyed lk wrong) cex
         | Equiv.Equivalent -> false))

(* P: Anti-SAT is transparent under the correct key; flipping one bit of
   one half makes the two halves disagree, which provably corrupts the
   protected output on some pattern *)
let prop_antisat_keys =
  Prop.to_alcotest ~count:20
    ~name:"antisat: correct key transparent, split key caught"
    ~gen:(with_seed benchgen) (fun (nl, seed) ->
      let lk = Antisat.lock ~seed nl ~key_size:8 in
      let correct = lk.Locked.correct_key in
      let rng = Prng.create (seed + 2) in
      let wrong = Array.copy correct in
      let j = Prng.int rng (Array.length wrong) in
      wrong.(j) <- not wrong.(j);
      Equiv.check ~method_:`Sat nl (keyed lk correct) = Equiv.Equivalent
      && Equiv.sat_equiv nl (keyed lk wrong) <> Equiv.Equivalent)

(* P: differential audit — on a random key guess, the SAT verdict, the
   random-simulation proxy and Locked.eval must tell one coherent story *)
let prop_verdicts_cross_check =
  Prop.to_alcotest ~count:25 ~name:"miter, random sim and Locked.eval agree"
    ~gen:(with_seed benchgen) (fun (nl, seed) ->
      let lk = Random_ll.lock ~seed nl ~key_size:6 in
      let rng = Prng.create (seed + 3) in
      let guess =
        if Prng.bool rng then lk.Locked.correct_key
        else Prng.bool_array rng (Locked.key_size lk)
      in
      let specialized = keyed lk guess in
      (* Locked.eval must equal simulation of the specialised netlist *)
      let eval_agrees = ref true in
      for _ = 1 to 32 do
        let x = Prng.bool_array rng lk.Locked.num_regular_inputs in
        if Locked.eval lk ~key:guess ~inputs:x <> Sim.eval_bools specialized x
        then eval_agrees := false
      done;
      let sim_equal = equivalent_on_random ~seed:(seed + 4) nl specialized in
      match Equiv.sat_equiv nl specialized with
      | Equiv.Equivalent ->
        (* SAT proof of equality: sampling cannot find a difference *)
        !eval_agrees && sim_equal
      | Equiv.Inequivalent cex ->
        (* the counterexample must be real; sampling may or may not hit one *)
        !eval_agrees && Equiv.counterexample_valid nl specialized cex)

let suite =
  ( "prop_locking",
    [
      prop_random_ll_correct_key;
      prop_weighted_correct_key;
      prop_sarlock_keys;
      prop_antisat_keys;
      prop_verdicts_cross_check;
    ] )
