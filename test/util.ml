(** Shared helpers for the test suites. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Sim = Orap_sim.Sim
module Prng = Orap_sim.Prng

let check = Alcotest.check
let tc = Alcotest.test_case

(** A deterministic random netlist for property tests. *)
let random_netlist ?(inputs = 8) ?(outputs = 5) ?(gates = 60) seed =
  Orap_benchgen.Benchgen.generate
    { Orap_benchgen.Benchgen.seed; num_inputs = inputs; num_outputs = outputs;
      num_gates = gates }

(** Do two netlists with the same input count agree on [n] random patterns? *)
let equivalent_on_random ?(seed = 424) ?(n = 128) a b =
  if N.num_inputs a <> N.num_inputs b then false
  else begin
    let rng = Prng.create seed in
    let ok = ref true in
    for _ = 1 to n do
      let inp = Prng.bool_array rng (N.num_inputs a) in
      if Sim.eval_bools a inp <> Sim.eval_bools b inp then ok := false
    done;
    !ok
  end

(** QCheck generator for small seeds. *)
let seed_gen = QCheck.(int_range 0 10_000)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(** Naive substring test, for asserting on printed reports. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(** {1 Tiny reference circuits} *)

(** A full adder: inputs a, b, cin; outputs sum, cout. *)
let full_adder () =
  let b = N.Builder.create () in
  let a = N.Builder.add_input ~name:"a" b in
  let x = N.Builder.add_input ~name:"b" b in
  let cin = N.Builder.add_input ~name:"cin" b in
  let s1 = N.Builder.add_node ~name:"s1" b Gate.Xor [| a; x |] in
  let sum = N.Builder.add_node ~name:"sum" b Gate.Xor [| s1; cin |] in
  let c1 = N.Builder.add_node b Gate.And [| a; x |] in
  let c2 = N.Builder.add_node b Gate.And [| s1; cin |] in
  let cout = N.Builder.add_node ~name:"cout" b Gate.Or [| c1; c2 |] in
  N.Builder.mark_output b sum;
  N.Builder.mark_output b cout;
  N.Builder.finish b

(** A linear chain of [width]-less gates: inputs folded left through [kind]. *)
let chain_circuit ?(kind = Gate.And) n_inputs =
  let b = N.Builder.create () in
  let pis = Array.init n_inputs (fun _ -> N.Builder.add_input b) in
  let acc = ref pis.(0) in
  for i = 1 to n_inputs - 1 do
    acc := N.Builder.add_node b kind [| !acc; pis.(i) |]
  done;
  N.Builder.mark_output b !acc;
  N.Builder.finish b

(** {1 Structural and fault-model references} *)

(** Structural equality by name: same inputs/outputs in order, and every
    named node computes the same gate over the same (named) fanins. *)
let netlists_structurally_equal a b =
  let names t arr = Array.map (N.node_name t) arr in
  names a (N.inputs a) = names b (N.inputs b)
  && names a (N.outputs a) = names b (N.outputs b)
  && N.num_nodes a = N.num_nodes b
  &&
  let ok = ref true in
  for i = 0 to N.num_nodes a - 1 do
    let name = N.node_name a i in
    match N.find b name with
    | None -> ok := false
    | Some j ->
      if N.kind a i <> N.kind b j then ok := false;
      let fa = Array.map (N.node_name a) (N.fanins a i) in
      let fb = Array.map (N.node_name b) (N.fanins b j) in
      if fa <> fb then ok := false
  done;
  !ok

(** Reference fault simulation: full-circuit evaluation with the single
    stuck-at fault forced in, one pattern at a time. *)
let eval_with_fault nl fault inp =
  let module Fault = Orap_faultsim.Fault in
  let n = N.num_nodes nl in
  let values = Array.make n false in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    let v =
      match N.kind nl i with
      | Gate.Input ->
        let v = inp.(!pos) in
        incr pos;
        v
      | k ->
        let fan = N.fanins nl i in
        let ops =
          Array.mapi
            (fun p f ->
              match fault.Fault.site with
              | Fault.Input (fn, fp) when fn = i && fp = p -> fault.Fault.stuck
              | Fault.Input _ | Fault.Output _ -> values.(f))
            fan
        in
        Gate.eval_bool k ops
    in
    let v =
      match fault.Fault.site with
      | Fault.Output fn when fn = i -> fault.Fault.stuck
      | Fault.Output _ | Fault.Input _ -> v
    in
    values.(i) <- v
  done;
  Array.map (fun o -> values.(o)) (N.outputs nl)
