(** The telemetry subsystem: span emission through the sinks, the strict
    JSONL trace parser (round-trip against [event_to_json]), and the
    metrics registry (counters from multiple domains, log-bucket
    histograms, JSON snapshots). *)

open Util
module Telemetry = Orap_telemetry.Telemetry
module Metrics = Orap_telemetry.Metrics
module Trace = Orap_telemetry.Trace

let tmp_file suffix =
  Filename.temp_file "orap_telemetry_test" suffix

(* --- spans and sinks --- *)

let test_disabled_is_identity () =
  check Alcotest.bool "no sink installed" false (Telemetry.enabled ());
  let r = Telemetry.span "unused" (fun () -> 41 + 1) in
  check Alcotest.int "span is f () when disabled" 42 r

let test_memory_sink_captures_nesting () =
  let sink, events = Telemetry.memory () in
  Telemetry.with_sink sink (fun () ->
      check Alcotest.bool "enabled under with_sink" true (Telemetry.enabled ());
      let r =
        Telemetry.span "outer"
          ~args:[ ("layer", Telemetry.String "top") ]
          (fun () ->
            Telemetry.span "inner" (fun () -> ignore (Sys.opaque_identity 1));
            7)
      in
      check Alcotest.int "span returns f's value" 7 r);
  check Alcotest.bool "shut down after with_sink" false (Telemetry.enabled ());
  match events () with
  | [ inner; outer ] ->
    (* spans are emitted on exit, so the inner span completes first *)
    check Alcotest.string "inner name" "inner" inner.Telemetry.name;
    check Alcotest.string "outer name" "outer" outer.Telemetry.name;
    check Alcotest.bool "both are Complete events" true
      (inner.Telemetry.phase = Telemetry.Complete
      && outer.Telemetry.phase = Telemetry.Complete);
    check Alcotest.bool "outer contains inner" true
      (outer.Telemetry.ts_us <= inner.Telemetry.ts_us
      && outer.Telemetry.ts_us +. outer.Telemetry.dur_us
         >= inner.Telemetry.ts_us +. inner.Telemetry.dur_us);
    check Alcotest.bool "entry args preserved" true
      (List.assoc_opt "layer" outer.Telemetry.args
      = Some (Telemetry.String "top"))
  | evs ->
    Alcotest.failf "expected exactly 2 events, got %d" (List.length evs)

let test_span_exit_args_and_exceptions () =
  let sink, events = Telemetry.memory () in
  Telemetry.with_sink sink (fun () ->
      let r =
        Telemetry.span "work"
          ~exit_args:(fun n -> [ ("result", Telemetry.Int n) ])
          (fun () -> 13)
      in
      check Alcotest.int "value passes through" 13 r;
      match
        Telemetry.span "boom" (fun () -> failwith "expected")
      with
      | () -> Alcotest.fail "span must re-raise"
      | exception Failure _ -> ());
  match events () with
  | [ work; boom ] ->
    check Alcotest.bool "exit_args derived from result" true
      (List.assoc_opt "result" work.Telemetry.args
      = Some (Telemetry.Int 13));
    check Alcotest.bool "failed span carries an error arg" true
      (match List.assoc_opt "error" boom.Telemetry.args with
      | Some (Telemetry.String _) -> true
      | _ -> false)
  | evs ->
    Alcotest.failf "expected exactly 2 events, got %d" (List.length evs)

let test_with_sink_shuts_down_on_raise () =
  let sink, _ = Telemetry.memory () in
  (match Telemetry.with_sink sink (fun () -> failwith "boom") with
  | () -> Alcotest.fail "with_sink must re-raise"
  | exception Failure _ -> ());
  check Alcotest.bool "disabled after the exception" false
    (Telemetry.enabled ())

(* --- JSONL sink <-> strict parser round-trip --- *)

let test_jsonl_roundtrip () =
  let path = tmp_file ".jsonl" in
  Telemetry.with_sink (Telemetry.jsonl path) (fun () ->
      Telemetry.span "solver.solve"
        ~args:
          [
            ("note", Telemetry.String "quote \" slash \\ newline \n tab \t");
            ("conflicts", Telemetry.Int 37);
            ("ratio", Telemetry.Float 0.25);
            ("sat", Telemetry.Bool true);
          ]
        (fun () -> ());
      Telemetry.instant "checkpoint";
      Telemetry.counter_sample "queries" 12.0);
  (match Trace.validate_file path with
  | Ok n -> check Alcotest.int "all three lines validate" 3 n
  | Error e -> Alcotest.failf "validate: %a" Trace.pp_error e);
  (match Trace.read_file path with
  | Ok [ span; inst; ctr ] ->
    check Alcotest.string "span name" "solver.solve" span.Telemetry.name;
    check Alcotest.bool "escaped string survives the round trip" true
      (List.assoc_opt "note" span.Telemetry.args
      = Some (Telemetry.String "quote \" slash \\ newline \n tab \t"));
    check Alcotest.bool "int arg" true
      (List.assoc_opt "conflicts" span.Telemetry.args
      = Some (Telemetry.Int 37));
    check Alcotest.bool "float arg" true
      (List.assoc_opt "ratio" span.Telemetry.args
      = Some (Telemetry.Float 0.25));
    check Alcotest.bool "bool arg" true
      (List.assoc_opt "sat" span.Telemetry.args = Some (Telemetry.Bool true));
    check Alcotest.bool "instant phase" true
      (inst.Telemetry.phase = Telemetry.Instant);
    check Alcotest.bool "counter phase" true
      (ctr.Telemetry.phase = Telemetry.Counter)
  | Ok evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)
  | Error e -> Alcotest.failf "read: %a" Trace.pp_error e);
  Sys.remove path

let test_event_to_json_parses_back () =
  let ev =
    {
      Telemetry.phase = Telemetry.Complete;
      name = "oracle.query";
      ts_us = 1234.5;
      dur_us = 0.75;
      tid = 3;
      args = [ ("bits", Telemetry.Int 16) ];
    }
  in
  match Trace.parse_line (Telemetry.event_to_json ev) with
  | Ok e ->
    check Alcotest.string "name" ev.Telemetry.name e.Telemetry.name;
    check (Alcotest.float 1e-9) "ts" ev.Telemetry.ts_us e.Telemetry.ts_us;
    check (Alcotest.float 1e-9) "dur" ev.Telemetry.dur_us e.Telemetry.dur_us;
    check Alcotest.int "tid" ev.Telemetry.tid e.Telemetry.tid;
    check Alcotest.bool "args" true (e.Telemetry.args = ev.Telemetry.args)
  | Error reason -> Alcotest.failf "own output must parse: %s" reason

let test_parser_rejects_deviations () =
  let ok = {|{"ph":"X","name":"a","ts":1.000,"dur":2.000,"pid":1,"tid":0}|} in
  check Alcotest.bool "baseline line parses" true
    (Result.is_ok (Trace.parse_line ok));
  let rejects what line =
    check Alcotest.bool what true (Result.is_error (Trace.parse_line line))
  in
  rejects "blank line" "";
  rejects "trailing bytes" (ok ^ " ");
  rejects "unknown key"
    {|{"ph":"X","name":"a","ts":1.0,"dur":2.0,"pid":1,"tid":0,"cat":"x"}|};
  rejects "span without dur" {|{"ph":"X","name":"a","ts":1.0,"pid":1,"tid":0}|};
  rejects "dur on an instant"
    {|{"ph":"i","name":"a","ts":1.0,"dur":2.0,"pid":1,"tid":0}|};
  rejects "unknown phase" {|{"ph":"B","name":"a","ts":1.0,"pid":1,"tid":0}|};
  rejects "wrong pid"
    {|{"ph":"X","name":"a","ts":1.0,"dur":2.0,"pid":2,"tid":0}|};
  rejects "fractional tid"
    {|{"ph":"X","name":"a","ts":1.0,"dur":2.0,"pid":1,"tid":0.5}|};
  rejects "negative ts"
    {|{"ph":"X","name":"a","ts":-1.0,"dur":2.0,"pid":1,"tid":0}|};
  rejects "empty args object"
    {|{"ph":"X","name":"a","ts":1.0,"dur":2.0,"pid":1,"tid":0,"args":{}}|};
  rejects "nested object in args"
    {|{"ph":"X","name":"a","ts":1.0,"dur":2.0,"pid":1,"tid":0,"args":{"x":{}}}|};
  rejects "duplicate key"
    {|{"ph":"X","ph":"X","name":"a","ts":1.0,"dur":2.0,"pid":1,"tid":0}|};
  rejects "bad escape"
    {|{"ph":"X","name":"a\q","ts":1.0,"dur":2.0,"pid":1,"tid":0}|};
  rejects "not an object" {|[1,2,3]|}

let test_to_chrome_wraps_array () =
  let src = tmp_file ".jsonl" in
  let dst = tmp_file ".json" in
  Telemetry.with_sink (Telemetry.jsonl src) (fun () ->
      Telemetry.instant "a";
      Telemetry.instant "b");
  (match Trace.to_chrome ~src ~dst with
  | Ok n -> check Alcotest.int "two events converted" 2 n
  | Error e -> Alcotest.failf "to_chrome: %a" Trace.pp_error e);
  let ic = open_in_bin dst in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  check Alcotest.bool "JSON array shape" true
    (String.length body > 2
    && body.[0] = '['
    && String.sub body (len - 2) 2 = "]\n");
  check Alcotest.bool "events are inside" true
    (contains body "\"name\":\"a\"" && contains body "\"name\":\"b\"");
  Sys.remove src;
  Sys.remove dst

(* --- metrics --- *)

let test_counters_and_interning () =
  Metrics.reset ();
  let c = Metrics.counter "t.hits" in
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "incr + add" 5 (Metrics.value c);
  check Alcotest.int "interned by name" 5
    (Metrics.value (Metrics.counter "t.hits"));
  check Alcotest.bool "kind clash raises" true
    (match Metrics.gauge "t.hits" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Metrics.reset ();
  check Alcotest.int "reset re-interns at zero" 0
    (Metrics.value (Metrics.counter "t.hits"))

let test_counter_from_domains () =
  Metrics.reset ();
  let per_domain = 2000 in
  let worker () =
    (* re-intern inside the domain, as instrumentation sites do *)
    let c = Metrics.counter "t.parallel" in
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check Alcotest.int "no lost increments" (4 * per_domain)
    (Metrics.value (Metrics.counter "t.parallel"))

let test_histogram_buckets_and_quantiles () =
  Metrics.reset ();
  let h = Metrics.histogram "t.latency_s" in
  (* latencies spanning five decades, like real oracle queries *)
  let obs = [ 1e-6; 2e-6; 1e-4; 1e-3; 1e-3; 0.1; 2.0 ] in
  List.iter (Metrics.observe h) obs;
  let s = Metrics.histogram_snapshot h in
  check Alcotest.int "count" (List.length obs) s.Metrics.count;
  check (Alcotest.float 1e-9) "sum" (List.fold_left ( +. ) 0.0 obs)
    s.Metrics.sum;
  check (Alcotest.float 1e-9) "max" 2.0 s.Metrics.max;
  check Alcotest.int "bucket counts add up" (List.length obs)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Metrics.buckets);
  check Alcotest.bool "bucket bounds ascend" true
    (let bounds = List.map fst s.Metrics.buckets in
     List.sort compare bounds = bounds);
  (* every observation is <= its bucket's inclusive upper bound, and the
     log-scaled approximation stays within one power of two *)
  let p50 = Metrics.quantile h 0.5 in
  check Alcotest.bool "p50 brackets the median" true
    (p50 >= 1e-3 && p50 <= 2e-3);
  let p99 = Metrics.quantile h 0.99 in
  check Alcotest.bool "p99 brackets the max" true (p99 >= 2.0 && p99 <= 4.0);
  check Alcotest.bool "mean is exact (from sum)" true
    (Float.abs (Metrics.mean h -. (s.Metrics.sum /. float_of_int s.Metrics.count))
    < 1e-12)

let test_snapshot_json_shape () =
  Metrics.reset ();
  check Alcotest.string "empty registry"
    {|{"counters":{},"gauges":{},"histograms":{}}|}
    (Metrics.snapshot_json ());
  Metrics.add (Metrics.counter "b.n") 2;
  Metrics.add (Metrics.counter "a.n") 1;
  Metrics.set (Metrics.gauge "g.x") 1.5;
  Metrics.observe (Metrics.histogram "h.lat_s") 0.25;
  let s = Metrics.snapshot_json () in
  check Alcotest.string "snapshot is deterministic" s (Metrics.snapshot_json ());
  check Alcotest.bool "keys sorted" true
    (let a = String.index s 'a' and b = String.index s 'b' in
     a < b);
  List.iter
    (fun frag -> check Alcotest.bool frag true (contains s frag))
    [
      {|"a.n":1|};
      {|"b.n":2|};
      {|"g.x":1.5|};
      {|"count":1|};
      {|"p50":|};
      {|"p99":|};
      {|"buckets":[[|};
    ];
  let path = tmp_file ".json" in
  Metrics.write_json path;
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check Alcotest.string "write_json = snapshot + newline" (s ^ "\n") body;
  Sys.remove path;
  Metrics.reset ()

let suite =
  ( "telemetry",
    [
      tc "disabled span is identity" `Quick test_disabled_is_identity;
      tc "memory sink captures nesting" `Quick test_memory_sink_captures_nesting;
      tc "exit args and exceptions" `Quick test_span_exit_args_and_exceptions;
      tc "with_sink shuts down on raise" `Quick test_with_sink_shuts_down_on_raise;
      tc "jsonl sink round-trips strictly" `Quick test_jsonl_roundtrip;
      tc "event_to_json parses back" `Quick test_event_to_json_parses_back;
      tc "parser rejects deviations" `Quick test_parser_rejects_deviations;
      tc "to_chrome wraps a JSON array" `Quick test_to_chrome_wraps_array;
      tc "counters and interning" `Quick test_counters_and_interning;
      tc "counter increments across domains" `Quick test_counter_from_domains;
      tc "histogram buckets and quantiles" `Quick
        test_histogram_buckets_and_quantiles;
      tc "snapshot_json shape" `Quick test_snapshot_json_shape;
    ] )
