(** Testability-layer properties: the event-driven parallel fault
    simulator against forced-value resimulation, and PODEM's generated
    vectors against the fault simulator — three independent
    implementations of "does this pattern detect this fault?". *)

open Util
module Fault = Orap_faultsim.Fault
module Fsim = Orap_faultsim.Fsim
module Podem = Orap_atpg.Podem
module Prop = Orap_proptest.Prop
module Gen = Orap_proptest.Gen

(* P: for random faults and random pattern words, the event-driven
   detector agrees lane-by-lane with full forced-value resimulation *)
let prop_fsim_matches_forced_resim =
  Prop.netlist_with_seed ~count:30 "fault sim agrees with forced resimulation"
    (fun nl ~aux ->
      let faults = Fault.collapsed_list nl in
      if Array.length faults = 0 then true
      else begin
        let rng = Prng.create aux in
        let t = Fsim.create nl in
        let ni = N.num_inputs nl in
        let words = Array.init ni (fun _ -> Prng.next64 rng) in
        let good = Sim.eval_word nl ~input_word:(fun i -> words.(i)) in
        let ok = ref true in
        for _ = 1 to 8 do
          let fault = faults.(Prng.int rng (Array.length faults)) in
          let mask = Fsim.detect_word t good fault in
          for lane = 0 to 3 do
            let inp =
              Array.init ni (fun i ->
                  Int64.logand (Int64.shift_right_logical words.(i) lane) 1L
                  <> 0L)
            in
            let detected_ref =
              eval_with_fault nl fault inp <> Sim.eval_bools nl inp
            in
            let detected_par =
              Int64.logand (Int64.shift_right_logical mask lane) 1L <> 0L
            in
            if detected_ref <> detected_par then ok := false
          done
        done;
        !ok
      end)

(* P: every vector PODEM emits really detects its target fault, for any
   don't-care fill *)
let prop_podem_vectors_detect =
  Prop.netlist_with_seed ~count:20 "PODEM vectors detect their fault"
    (fun nl ~aux ->
      let faults = Fault.collapsed_list nl in
      if Array.length faults = 0 then true
      else begin
        let rng = Prng.create aux in
        let engine = Podem.create nl in
        let ni = N.num_inputs nl in
        let ok = ref true in
        for _ = 1 to 6 do
          let fault = faults.(Prng.int rng (Array.length faults)) in
          match Podem.run engine fault ~backtrack_limit:500 with
          | Podem.Redundant | Podem.Aborted -> ()
          | Podem.Test assignment ->
            (* two independent random fills of the don't-cares *)
            for _ = 1 to 2 do
              let inp =
                Array.init ni (fun i ->
                    match assignment.(i) with
                    | Some v -> v
                    | None -> Prng.bool rng)
              in
              if eval_with_fault nl fault inp = Sim.eval_bools nl inp then
                ok := false
            done
        done;
        !ok
      end)

(* P: a PODEM Redundant verdict means no pattern detects the fault — on
   small circuits, verify exhaustively *)
let prop_podem_redundant_means_undetectable =
  Prop.netlist_with_seed ~count:15 ~params:Gen.tiny_params
    "PODEM redundancy proofs hold exhaustively" (fun nl ~aux ->
      let faults = Fault.collapsed_list nl in
      if Array.length faults = 0 then true
      else begin
        let rng = Prng.create aux in
        let engine = Podem.create nl in
        let ni = N.num_inputs nl in
        let ok = ref true in
        for _ = 1 to 4 do
          let fault = faults.(Prng.int rng (Array.length faults)) in
          match Podem.run engine fault ~backtrack_limit:2000 with
          | Podem.Test _ | Podem.Aborted -> ()
          | Podem.Redundant ->
            for p = 0 to (1 lsl ni) - 1 do
              let inp = Array.init ni (fun i -> (p lsr i) land 1 = 1) in
              if eval_with_fault nl fault inp <> Sim.eval_bools nl inp then
                ok := false
            done
        done;
        !ok
      end)

let suite =
  ( "prop_testability",
    [
      prop_fsim_matches_forced_resim;
      prop_podem_vectors_detect;
      prop_podem_redundant_means_undetectable;
    ] )
