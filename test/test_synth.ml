open Util
module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Aig = Orap_synth.Aig
module Truth = Orap_synth.Truth
module Isop = Orap_synth.Isop
module Refactor = Orap_synth.Refactor
module Balance = Orap_synth.Balance
module Abc = Orap_synth.Abc_script
module Prng = Orap_sim.Prng

(* --- truth tables --- *)

let test_truth_var () =
  let v0 = Truth.var 3 0 in
  check Alcotest.bool "pattern 1 has x0" true (Truth.get v0 1);
  check Alcotest.bool "pattern 2 lacks x0" false (Truth.get v0 2);
  let v2 = Truth.var 3 2 in
  check Alcotest.bool "pattern 4 has x2" true (Truth.get v2 4);
  check Alcotest.int "var popcount" 4 (Truth.popcount v2)

let test_truth_var_wide () =
  (* variable index >= 6 exercises the word-level path *)
  let v7 = Truth.var 8 7 in
  check Alcotest.int "half the minterms" 128 (Truth.popcount v7);
  check Alcotest.bool "pattern 128" true (Truth.get v7 128);
  check Alcotest.bool "pattern 127" false (Truth.get v7 127)

let test_truth_ops () =
  let a = Truth.var 4 0 and b = Truth.var 4 1 in
  let f = Truth.logand a b in
  check Alcotest.int "and popcount" 4 (Truth.popcount f);
  let g = Truth.logor a b in
  check Alcotest.int "or popcount" 12 (Truth.popcount g);
  let h = Truth.logxor a b in
  check Alcotest.int "xor popcount" 8 (Truth.popcount h);
  check Alcotest.bool "not not = id" true
    (Truth.equal a (Truth.lognot (Truth.lognot a)));
  check Alcotest.bool "zero" true (Truth.is_zero (Truth.zero 4));
  check Alcotest.bool "ones" true (Truth.is_ones (Truth.ones 4))

let test_truth_cofactors () =
  let a = Truth.var 4 0 and b = Truth.var 4 1 in
  let f = Truth.logand a b in
  (* f|x0=1 = b, f|x0=0 = 0 *)
  check Alcotest.bool "pos cofactor" true (Truth.equal (Truth.cofactor1 f 0) b);
  check Alcotest.bool "neg cofactor" true (Truth.is_zero (Truth.cofactor0 f 0));
  check Alcotest.bool "depends" true (Truth.depends_on f 0);
  check Alcotest.bool "independent" false (Truth.depends_on f 3)

let test_truth_cofactors_wide () =
  let f = Truth.logand (Truth.var 8 7) (Truth.var 8 2) in
  check Alcotest.bool "pos cofactor wide" true
    (Truth.equal (Truth.cofactor1 f 7) (Truth.var 8 2));
  check Alcotest.bool "neg cofactor wide" true (Truth.is_zero (Truth.cofactor0 f 7))

(* random truth table over [nvars] *)
let random_truth rng nvars =
  let t = Truth.zero nvars in
  let words = t.Truth.words in
  for i = 0 to Array.length words - 1 do
    words.(i) <- Prng.next64 rng
  done;
  (* mask the partial last word (nvars < 6) *)
  Truth.logand t (Truth.ones nvars)

let prop_isop_covers_function =
  qtest ~count:60 "ISOP cover equals the function"
    QCheck.(pair seed_gen (int_range 1 8))
    (fun (seed, nvars) ->
      let rng = Prng.create seed in
      let f = random_truth rng nvars in
      let cubes = Isop.compute f in
      Truth.equal (Isop.cover_truth nvars cubes) f)

let test_isop_constants () =
  check Alcotest.int "zero -> no cubes" 0 (List.length (Isop.compute (Truth.zero 4)));
  let ones = Isop.compute (Truth.ones 4) in
  check Alcotest.int "ones -> one cube" 1 (List.length ones);
  check Alcotest.int "empty cube" 0 (Isop.cube_literals (List.hd ones))

let test_isop_cost () =
  (* f = x0 x1 + x2: 1 AND + 1 OR = 2 nodes *)
  let f =
    Truth.logor (Truth.logand (Truth.var 3 0) (Truth.var 3 1)) (Truth.var 3 2)
  in
  let cubes = Isop.compute f in
  check Alcotest.int "two cubes" 2 (List.length cubes);
  check Alcotest.int "cost" 2 (Isop.cost cubes)

(* --- AIG --- *)

let test_aig_strash_rules () =
  let g = Aig.create ~num_pis:2 in
  let a = Aig.pi_lit g 0 and b = Aig.pi_lit g 1 in
  check Alcotest.int "a & 1 = a" a (Aig.and_lit g a Aig.true_lit);
  check Alcotest.int "a & 0 = 0" Aig.false_lit (Aig.and_lit g a Aig.false_lit);
  check Alcotest.int "a & a = a" a (Aig.and_lit g a a);
  check Alcotest.int "a & ~a = 0" Aig.false_lit (Aig.and_lit g a (Aig.compl_lit a));
  let ab1 = Aig.and_lit g a b and ab2 = Aig.and_lit g b a in
  check Alcotest.int "hash-consing" ab1 ab2;
  check Alcotest.int "one and node" 1 (Aig.num_ands g)

let eval_aig g inputs =
  let n = Aig.num_nodes g in
  let v = Array.make n false in
  for id = Aig.num_pis g + 1 to n - 1 do
    let lit_val l =
      let x = v.(Aig.node_of_lit l) in
      if Aig.is_compl l then not x else x
    in
    v.(id) <- lit_val (Aig.fanin0 g id) && lit_val (Aig.fanin1 g id)
  done;
  for i = 0 to Aig.num_pis g - 1 do
    v.(i + 1) <- inputs.(i)
  done;
  (* re-sweep now that PIs are set *)
  for id = Aig.num_pis g + 1 to n - 1 do
    let lit_val l =
      let x = v.(Aig.node_of_lit l) in
      if Aig.is_compl l then not x else x
    in
    v.(id) <- lit_val (Aig.fanin0 g id) && lit_val (Aig.fanin1 g id)
  done;
  Array.map
    (fun o ->
      let x = v.(Aig.node_of_lit o) in
      if Aig.is_compl o then not x else x)
    (Aig.outputs g)

let prop_aig_roundtrip =
  qtest ~count:30 "netlist -> AIG -> netlist preserves function" seed_gen
    (fun seed ->
      let nl = random_netlist ~inputs:7 ~outputs:4 ~gates:50 seed in
      let back = Aig.to_netlist (Aig.of_netlist nl) in
      equivalent_on_random ~n:64 nl back)

let prop_aig_matches_simulation =
  qtest ~count:30 "AIG evaluation matches netlist simulation" seed_gen
    (fun seed ->
      let nl = random_netlist ~inputs:6 ~outputs:4 ~gates:40 seed in
      let g = Aig.of_netlist nl in
      let rng = Prng.create (seed + 5) in
      let ok = ref true in
      for _ = 1 to 32 do
        let inp = Prng.bool_array rng 6 in
        if eval_aig g inp <> Orap_sim.Sim.eval_bools nl inp then ok := false
      done;
      !ok)

let prop_refactor_preserves_function =
  qtest ~count:25 "refactor preserves function" seed_gen (fun seed ->
      let nl = random_netlist ~inputs:7 ~outputs:4 ~gates:60 seed in
      let g = Refactor.run ~cut_size:8 (Aig.of_netlist nl) in
      equivalent_on_random ~n:64 nl (Aig.to_netlist g))

let prop_balance_preserves_function =
  qtest ~count:25 "balance preserves function" seed_gen (fun seed ->
      let nl = random_netlist ~inputs:7 ~outputs:4 ~gates:60 seed in
      let g = Balance.run (Aig.of_netlist nl) in
      equivalent_on_random ~n:64 nl (Aig.to_netlist g))

let prop_pipeline_preserves_function =
  qtest ~count:15 "full abc pipeline preserves function" seed_gen (fun seed ->
      let nl = random_netlist ~inputs:8 ~outputs:5 ~gates:80 seed in
      let g = Abc.optimize nl in
      equivalent_on_random ~n:64 nl (Aig.to_netlist g))

let test_balance_reduces_chain_depth () =
  (* a linear AND chain of 8 inputs balances to depth 3 *)
  let nl = chain_circuit ~kind:Gate.And 8 in
  let g0 = Aig.of_netlist nl in
  check Alcotest.int "chain depth" 7 (Aig.depth g0);
  let g = Balance.run g0 in
  check Alcotest.int "balanced depth" 3 (Aig.depth g);
  check Alcotest.bool "still equivalent" true
    (equivalent_on_random nl (Aig.to_netlist g))

let test_refactor_compresses_redundancy () =
  (* (a & b) | (a & b) | (a & b) ... duplicated logic strashes/refactors *)
  let b = N.Builder.create () in
  let a = N.Builder.add_input b in
  let c = N.Builder.add_input b in
  let t1 = N.Builder.add_node b Gate.And [| a; c |] in
  let t2 = N.Builder.add_node b Gate.And [| a; c |] in
  let o = N.Builder.add_node b Gate.Or [| t1; t2 |] in
  N.Builder.mark_output b o;
  let nl = N.Builder.finish b in
  let g = Aig.of_netlist nl in
  (* strash alone dedups the two ANDs: x | x = x leaves one AND *)
  check Alcotest.int "strash dedup" 1 (Aig.num_live_ands g)

let test_overhead_zero_for_identical () =
  let nl = random_netlist ~inputs:8 ~outputs:5 ~gates:60 91 in
  let o = Abc.overhead ~original:nl ~protected_:nl () in
  check (Alcotest.float 1e-9) "area" 0.0 o.Abc.area_pct;
  check (Alcotest.float 1e-9) "delay" 0.0 o.Abc.delay_pct

let suite =
  ( "synth",
    [
      tc "truth var" `Quick test_truth_var;
      tc "truth var wide" `Quick test_truth_var_wide;
      tc "truth boolean ops" `Quick test_truth_ops;
      tc "truth cofactors" `Quick test_truth_cofactors;
      tc "truth cofactors wide" `Quick test_truth_cofactors_wide;
      prop_isop_covers_function;
      tc "isop constants" `Quick test_isop_constants;
      tc "isop cost" `Quick test_isop_cost;
      tc "aig strash rules" `Quick test_aig_strash_rules;
      prop_aig_roundtrip;
      prop_aig_matches_simulation;
      prop_refactor_preserves_function;
      prop_balance_preserves_function;
      prop_pipeline_preserves_function;
      tc "balance reduces chain depth" `Quick test_balance_reduces_chain_depth;
      tc "strash dedups redundancy" `Quick test_refactor_compresses_redundancy;
      tc "overhead of identical circuit is 0" `Quick test_overhead_zero_for_identical;
    ] )
