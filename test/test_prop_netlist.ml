(** Cross-layer properties: netlist IR, exporters, bit-parallel simulation.

    All equivalence claims are decided by [Orap_proptest.Equiv] (SAT miter
    or exhaustive simulation), and failures shrink to minimal [.bench]
    counterexamples via [Orap_proptest.Shrink]. *)

open Util
module Bench_format = Orap_netlist.Bench_format
module Verilog = Orap_netlist.Verilog
module Prop = Orap_proptest.Prop
module Gen = Orap_proptest.Gen
module Equiv = Orap_proptest.Equiv

(* P: every generated DAG (full vocabulary: Mux, Buf/Not, constants) is
   structurally valid and its levels bound its depth *)
let prop_generated_valid =
  Prop.netlist ~count:60 "generated netlists validate" (fun nl ->
      N.validate nl;
      let lev = N.levels nl in
      N.depth nl <= Array.fold_left max 0 lev)

(* P: .bench print/parse round-trip preserves the function (miter-checked;
   constants are re-encoded as XOR/XNOR of an input by the printer, so this
   is a semantic, not structural, identity) *)
let prop_bench_roundtrip =
  Prop.netlist ~count:40 "bench print/parse round-trip is equivalent"
    (fun nl ->
      let back = (Bench_format.parse (Bench_format.print nl)).Bench_format.netlist in
      Equiv.check ~method_:`Sat nl back = Equiv.Equivalent)

(* P: a second print of the re-parsed netlist is byte-identical — the
   printer is deterministic modulo parsing *)
let prop_bench_print_stable =
  Prop.netlist ~count:20 "bench printing is stable under re-parse" (fun nl ->
      let printed = Bench_format.print nl in
      let back = (Bench_format.parse printed).Bench_format.netlist in
      Bench_format.print back = Bench_format.print
        ((Bench_format.parse (Bench_format.print back)).Bench_format.netlist))

(* P: copy_into is the identity on function *)
let prop_copy_into_equivalent =
  Prop.netlist ~count:40 "copy_into preserves the function" (fun nl ->
      let b = N.Builder.create () in
      let map = N.copy_into b nl (Array.make (N.num_nodes nl) (-1)) in
      Array.iter (fun o -> N.Builder.mark_output b map.(o)) (N.outputs nl);
      Equiv.equivalent nl (N.Builder.finish b))

(* P: the 64-pattern word simulator agrees with single-pattern simulation
   on every lane (sim layer vs itself, different code paths) *)
let prop_word_sim_matches_bools =
  Prop.netlist_with_seed ~count:40 "eval_word lanes agree with eval_bools"
    (fun nl ~aux ->
      let rng = Prng.create aux in
      let ni = N.num_inputs nl in
      let words = Array.init ni (fun _ -> Prng.next64 rng) in
      let values = Sim.eval_word nl ~input_word:(fun i -> words.(i)) in
      let word_outs = Sim.output_words nl values in
      let ok = ref true in
      for lane = 0 to 7 do
        let inp =
          Array.init ni (fun i ->
              Int64.logand (Int64.shift_right_logical words.(i) lane) 1L <> 0L)
        in
        let bools = Sim.eval_bools nl inp in
        Array.iteri
          (fun j w ->
            let bit = Int64.logand (Int64.shift_right_logical w lane) 1L <> 0L in
            if bit <> bools.(j) then ok := false)
          word_outs
      done;
      !ok)

(* P: the Verilog writer is total and deterministic on the full vocabulary
   (including constants and muxes, which take the assign path) *)
let prop_verilog_deterministic =
  Prop.netlist ~count:30 "verilog export is total and deterministic"
    (fun nl ->
      let v1 = Verilog.of_netlist nl in
      let v2 = Verilog.of_netlist nl in
      v1 = v2 && contains v1 "module top(" && contains v1 "endmodule"
      && contains v1 (Printf.sprintf "assign po%d = " (N.num_outputs nl - 1)))

let suite =
  ( "prop_netlist",
    [
      prop_generated_valid;
      prop_bench_roundtrip;
      prop_bench_print_stable;
      prop_copy_into_equivalent;
      prop_word_sim_matches_bools;
      prop_verilog_deterministic;
    ] )
