open Util
module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Fault = Orap_faultsim.Fault
module Fsim = Orap_faultsim.Fsim
module Sim = Orap_sim.Sim
module Prng = Orap_sim.Prng

(* the forced-value reference simulation lives in Util.eval_with_fault *)

let test_collapsed_list_structure () =
  let nl = random_netlist ~inputs:6 ~outputs:4 ~gates:40 3 in
  let faults = Fault.collapsed_list nl in
  check Alcotest.bool "non-empty" true (Array.length faults > 0);
  check Alcotest.bool "fewer than uncollapsed" true
    (Array.length faults < Fault.total_uncollapsed nl);
  (* no duplicates *)
  let sorted = Array.copy faults in
  Array.sort Fault.compare sorted;
  let dups = ref 0 in
  for i = 1 to Array.length sorted - 1 do
    if Fault.compare sorted.(i) sorted.(i - 1) = 0 then incr dups
  done;
  check Alcotest.int "no duplicates" 0 !dups

let test_collapsing_rules () =
  (* AND gate fed by two fanout stems: branch s-a-0 is collapsed away,
     branch s-a-1 kept *)
  let b = N.Builder.create () in
  let a = N.Builder.add_input b in
  let c = N.Builder.add_input b in
  let g1 = N.Builder.add_node b Gate.And [| a; c |] in
  let g2 = N.Builder.add_node b Gate.Or [| a; c |] in
  N.Builder.mark_output b g1;
  N.Builder.mark_output b g2;
  let nl = N.Builder.finish b in
  let faults = Array.to_list (Fault.collapsed_list nl) in
  let has site stuck = List.mem { Fault.site; stuck } faults in
  check Alcotest.bool "AND branch sa1 kept" true (has (Fault.Input (2, 0)) true);
  check Alcotest.bool "AND branch sa0 collapsed" false (has (Fault.Input (2, 0)) false);
  check Alcotest.bool "OR branch sa0 kept" true (has (Fault.Input (3, 0)) false);
  check Alcotest.bool "OR branch sa1 collapsed" false (has (Fault.Input (3, 0)) true)

let test_single_fanout_branches_collapsed () =
  let b = N.Builder.create () in
  let a = N.Builder.add_input b in
  let c = N.Builder.add_input b in
  let g = N.Builder.add_node b Gate.Xor [| a; c |] in
  N.Builder.mark_output b g;
  let nl = N.Builder.finish b in
  let faults = Array.to_list (Fault.collapsed_list nl) in
  let branch = List.filter (fun f -> match f.Fault.site with Fault.Input _ -> true | Fault.Output _ -> false) faults in
  check Alcotest.int "no branch faults on single fanout" 0 (List.length branch)

let prop_detect_word_matches_reference =
  qtest ~count:40 "parallel fault sim agrees with reference" seed_gen
    (fun seed ->
      let nl = random_netlist ~inputs:6 ~outputs:4 ~gates:35 seed in
      let faults = Fault.collapsed_list nl in
      let t = Fsim.create nl in
      let rng = Prng.create (seed + 13) in
      let ni = N.num_inputs nl in
      let words = Array.init ni (fun _ -> Prng.next64 rng) in
      let good = Sim.eval_word nl ~input_word:(fun i -> words.(i)) in
      let ok = ref true in
      (* probe a subset of faults against a subset of the 64 patterns *)
      Array.iteri
        (fun fi fault ->
          if fi mod 3 = 0 then begin
            let mask = Fsim.detect_word t good fault in
            for bit = 0 to 7 do
              let inp =
                Array.init ni (fun i ->
                    Int64.logand (Int64.shift_right_logical words.(i) bit) 1L
                    <> 0L)
              in
              let faulty = eval_with_fault nl fault inp in
              let good_b = Sim.eval_bools nl inp in
              let expected = faulty <> good_b in
              let got = Int64.logand (Int64.shift_right_logical mask bit) 1L <> 0L in
              if expected <> got then ok := false
            done
          end)
        faults;
      !ok)

let test_random_simulate_drops () =
  let nl = random_netlist ~inputs:10 ~outputs:8 ~gates:120 21 in
  let faults = Fault.collapsed_list nl in
  let remaining = Array.make (Array.length faults) true in
  let stats = Fsim.random_simulate ~words:8 nl faults remaining in
  let undetected = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 remaining in
  check Alcotest.int "bookkeeping" (Array.length faults)
    (stats.Fsim.detected + undetected);
  check Alcotest.bool "most faults detected by random patterns" true
    (stats.Fsim.detected * 10 > Array.length faults * 7)

let test_simulate_pattern_consistency () =
  let nl = random_netlist ~inputs:8 ~outputs:6 ~gates:60 31 in
  let faults = Fault.collapsed_list nl in
  let t = Fsim.create nl in
  let remaining = Array.make (Array.length faults) true in
  let pattern = Array.make 8 true in
  let dropped = Fsim.simulate_pattern t pattern faults remaining in
  let undetected = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 remaining in
  check Alcotest.int "drop accounting" (Array.length faults) (dropped + undetected);
  (* second run of the same pattern drops nothing new *)
  check Alcotest.int "idempotent" 0 (Fsim.simulate_pattern t pattern faults remaining)

let suite =
  ( "faultsim",
    [
      tc "collapsed list structure" `Quick test_collapsed_list_structure;
      tc "gate-type collapsing rules" `Quick test_collapsing_rules;
      tc "single-fanout branch collapsing" `Quick test_single_fanout_branches_collapsed;
      prop_detect_word_matches_reference;
      tc "random simulate with dropping" `Quick test_random_simulate_drops;
      tc "simulate_pattern accounting" `Quick test_simulate_pattern_consistency;
    ] )
