(** Attack-layer properties: when an oracle-guided attack claims an exact
    key on an unlockable instance, that key must survive an independent
    SAT-miter equivalence check against the original circuit — the
    paper's own success criterion, applied to our implementations. *)

module Locked = Orap_locking.Locked
module Random_ll = Orap_locking.Random_ll
module Sarlock = Orap_locking.Sarlock
module Oracle = Orap_core.Oracle
module Budget = Orap_attacks.Budget
module Sat_attack = Orap_attacks.Sat_attack
module Double_dip = Orap_attacks.Double_dip
module Prop = Orap_proptest.Prop
module Gen = Orap_proptest.Gen
module Equiv = Orap_proptest.Equiv

let keyed (lk : Locked.t) key =
  let positions = Locked.key_input_positions lk in
  Equiv.with_fixed_inputs lk.Locked.netlist
    (Array.to_list (Array.mapi (fun j pos -> (pos, key.(j))) positions))

let benchgen = Gen.benchgen_netlist ~inputs:8 ~outputs:4 ~gates:40

let with_seed g = Gen.pair g (Gen.int_range 0 0x3FFFFFFF)

(* P: the SAT attack against a functional oracle on random locking always
   terminates Exact, and the recovered key is miter-equivalent — even when
   it differs bitwise from the inserted key *)
let prop_sat_attack_exact_key_is_equivalent =
  Prop.to_alcotest ~count:12
    ~name:"sat attack key passes the miter check"
    ~gen:(with_seed benchgen) (fun (nl, seed) ->
      let lk = Random_ll.lock ~seed nl ~key_size:6 in
      let r = Sat_attack.run lk (Oracle.functional lk) in
      match r.Sat_attack.outcome with
      | Budget.Exact key ->
        Equiv.check ~method_:`Sat nl (keyed lk key) = Equiv.Equivalent
      | _ -> false)

(* P: Double DIP terminates on SARLock-locked circuits (the scheme it was
   designed to defeat) with a miter-equivalent key *)
let prop_double_dip_defeats_sarlock =
  Prop.to_alcotest ~count:8
    ~name:"double dip key on sarlock passes the miter check"
    ~gen:(with_seed benchgen) (fun (nl, seed) ->
      let lk = Sarlock.lock ~seed nl ~key_size:4 in
      let r = Double_dip.run ~max_iterations:512 lk (Oracle.functional lk) in
      match r.Double_dip.outcome with
      | Budget.Exact key | Budget.Approximate (key, _) ->
        Equiv.check ~method_:`Sat nl (keyed lk key) = Equiv.Equivalent
      | _ -> false)

(* P: a claimed Exact proof is sound relative to the oracle — replaying
   every recorded query against the recovered key shows no mismatch (here
   via fresh random queries, the attack's own validation path) *)
let prop_sat_attack_validation_is_clean =
  Prop.to_alcotest ~count:8
    ~name:"sat attack self-validation never demotes a clean oracle run"
    ~gen:(with_seed benchgen) (fun (nl, seed) ->
      let lk = Random_ll.lock ~seed nl ~key_size:5 in
      let r = Sat_attack.run ~validate:64 lk (Oracle.functional lk) in
      match r.Sat_attack.outcome with
      | Budget.Exact _ -> true
      | _ -> false)

let suite =
  ( "prop_attacks",
    [
      prop_sat_attack_exact_key_is_equivalent;
      prop_double_dip_defeats_sarlock;
      prop_sat_attack_validation_is_clean;
    ] )
