open Util
module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Oracle = Orap_core.Oracle
module Sat_attack = Orap_attacks.Sat_attack
module Appsat = Orap_attacks.Appsat
module Double_dip = Orap_attacks.Double_dip
module Hill_climb = Orap_attacks.Hill_climb
module Key_sensitization = Orap_attacks.Key_sensitization
module Evaluate = Orap_attacks.Evaluate
module Budget = Orap_attacks.Budget

let base = random_netlist ~inputs:20 ~outputs:14 ~gates:180 91

let orap_oracle lk =
  let design =
    Orap.protect
      ~config:{ (Orap.default_config ~kind:Orap.Basic ~num_ffs:7 ()) with Orap.seed = 4 }
      lk
  in
  let chip = Chip.create design in
  Chip.unlock chip;
  Oracle.scan_chip chip

let test_sat_beats_random_ll () =
  let lk = Orap_locking.Random_ll.lock base ~key_size:14 in
  let r = Sat_attack.run lk (Oracle.functional lk) in
  let v = Evaluate.of_outcome lk r.Sat_attack.outcome in
  check Alcotest.bool "equivalent key" true v.Evaluate.equivalent;
  check Alcotest.bool "proved" true
    (match r.Sat_attack.outcome with Budget.Exact _ -> true | _ -> false);
  check Alcotest.bool "few DIPs" true (r.Sat_attack.iterations < 40)

let test_sat_beats_weighted () =
  let lk = Orap_locking.Weighted.lock base ~key_size:15 ~ctrl_inputs:3 in
  let r = Sat_attack.run lk (Oracle.functional lk) in
  let v = Evaluate.of_outcome lk r.Sat_attack.outcome in
  check Alcotest.bool "equivalent key" true v.Evaluate.equivalent

let test_sat_fails_behind_orap () =
  let lk = Orap_locking.Weighted.lock base ~key_size:15 ~ctrl_inputs:3 in
  let r = Sat_attack.run lk (orap_oracle lk) in
  let v = Evaluate.of_outcome lk r.Sat_attack.outcome in
  check Alcotest.bool "no functional key" false v.Evaluate.equivalent

let test_sat_query_accounting () =
  let lk = Orap_locking.Random_ll.lock base ~key_size:10 in
  let oracle = Oracle.functional lk in
  let r = Sat_attack.run lk oracle in
  check Alcotest.int "one query per DIP" r.Sat_attack.iterations r.Sat_attack.queries

let test_shared_oracle_query_delta () =
  (* regression: [queries] used to report the oracle's LIFETIME counter, so
     the second attack against a shared oracle inherited the first one's
     queries.  Both runs are identical, so both must report the same
     per-run delta — and the oracle's lifetime total must be their sum. *)
  let lk = Orap_locking.Random_ll.lock base ~key_size:10 in
  let oracle = Oracle.functional lk in
  let r1 = Sat_attack.run lk oracle in
  let after_first = Oracle.num_queries oracle in
  let r2 = Sat_attack.run lk oracle in
  check Alcotest.int "identical runs report identical queries"
    r1.Sat_attack.queries r2.Sat_attack.queries;
  check Alcotest.int "second run reports its own delta"
    (Oracle.num_queries oracle - after_first)
    r2.Sat_attack.queries;
  check Alcotest.int "lifetime total = sum of deltas"
    (Oracle.num_queries oracle)
    (r1.Sat_attack.queries + r2.Sat_attack.queries)

let test_sat_iteration_cap () =
  let lk = Orap_locking.Sarlock.lock base ~key_size:14 in
  let r = Sat_attack.run ~max_iterations:20 lk (Oracle.functional lk) in
  check Alcotest.bool "cap hit" true
    (match r.Sat_attack.outcome with
    | Budget.Exhausted (Budget.Iterations 20) -> true
    | _ -> false);
  check Alcotest.int "stopped at cap" 20 r.Sat_attack.iterations

let test_sarlock_one_key_per_dip () =
  (* SARLock's whole point: the SAT attack cannot finish in << 2^k DIPs *)
  let lk = Orap_locking.Sarlock.lock base ~key_size:8 in
  let r = Sat_attack.run ~max_iterations:1000 lk (Oracle.functional lk) in
  check Alcotest.bool "needs nearly 2^8 DIPs" true (r.Sat_attack.iterations > 100);
  let v = Evaluate.of_outcome lk r.Sat_attack.outcome in
  check Alcotest.bool "eventually equivalent" true v.Evaluate.equivalent

let test_appsat_approximates_sarlock () =
  (* AppSAT settles early with an approximate (low-error) key *)
  let lk = Orap_locking.Sarlock.lock base ~key_size:14 in
  let r =
    Appsat.run ~max_iterations:64 ~probe_every:4 ~error_threshold:0.05 lk
      (Oracle.functional lk)
  in
  (match Budget.recovered r.Appsat.outcome with
  | None -> Alcotest.fail "AppSAT should settle on an approximate key"
  | Some key ->
    let hd = Locked.hamming_vs_original lk key in
    check Alcotest.bool "low-error key" true (hd < 5.0));
  check Alcotest.bool "settled before cap" true (r.Appsat.iterations < 64)

let test_appsat_exact_on_weak_locking () =
  let lk = Orap_locking.Random_ll.lock base ~key_size:12 in
  let r = Appsat.run lk (Oracle.functional lk) in
  let v = Evaluate.of_outcome lk r.Appsat.outcome in
  check Alcotest.bool "equivalent" true v.Evaluate.equivalent

let test_double_dip () =
  let lk = Orap_locking.Weighted.lock base ~key_size:12 ~ctrl_inputs:3 in
  let r = Double_dip.run lk (Oracle.functional lk) in
  let v = Evaluate.of_outcome lk r.Double_dip.outcome in
  check Alcotest.bool "equivalent" true v.Evaluate.equivalent;
  (* and fails behind OraP *)
  let r2 = Double_dip.run lk (orap_oracle lk) in
  let v2 = Evaluate.of_outcome lk r2.Double_dip.outcome in
  check Alcotest.bool "fails behind OraP" false v2.Evaluate.equivalent

let test_hill_climb_recovers_small_random_key () =
  (* independent key bits: greedy descent works *)
  let lk = Orap_locking.Random_ll.lock base ~key_size:8 in
  let r = Hill_climb.run ~sample:64 ~restarts:5 lk (Oracle.functional lk) in
  let v = Evaluate.of_outcome lk r.Hill_climb.outcome in
  check Alcotest.bool "recovered" true v.Evaluate.equivalent;
  check Alcotest.int "zero residual mismatches" 0 r.Hill_climb.mismatches

let test_hill_climb_fails_behind_orap () =
  let lk = Orap_locking.Random_ll.lock base ~key_size:8 in
  let r = Hill_climb.run ~sample:64 ~restarts:5 lk (orap_oracle lk) in
  let v = Evaluate.of_outcome lk r.Hill_climb.outcome in
  check Alcotest.bool "not equivalent" false v.Evaluate.equivalent

let test_hill_climb_on_responses () =
  let lk = Orap_locking.Random_ll.lock base ~key_size:8 in
  (* unlocked responses recover; locked responses do not *)
  let rng = Orap_sim.Prng.create 3 in
  let good =
    List.init 64 (fun _ ->
        let x = Orap_sim.Prng.bool_array rng lk.Locked.num_regular_inputs in
        (x, Locked.eval lk ~key:lk.Locked.correct_key ~inputs:x))
  in
  let r = Hill_climb.run_on_responses ~restarts:5 lk good in
  check Alcotest.bool "recovers from unlocked responses" true
    (Evaluate.of_outcome lk r.Hill_climb.outcome).Evaluate.equivalent;
  let zero_key = Array.make 8 false in
  let locked_pairs =
    List.map (fun (x, _) -> (x, Locked.eval lk ~key:zero_key ~inputs:x)) good
  in
  let r2 = Hill_climb.run_on_responses ~restarts:5 lk locked_pairs in
  (* converges to the zero key's behaviour, not to the secret *)
  check Alcotest.bool "locked responses mislead" false
    (Evaluate.of_outcome lk r2.Hill_climb.outcome).Evaluate.equivalent

let test_key_sensitization_counts () =
  let lk = Orap_locking.Random_ll.lock base ~key_size:8 in
  let r = Key_sensitization.run lk (Oracle.functional lk) in
  check Alcotest.bool "most bits sensitizable" true
    (r.Key_sensitization.sensitized_bits >= 6);
  check Alcotest.int "one query per sensitized bit"
    r.Key_sensitization.sensitized_bits r.Key_sensitization.queries

let test_evaluate_verdicts () =
  let lk = Orap_locking.Random_ll.lock base ~key_size:8 in
  let v = Evaluate.of_key lk (Some lk.Locked.correct_key) in
  check Alcotest.bool "exact" true (v.Evaluate.exact && v.Evaluate.equivalent);
  let v2 = Evaluate.of_key lk None in
  check Alcotest.bool "none" false v2.Evaluate.recovered;
  check Alcotest.bool "string form" true
    (String.length (Evaluate.to_string v) > 0)

let suite =
  ( "attacks",
    [
      tc "SAT beats random locking" `Quick test_sat_beats_random_ll;
      tc "SAT beats weighted locking" `Quick test_sat_beats_weighted;
      tc "SAT fails behind OraP" `Quick test_sat_fails_behind_orap;
      tc "SAT query accounting" `Quick test_sat_query_accounting;
      tc "shared oracle reports per-run deltas" `Quick
        test_shared_oracle_query_delta;
      tc "SAT iteration cap" `Quick test_sat_iteration_cap;
      tc "SARLock resists (slowly falls)" `Slow test_sarlock_one_key_per_dip;
      tc "AppSAT approximates SARLock" `Quick test_appsat_approximates_sarlock;
      tc "AppSAT exact on weak locking" `Quick test_appsat_exact_on_weak_locking;
      tc "Double DIP" `Quick test_double_dip;
      tc "hill climbing recovers small keys" `Quick test_hill_climb_recovers_small_random_key;
      tc "hill climbing fails behind OraP" `Quick test_hill_climb_fails_behind_orap;
      tc "hill climbing on test responses" `Quick test_hill_climb_on_responses;
      tc "key sensitization" `Quick test_key_sensitization_counts;
      tc "verdict evaluation" `Quick test_evaluate_verdicts;
    ] )
