(** Verilog export and ATPG test compaction. *)

open Util
module N = Orap_netlist.Netlist
module Verilog = Orap_netlist.Verilog
module Atpg = Orap_atpg.Atpg
module Fault = Orap_faultsim.Fault
module Fsim = Orap_faultsim.Fsim

let test_verilog_structure () =
  let nl = random_netlist ~inputs:6 ~outputs:4 ~gates:30 7 in
  let v = Verilog.of_netlist ~module_name:"dut" nl in
  check Alcotest.bool "module header" true (contains v "module dut(");
  check Alcotest.bool "endmodule" true (contains v "endmodule");
  check Alcotest.bool "inputs declared" true (contains v "input pi0;");
  check Alcotest.bool "outputs assigned" true (contains v "assign po0 = ");
  (* one primitive instance per logic gate (excluding Mux/consts) *)
  let gates = ref 0 in
  for i = 0 to N.num_nodes nl - 1 do
    match N.kind nl i with
    | Orap_netlist.Gate.Input | Orap_netlist.Gate.Const0
    | Orap_netlist.Gate.Const1 | Orap_netlist.Gate.Mux ->
      ()
    | _ -> incr gates
  done;
  let count_instances =
    List.length
      (List.filter
         (fun line -> contains line "g" && contains line "(")
         (String.split_on_char '\n' v))
  in
  check Alcotest.bool "instances emitted" true (count_instances >= !gates)

(* exact expected emission for a fixed small circuit, so any formatting or
   ordering change in the writer is flagged deliberately *)
let test_verilog_golden () =
  let nl = full_adder () in
  let expected =
    "module fa(a, b, cin, po0, po1);\n\
    \  input a;\n\
    \  input b;\n\
    \  input cin;\n\
    \  output po0;\n\
    \  output po1;\n\
    \  wire s1;\n\
    \  wire sum;\n\
    \  wire n5;\n\
    \  wire n6;\n\
    \  wire cout;\n\
    \  xor g1(s1, a, b);\n\
    \  xor g2(sum, s1, cin);\n\
    \  and g3(n5, a, b);\n\
    \  and g4(n6, s1, cin);\n\
    \  or g5(cout, n5, n6);\n\
    \  assign po0 = sum;\n\
    \  assign po1 = cout;\n\
     endmodule\n"
  in
  check Alcotest.string "verilog golden" expected
    (Verilog.of_netlist ~module_name:"fa" nl)

let test_dot_golden () =
  let nl = full_adder () in
  let expected =
    "digraph fa {\n\
    \  rankdir=LR;\n\
    \  n0 [label=\"a\\nINPUT\" shape=invtriangle];\n\
    \  n1 [label=\"b\\nINPUT\" shape=invtriangle];\n\
    \  n2 [label=\"cin\\nINPUT\" shape=invtriangle];\n\
    \  n3 [label=\"s1\\nXOR\" shape=box];\n\
    \  n0 -> n3;\n\
    \  n1 -> n3;\n\
    \  n4 [label=\"sum\\nXOR\" shape=box];\n\
    \  n3 -> n4;\n\
    \  n2 -> n4;\n\
    \  n5 [label=\"n5\\nAND\" shape=box];\n\
    \  n0 -> n5;\n\
    \  n1 -> n5;\n\
    \  n6 [label=\"n6\\nAND\" shape=box];\n\
    \  n3 -> n6;\n\
    \  n2 -> n6;\n\
    \  n7 [label=\"cout\\nOR\" shape=box];\n\
    \  n5 -> n7;\n\
    \  n6 -> n7;\n\
    \  po0 [label=\"PO0\" shape=triangle];\n\
    \  n4 -> po0;\n\
    \  po1 [label=\"PO1\" shape=triangle];\n\
    \  n7 -> po1;\n\
     }\n"
  in
  check Alcotest.string "dot golden" expected
    (Orap_netlist.Dot.of_netlist ~graph_name:"fa" nl)

(* every node and every fanin edge of the source netlist must appear in the
   dot text, whatever the circuit *)
let test_dot_covers_structure () =
  let nl = random_netlist ~inputs:5 ~outputs:3 ~gates:25 11 in
  let dot = Orap_netlist.Dot.of_netlist nl in
  for i = 0 to N.num_nodes nl - 1 do
    check Alcotest.bool "node present" true
      (contains dot (Printf.sprintf "n%d [label=" i));
    Array.iter
      (fun f ->
        check Alcotest.bool "edge present" true
          (contains dot (Printf.sprintf "n%d -> n%d;" f i)))
      (N.fanins nl i)
  done

let test_verilog_deterministic () =
  let nl = random_netlist ~inputs:6 ~outputs:4 ~gates:30 7 in
  check Alcotest.bool "stable output" true
    (Verilog.of_netlist nl = Verilog.of_netlist nl)

let test_compaction_preserves_coverage () =
  let nl = random_netlist ~inputs:14 ~outputs:10 ~gates:160 9 in
  (* force deterministic phase to generate many patterns *)
  let r = Atpg.run ~random_words:1 ~backtrack_limit:128 nl in
  let original = r.Atpg.patterns in
  let compacted = Atpg.compact_patterns nl original in
  check Alcotest.bool "not longer" true
    (List.length compacted <= List.length original);
  (* coverage of the compacted set equals the original set's *)
  let covered patterns =
    let faults = Fault.collapsed_list nl in
    let remaining = Array.make (Array.length faults) true in
    let fsim = Fsim.create nl in
    List.iter
      (fun p -> ignore (Fsim.simulate_pattern fsim p faults remaining))
      patterns;
    Array.fold_left (fun acc r -> if r then acc else acc + 1) 0 remaining
  in
  check Alcotest.int "same deterministic coverage" (covered original)
    (covered compacted)

let suite =
  ( "tools",
    [
      tc "verilog structure" `Quick test_verilog_structure;
      tc "verilog golden" `Quick test_verilog_golden;
      tc "dot golden" `Quick test_dot_golden;
      tc "dot covers structure" `Quick test_dot_covers_structure;
      tc "verilog deterministic" `Quick test_verilog_deterministic;
      tc "compaction preserves coverage" `Quick test_compaction_preserves_coverage;
    ] )
