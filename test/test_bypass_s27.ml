(** Bypass attack [12] and the real ISCAS s27 benchmark end to end. *)

open Util
module N = Orap_netlist.Netlist
module Bench_format = Orap_netlist.Bench_format
module Locked = Orap_locking.Locked
module Oracle = Orap_core.Oracle
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Bypass = Orap_attacks.Bypass
module Budget = Orap_attacks.Budget

let base = random_netlist ~inputs:18 ~outputs:12 ~gates:150 113

let test_bypass_beats_sarlock () =
  (* comparator spans all 18 inputs so the trap inputs are single patterns *)
  let lk = Orap_locking.Sarlock.lock base ~key_size:18 in
  let r = Bypass.run lk (Oracle.functional lk) in
  check Alcotest.bool "did not give up" true
    (Budget.succeeded r.Bypass.outcome);
  check Alcotest.bool "few patches" true (List.length r.Bypass.patches <= 2);
  match Budget.recovered r.Bypass.outcome with
  | None -> Alcotest.fail "expected a patched netlist"
  | Some patched ->
    (* the patched circuit equals the original on random patterns *)
    check Alcotest.bool "function restored" true
      (equivalent_on_random base patched);
    check Alcotest.bool "modest overhead" true
      (Bypass.patch_overhead lk r < 4 * N.gate_count base)

let test_bypass_collapses_on_weighted () =
  (* high-corruption locking defeats bypass in one of two ways: the
     disagreement enumeration blows the budget, or (when the two wrong keys
     happen to be equivalent — weighted locking's wrong keys form huge
     equivalence classes) the "patched" circuit is simply wrong *)
  let lk = Orap_locking.Weighted.lock base ~key_size:12 ~ctrl_inputs:3 in
  let r = Bypass.run ~max_patches:16 lk (Oracle.functional lk) in
  match Budget.recovered r.Bypass.outcome with
  | None ->
    check Alcotest.bool "budget exceeded" true
      (match r.Bypass.outcome with Budget.Exhausted _ -> true | _ -> false)
  | Some patched ->
    check Alcotest.bool "patched circuit is not the original" false
      (equivalent_on_random base patched)

let test_bypass_vs_orap_is_useless () =
  (* behind OraP the oracle answers locked: the patched circuit (if any)
     reproduces the locked function, not the original *)
  let lk = Orap_locking.Sarlock.lock base ~key_size:10 in
  let design =
    Orap.protect ~config:(Orap.default_config ~kind:Orap.Basic ~num_ffs:6 ()) lk
  in
  let chip = Chip.create design in
  Chip.unlock chip;
  let r = Bypass.run lk (Oracle.scan_chip chip) in
  match Budget.recovered r.Bypass.outcome with
  | None -> () (* gave up: also a failure for the attacker *)
  | Some patched ->
    check Alcotest.bool "not the original function" false
      (equivalent_on_random base patched)

(* --- s27 --- *)

let s27 () = Bench_format.parse_file "../../../data/s27.bench"

let test_s27_parses () =
  let src = s27 () in
  let nl = src.Bench_format.netlist in
  check Alcotest.int "4 PIs + 3 FF outputs" 7 (N.num_inputs nl);
  check Alcotest.int "1 PO + 3 FF inputs" 4 (N.num_outputs nl);
  check Alcotest.int "3 flip-flops" 3 (List.length src.Bench_format.flip_flops);
  check Alcotest.int "8 gates w/o inverters" 8 (N.gate_count nl);
  N.validate nl

let test_s27_end_to_end () =
  let src = s27 () in
  let nl = src.Bench_format.netlist in
  (* tiny circuit, tiny key: lock, protect, unlock, verify oracle denial *)
  let lk = Orap_locking.Random_ll.lock nl ~key_size:4 in
  let design =
    Orap.protect
      ~config:{ (Orap.default_config ~kind:Orap.Basic ~num_ffs:3 ()) with Orap.seed = 2 }
      lk
  in
  let chip = Chip.create design in
  Chip.unlock chip;
  check Alcotest.bool "unlocks" true
    (Chip.key_register chip = lk.Locked.correct_key);
  (* exhaustive check: scanned responses never all match on every input *)
  let oracle = Oracle.scan_chip chip in
  let reference = Oracle.functional lk in
  let width = Orap.num_ext_inputs design + Orap.num_ffs design in
  let corrupted = ref 0 in
  for m = 0 to (1 lsl width) - 1 do
    let x = Array.init width (fun i -> (m lsr i) land 1 = 1) in
    if Oracle.query oracle x <> Oracle.query reference x then incr corrupted
  done;
  check Alcotest.bool "locked responses exist" true (!corrupted > 0)

let test_s27_atpg_full_coverage () =
  let nl = (s27 ()).Bench_format.netlist in
  let r = Orap_atpg.Atpg.run ~backtrack_limit:1000 nl in
  check Alcotest.int "no aborts on s27" 0 r.Orap_atpg.Atpg.aborted;
  check Alcotest.bool "high coverage" true (Orap_atpg.Atpg.coverage r > 95.0)

let suite =
  ( "bypass+s27",
    [
      tc "bypass beats SARLock" `Quick test_bypass_beats_sarlock;
      tc "bypass collapses on weighted locking" `Quick test_bypass_collapses_on_weighted;
      tc "bypass useless behind OraP" `Quick test_bypass_vs_orap_is_useless;
      tc "s27 parses" `Quick test_s27_parses;
      tc "s27 lock/protect/deny end to end" `Quick test_s27_end_to_end;
      tc "s27 full ATPG" `Quick test_s27_atpg_full_coverage;
    ] )
