(** Fault-injected oracles and resource-budgeted attacks: the faulty
    oracle wrappers replay deterministically under a fixed seed, the
    majority-vote combinator repairs flip noise, and attacks report
    structured outcomes instead of hanging or raising on imperfect
    oracles. *)

open Util
module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Oracle = Orap_core.Oracle
module Faulty = Orap_core.Faulty_oracle
module Budget = Orap_attacks.Budget
module Sat_attack = Orap_attacks.Sat_attack
module Evaluate = Orap_attacks.Evaluate
module Prng = Orap_sim.Prng

let base = random_netlist ~inputs:16 ~outputs:12 ~gates:140 17

let lk = Orap_locking.Random_ll.lock base ~key_size:10

let width = lk.Locked.num_regular_inputs

let inputs_of rng = Prng.bool_array rng width

(* --- determinism / zero-noise identity --- *)

let test_zero_noise_is_identity () =
  let clean = Oracle.functional lk in
  let noisy = Faulty.bit_flip ~seed:5 ~p:0.0 (Oracle.functional lk) in
  let rng = Prng.create 11 in
  for _ = 1 to 200 do
    let x = inputs_of rng in
    check Alcotest.bool "bit-identical at p=0" true
      (Oracle.query clean x = Oracle.query noisy x)
  done

let test_noise_is_seed_deterministic () =
  let run seed =
    let o = Faulty.bit_flip ~seed ~p:0.3 (Oracle.functional lk) in
    let rng = Prng.create 23 in
    List.init 100 (fun _ -> Oracle.query o (inputs_of rng))
  in
  check Alcotest.bool "same seed replays bit-identically" true
    (run 7 = run 7);
  check Alcotest.bool "different seed differs" false (run 7 = run 8)

let test_noise_corrupts () =
  let clean = Oracle.functional lk in
  let noisy = Faulty.bit_flip ~seed:5 ~p:1.0 (Oracle.functional lk) in
  let rng = Prng.create 31 in
  let diffs = ref 0 in
  for _ = 1 to 100 do
    let x = inputs_of rng in
    if Oracle.query clean x <> Oracle.query noisy x then incr diffs
  done;
  (* p=1.0 flips exactly one output bit of every response *)
  check Alcotest.int "every response corrupted at p=1" 100 !diffs

(* --- majority vote repairs flip noise --- *)

let test_retry_recovers_under_noise () =
  (* 10% per-query noise corrupts one bit; with 5 votes per bit the
     majority is wrong only if >=3 votes flip that same bit — vanishingly
     unlikely, so all 200 repaired responses must be clean *)
  let clean = Oracle.functional lk in
  let repaired =
    Faulty.retry ~votes:5 (Faulty.bit_flip ~seed:3 ~p:0.10 (Oracle.functional lk))
  in
  let rng = Prng.create 47 in
  let wrong = ref 0 in
  for _ = 1 to 200 do
    let x = inputs_of rng in
    if Oracle.query clean x <> Oracle.query repaired x then incr wrong
  done;
  check Alcotest.int "majority vote repairs 10% flip noise" 0 !wrong

let test_retry_burns_budget () =
  (* votes are real queries: retry over a 10-query budget refuses after
     3 repaired queries, not 10 *)
  let o =
    Faulty.retry ~votes:3
      (Faulty.query_budget ~limit:10 (Oracle.functional lk))
  in
  let rng = Prng.create 3 in
  ignore (Oracle.query o (inputs_of rng));
  ignore (Oracle.query o (inputs_of rng));
  ignore (Oracle.query o (inputs_of rng));
  check Alcotest.bool "4th repaired query refuses" true
    (match Oracle.query o (inputs_of rng) with
    | _ -> false
    | exception Faulty.Refused _ -> true)

(* --- stuck-at and intermittent wrappers --- *)

let test_stuck_at () =
  let o = Faulty.stuck_at ~cells:[ (0, true); (3, false) ] (Oracle.functional lk) in
  let rng = Prng.create 59 in
  for _ = 1 to 50 do
    let y = Oracle.query o (inputs_of rng) in
    check Alcotest.bool "cell 0 stuck at 1" true y.(0);
    check Alcotest.bool "cell 3 stuck at 0" false y.(3)
  done

let test_intermittent_lockdown () =
  (* the "locked" side answers under a wrong key (the cleared register) *)
  let wrong_key = Array.map not lk.Locked.correct_key in
  let locked_o = Oracle.with_key lk wrong_key in
  let rng = Prng.create 61 in
  (* rate 1.0: every query answers from the locked circuit *)
  let o = Faulty.intermittent ~seed:2 ~rate:1.0 ~locked:locked_o
      (Oracle.functional lk) in
  let reference = Oracle.with_key lk wrong_key in
  let all_locked = ref true in
  for _ = 1 to 50 do
    let x = inputs_of rng in
    if Oracle.query o x <> Oracle.query reference x then all_locked := false
  done;
  check Alcotest.bool "rate 1.0 always answers locked" true !all_locked;
  (* rate 0.0: the wrapper never intervenes *)
  let o0 = Faulty.intermittent ~seed:2 ~rate:0.0 ~locked:locked_o
      (Oracle.functional lk) in
  let unlocked = Oracle.functional lk in
  let clean = ref true in
  for _ = 1 to 50 do
    let x = inputs_of rng in
    if Oracle.query o0 x <> Oracle.query unlocked x then clean := false
  done;
  check Alcotest.bool "rate 0.0 never intervenes" true !clean

(* --- query budget and latency --- *)

let test_query_budget_exhausts () =
  let o = Faulty.query_budget ~limit:5 (Oracle.functional lk) in
  let rng = Prng.create 71 in
  for _ = 1 to 5 do
    ignore (Oracle.query o (inputs_of rng))
  done;
  check Alcotest.bool "6th query refused" true
    (match Oracle.query o (inputs_of rng) with
    | _ -> false
    | exception Faulty.Refused _ -> true)

let test_latency_meter () =
  let o, meter = Faulty.with_latency ~cost_s:0.5 (Oracle.functional lk) in
  let rng = Prng.create 73 in
  for _ = 1 to 4 do
    ignore (Oracle.query o (inputs_of rng))
  done;
  check Alcotest.int "4 timed queries" 4 meter.Faulty.timed_queries;
  check Alcotest.bool "modelled cost accumulates" true
    (meter.Faulty.total_s >= 2.0);
  check Alcotest.bool "mean includes modelled cost" true
    (Faulty.mean_latency_s meter >= 0.5)

(* --- width validation in the oracle constructors --- *)

let test_width_validation () =
  let bad = Array.make (width + 1) false in
  let f = Oracle.functional lk in
  check Alcotest.bool "functional rejects wrong width" true
    (match Oracle.query f bad with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let wk = Oracle.with_key lk lk.Locked.correct_key in
  check Alcotest.bool "with_key rejects wrong width" true
    (match Oracle.query wk bad with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let design =
    Orap.protect ~config:(Orap.default_config ~kind:Orap.Basic ~num_ffs:6 ()) lk
  in
  let chip = Chip.create design in
  Chip.unlock chip;
  let sc = Oracle.scan_chip chip in
  let bad_scan =
    Array.make (Orap.num_ext_inputs design + Orap.num_ffs design + 2) false
  in
  check Alcotest.bool "scan_chip rejects wrong width" true
    (match Oracle.query sc bad_scan with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- attacks return structured outcomes, never raise or hang --- *)

let test_sat_attack_oracle_refused () =
  (* SARLock needs ~2^k DIPs, so a 3-query budget dies mid-attack: the
     attack must report the refusal, not raise *)
  let lk_hard = Orap_locking.Sarlock.lock base ~key_size:10 in
  let o = Faulty.query_budget ~limit:3 (Oracle.functional lk_hard) in
  let r = Sat_attack.run lk_hard o in
  check Alcotest.bool "structured refusal" true
    (match r.Sat_attack.outcome with
    | Budget.Oracle_refused (Budget.Refusal _) -> true
    | _ -> false);
  (* the refused call itself is the 4th *)
  check Alcotest.bool "queries capped" true (r.Sat_attack.queries <= 4)

let test_sat_attack_wall_clock_exhausts () =
  (* a zero-second deadline trips before the first iteration *)
  let budget = Budget.make ~wall_clock_s:0.0 () in
  let r = Sat_attack.run ~budget lk (Oracle.functional lk) in
  check Alcotest.bool "wall-clock exhaustion" true
    (match r.Sat_attack.outcome with
    | Budget.Exhausted (Budget.Wall_clock _) -> true
    | _ -> false)

let test_sat_attack_conflict_budget_exhausts () =
  (* a 1-conflict budget cannot finish a real attack *)
  let budget = Budget.make ~max_conflicts:1 () in
  let lk2 = Orap_locking.Weighted.lock base ~key_size:12 ~ctrl_inputs:3 in
  let r = Sat_attack.run ~budget lk2 (Oracle.functional lk2) in
  check Alcotest.bool "conflict exhaustion or very early exact" true
    (match r.Sat_attack.outcome with
    | Budget.Exhausted (Budget.Conflicts _) -> true
    | Budget.Exact _ -> true (* trivially easy instance: no conflicts needed *)
    | _ -> false)

let test_sat_attack_noisy_oracle_terminates () =
  (* heavy noise makes oracle answers inconsistent with every key; the
     attack must detect that (Unsat on both miter sides) or hit a budget,
     never loop forever or raise *)
  let o = Faulty.bit_flip ~seed:13 ~p:1.0 (Oracle.functional lk) in
  let budget = Budget.make ~max_iterations:64 ~wall_clock_s:10.0 () in
  let r = Sat_attack.run ~budget lk o in
  check Alcotest.bool "noisy oracle yields a failure outcome" true
    (match r.Sat_attack.outcome with
    | Budget.Exhausted _ | Budget.Oracle_refused _ -> true
    | Budget.Exact _ | Budget.Approximate _ -> false)

let test_sat_attack_vs_orap_not_exact () =
  (* acceptance: against the OraP scan oracle the SAT attack terminates
     within budget with a non-Exact outcome (or an un-equivalent key) *)
  let design =
    Orap.protect
      ~config:
        { (Orap.default_config ~kind:Orap.Basic ~num_ffs:6 ()) with Orap.seed = 9 }
      lk
  in
  let chip = Chip.create design in
  Chip.unlock chip;
  let budget = Budget.make ~max_iterations:128 ~wall_clock_s:20.0 () in
  let r = Sat_attack.run ~budget lk (Oracle.scan_chip chip) in
  let ok =
    match r.Sat_attack.outcome with
    | Budget.Exhausted _ | Budget.Oracle_refused _ -> true
    | Budget.Exact _ | Budget.Approximate _ ->
      (* if it "recovered" something, it must not be the real function *)
      not (Evaluate.of_outcome lk r.Sat_attack.outcome).Evaluate.equivalent
  in
  check Alcotest.bool "OraP denies exact recovery within budget" true ok

let suite =
  ( "faulty-oracle",
    [
      tc "zero noise is the identity" `Quick test_zero_noise_is_identity;
      tc "noise replays per seed" `Quick test_noise_is_seed_deterministic;
      tc "p=1 corrupts every response" `Quick test_noise_corrupts;
      tc "majority vote repairs noise" `Quick test_retry_recovers_under_noise;
      tc "votes consume query budget" `Quick test_retry_burns_budget;
      tc "stuck-at scan cells" `Quick test_stuck_at;
      tc "intermittent lockdown" `Quick test_intermittent_lockdown;
      tc "query budget exhausts" `Quick test_query_budget_exhausts;
      tc "latency meter" `Quick test_latency_meter;
      tc "oracle width validation" `Quick test_width_validation;
      tc "SAT attack reports refusal" `Quick test_sat_attack_oracle_refused;
      tc "SAT attack honours deadline" `Quick test_sat_attack_wall_clock_exhausts;
      tc "SAT attack honours conflict budget" `Quick
        test_sat_attack_conflict_budget_exhausts;
      tc "SAT attack terminates on noise" `Quick
        test_sat_attack_noisy_oracle_terminates;
      tc "SAT attack non-exact behind OraP" `Quick
        test_sat_attack_vs_orap_not_exact;
    ] )
