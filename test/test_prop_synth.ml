(** Synthesis-layer properties: every optimisation pass is a functional
    no-op, checked with the SAT miter rather than random sampling, and the
    three functional representations (netlist simulation, AIG, truth
    table / ISOP) agree on the same circuits. *)

open Util
module Aig = Orap_synth.Aig
module Truth = Orap_synth.Truth
module Isop = Orap_synth.Isop
module Balance = Orap_synth.Balance
module Refactor = Orap_synth.Refactor
module Abc = Orap_synth.Abc_script
module Prop = Orap_proptest.Prop
module Gen = Orap_proptest.Gen
module Equiv = Orap_proptest.Equiv

(* P: netlist -> AIG -> netlist is the identity on function (miter) *)
let prop_aig_roundtrip =
  Prop.netlist ~count:30 "AIG round-trip is miter-equivalent" (fun nl ->
      Equiv.check ~method_:`Sat nl (Aig.to_netlist (Aig.of_netlist nl))
      = Equiv.Equivalent)

(* P: balance preserves the function and never worsens AIG depth *)
let prop_balance =
  Prop.netlist ~count:30 "balance preserves function, depth never grows"
    (fun nl ->
      let g = Aig.of_netlist nl in
      let g' = Balance.run g in
      Aig.depth g' <= Aig.depth g
      && Equiv.check ~method_:`Sat nl (Aig.to_netlist g') = Equiv.Equivalent)

(* P: refactor preserves the function (miter) *)
let prop_refactor =
  Prop.netlist ~count:25 "refactor is miter-equivalent" (fun nl ->
      let g = Refactor.run ~cut_size:8 (Aig.of_netlist nl) in
      Equiv.check ~method_:`Sat nl (Aig.to_netlist g) = Equiv.Equivalent)

(* P: the full ABC-style pipeline preserves the function (miter) *)
let prop_pipeline =
  Prop.netlist ~count:15 "abc pipeline is miter-equivalent" (fun nl ->
      Equiv.check ~method_:`Sat nl (Aig.to_netlist (Abc.optimize nl))
      = Equiv.Equivalent)

(* the single-output cone of output [j], same input interface *)
let cone_of_output nl j =
  let b = N.Builder.create () in
  let map = N.copy_into b nl (Array.make (N.num_nodes nl) (-1)) in
  N.Builder.mark_output b map.((N.outputs nl).(j));
  N.Builder.finish b

(* exhaustive truth table of a single-output netlist *)
let truth_of_netlist nl =
  let ni = N.num_inputs nl in
  let t = Truth.zero ni in
  for p = 0 to (1 lsl ni) - 1 do
    let inp = Array.init ni (fun i -> (p lsr i) land 1 = 1) in
    if (Sim.eval_bools nl inp).(0) then
      t.Truth.words.(p lsr 6) <-
        Int64.logor t.Truth.words.(p lsr 6)
          (Int64.shift_left 1L (p land 63))
  done;
  t

(* SOP netlist over the same inputs from an ISOP cube cover *)
let netlist_of_cubes ni cubes =
  let b = N.Builder.create () in
  let pis = Array.init ni (fun _ -> N.Builder.add_input b) in
  let lit v negated =
    if negated then N.Builder.add_node b Gate.Not [| pis.(v) |] else pis.(v)
  in
  let cube_node c =
    let lits = ref [] in
    for v = ni - 1 downto 0 do
      if (c.Isop.pos lsr v) land 1 = 1 then lits := lit v false :: !lits;
      if (c.Isop.neg lsr v) land 1 = 1 then lits := lit v true :: !lits
    done;
    match !lits with
    | [] -> N.Builder.add_node b Gate.Const1 [||]
    | [ one ] -> one
    | several -> N.Builder.add_node b Gate.And (Array.of_list several)
  in
  let out =
    match List.map cube_node cubes with
    | [] -> N.Builder.add_node b Gate.Const0 [||]
    | [ one ] -> one
    | several -> N.Builder.add_node b Gate.Or (Array.of_list several)
  in
  N.Builder.mark_output b out;
  N.Builder.finish b

(* P: sim, AIG and truth/ISOP agree — the truth table extracted by
   simulation, rebuilt as an ISOP SOP netlist, is miter-equivalent to the
   original output cone, and the AIG round-trip of the cone has the same
   truth table *)
let prop_representations_agree =
  Prop.netlist ~count:25 ~params:Gen.tiny_params
    "sim / AIG / truth+ISOP representations agree" (fun nl ->
      let cone = cone_of_output nl 0 in
      let t = truth_of_netlist cone in
      let via_aig = truth_of_netlist (Aig.to_netlist (Aig.of_netlist cone)) in
      let sop = netlist_of_cubes (N.num_inputs cone) (Isop.compute t) in
      Truth.equal t via_aig
      && Equiv.check ~method_:`Sat cone sop = Equiv.Equivalent)

let suite =
  ( "prop_synth",
    [
      prop_aig_roundtrip;
      prop_balance;
      prop_refactor;
      prop_pipeline;
      prop_representations_agree;
    ] )
