(** orap — command-line front end.

    Subcommands: generate, lock, atpg, attack, table1, table2, security,
    trojans.  Run [orap <cmd> --help] for per-command options. *)

open Cmdliner
module N = Orap_netlist.Netlist
module Bench_format = Orap_netlist.Bench_format
module Benchgen = Orap_benchgen.Benchgen
module Locked = Orap_locking.Locked
module E = Orap_experiments
module Runner = Orap_runner.Runner
module Telemetry = Orap_telemetry.Telemetry
module Metrics = Orap_telemetry.Metrics
module Trace = Orap_telemetry.Trace

(* --- shared observability option group --- *)

let obs_opts : (string option * string option) Term.t =
  let docs = "OBSERVABILITY" in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docs ~docv:"FILE"
          ~doc:
            "Write a span/event trace to $(docv): Chrome trace_event JSON \
             array when $(docv) ends in .json (loadable directly in \
             about://tracing or Perfetto), JSONL event stream otherwise \
             (validate with $(b,orap tracecheck)).")
  in
  let metrics =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docs ~docv:"FILE"
          ~doc:
            "Write a JSON snapshot of all counters, gauges and latency \
             histograms to $(docv) on exit.")
  in
  Term.(const (fun t m -> (t, m)) $ trace $ metrics)

(* run [f] under the requested trace sink / metrics snapshot *)
let with_obs (trace, metrics) f =
  (match trace with
  | None -> ()
  | Some path ->
    Telemetry.install
      (if Filename.check_suffix path ".json" then Telemetry.chrome path
       else Telemetry.jsonl path));
  Fun.protect
    ~finally:(fun () ->
      Telemetry.shutdown ();
      match metrics with None -> () | Some path -> Metrics.write_json path)
    f

(* --- shared runner option group (grid subcommands) --- *)

let runner_opts : Runner.options Term.t =
  let docs = "PARALLEL EXECUTION" in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docs
          ~doc:"Worker domains for the experiment grid (0 = all cores).")
  in
  let journal =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docs ~docv:"FILE"
          ~doc:
            "Append completed grid cells to $(docv) (JSONL) so an \
             interrupted run can be resumed.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ] ~docs
          ~doc:
            "Skip cells already recorded in $(b,--journal) (corrupt or \
             half-written lines are recomputed).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ] ~docs
          ~doc:"Periodic done/total, cells/sec and ETA lines on stderr.")
  in
  let mk jobs journal resume progress =
    { Runner.default_options with Runner.jobs; journal; resume; progress }
  in
  Term.(const mk $ jobs $ journal $ resume $ progress)

let read_netlist path =
  let src = Bench_format.parse_file path in
  src.Bench_format.netlist

(* --- generate --- *)

let generate_cmd =
  let run seed inputs outputs gates out =
    let nl =
      Benchgen.generate
        { Benchgen.seed; num_inputs = inputs; num_outputs = outputs; num_gates = gates }
    in
    Bench_format.print_to_file out nl;
    Printf.printf "wrote %s: %d gates, %d inputs, %d outputs, depth %d\n" out
      (N.gate_count nl) (N.num_inputs nl) (N.num_outputs nl) (N.depth nl)
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed") in
  let inputs = Arg.(value & opt int 64 & info [ "inputs" ] ~doc:"primary inputs") in
  let outputs = Arg.(value & opt int 32 & info [ "outputs" ] ~doc:"primary outputs") in
  let gates = Arg.(value & opt int 1000 & info [ "gates" ] ~doc:"target gate count") in
  let out = Arg.(value & opt string "out.bench" & info [ "o"; "output" ] ~doc:"output file") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic benchmark circuit (.bench)")
    Term.(const run $ seed $ inputs $ outputs $ gates $ out)

(* --- lock --- *)

let lock_cmd =
  let run input technique key_size ctrl out =
    let nl = read_netlist input in
    let locked =
      match technique with
      | "weighted" -> Orap_locking.Weighted.lock nl ~key_size ~ctrl_inputs:ctrl
      | "random" -> Orap_locking.Random_ll.lock nl ~key_size
      | "sarlock" -> Orap_locking.Sarlock.lock nl ~key_size
      | "antisat" -> Orap_locking.Antisat.lock nl ~key_size
      | t -> failwith ("unknown technique " ^ t)
    in
    Bench_format.print_to_file out locked.Locked.netlist;
    let key =
      String.concat ""
        (List.map (fun b -> if b then "1" else "0")
           (Array.to_list locked.Locked.correct_key))
    in
    Printf.printf "wrote %s (%s)\ncorrect key: %s\n" out
      locked.Locked.technique key
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"BENCH") in
  let technique =
    Arg.(value & opt string "weighted" & info [ "technique" ] ~doc:"weighted|random|sarlock|antisat")
  in
  let key_size = Arg.(value & opt int 64 & info [ "key-size" ] ~doc:"key bits") in
  let ctrl = Arg.(value & opt int 3 & info [ "ctrl-inputs" ] ~doc:"control gate width") in
  let out = Arg.(value & opt string "locked.bench" & info [ "o"; "output" ] ~doc:"output file") in
  Cmd.v
    (Cmd.info "lock" ~doc:"Lock a circuit with a combinational locking technique")
    Term.(const run $ input $ technique $ key_size $ ctrl $ out)

(* --- atpg --- *)

let atpg_cmd =
  let run input words limit =
    let nl = read_netlist input in
    let r = Orap_atpg.Atpg.run ~random_words:words ~backtrack_limit:limit nl in
    Printf.printf
      "faults: %d\ndetected: %d (%.2f%%)\nredundant: %d\naborted: %d\nrandom-phase detections: %d\ndeterministic patterns: %d\n"
      r.Orap_atpg.Atpg.total_faults r.Orap_atpg.Atpg.detected
      (Orap_atpg.Atpg.coverage r) r.Orap_atpg.Atpg.redundant
      r.Orap_atpg.Atpg.aborted r.Orap_atpg.Atpg.random_detected
      (List.length r.Orap_atpg.Atpg.patterns)
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"BENCH") in
  let words = Arg.(value & opt int 32 & info [ "random-words" ] ~doc:"64-pattern random words") in
  let limit = Arg.(value & opt int 64 & info [ "backtrack-limit" ] ~doc:"PODEM backtrack limit") in
  Cmd.v
    (Cmd.info "atpg" ~doc:"Stuck-at ATPG (random phase + PODEM)")
    Term.(const run $ input $ words $ limit)

(* --- attack --- *)

module Budget = Orap_attacks.Budget
module Faulty = Orap_core.Faulty_oracle
module Evaluate = Orap_attacks.Evaluate

let attack_cmd =
  let run attack oracle seed gates key_size noise qbudget votes wall_clock
      max_conflicts validate obs =
    with_obs obs @@ fun () ->
    let fx =
      E.Security.make_fixture ~seed ~num_gates:gates ~key_size ()
    in
    let mk_oracle () =
      let base =
        match oracle with
        | "functional" -> Orap_core.Oracle.functional fx.E.Security.locked
        | "orap" ->
          let chip = Orap_core.Chip.create fx.E.Security.basic in
          Orap_core.Chip.unlock chip;
          Orap_core.Oracle.scan_chip chip
        | o -> failwith ("unknown oracle " ^ o)
      in
      let o = if noise > 0.0 then Faulty.bit_flip ~seed ~p:noise base else base in
      let o = if qbudget > 0 then Faulty.query_budget ~limit:qbudget o else o in
      if votes > 1 then Faulty.retry ~votes o else o
    in
    let budget =
      Budget.make
        ?wall_clock_s:(if wall_clock > 0.0 then Some wall_clock else None)
        ?max_conflicts:(if max_conflicts > 0 then Some max_conflicts else None)
        ()
    in
    let locked = fx.E.Security.locked in
    let outcome, iters, queries =
      match attack with
      | "sat" ->
        let r =
          Orap_attacks.Sat_attack.run ~budget ~validate locked (mk_oracle ())
        in
        (r.Orap_attacks.Sat_attack.outcome,
         r.Orap_attacks.Sat_attack.iterations, r.Orap_attacks.Sat_attack.queries)
      | "appsat" ->
        let r = Orap_attacks.Appsat.run ~budget locked (mk_oracle ()) in
        (r.Orap_attacks.Appsat.outcome,
         r.Orap_attacks.Appsat.iterations, r.Orap_attacks.Appsat.queries)
      | "ddip" ->
        let r = Orap_attacks.Double_dip.run ~budget locked (mk_oracle ()) in
        (r.Orap_attacks.Double_dip.outcome,
         r.Orap_attacks.Double_dip.iterations, r.Orap_attacks.Double_dip.queries)
      | "hill" ->
        let r = Orap_attacks.Hill_climb.run ~budget locked (mk_oracle ()) in
        (r.Orap_attacks.Hill_climb.outcome,
         r.Orap_attacks.Hill_climb.flips, r.Orap_attacks.Hill_climb.queries)
      | "sens" ->
        let r = Orap_attacks.Key_sensitization.run ~budget locked (mk_oracle ()) in
        (r.Orap_attacks.Key_sensitization.outcome,
         r.Orap_attacks.Key_sensitization.sensitized_bits,
         r.Orap_attacks.Key_sensitization.queries)
      | a -> failwith ("unknown attack " ^ a)
    in
    let verdict = Evaluate.of_outcome locked outcome in
    let shown =
      match outcome with
      | Budget.Exact _ when not verdict.Evaluate.equivalent ->
        (* the miter proof is relative to the oracle's answers — a locked
           (OraP) oracle yields a proof of the wrong function *)
        "false proof (exact only vs. the oracle's answers)"
      | o -> Budget.outcome_to_string o
    in
    Printf.printf "%s vs %s oracle: %s — %s (iters=%d, queries=%d)\n" attack
      oracle shown
      (Evaluate.to_string verdict)
      iters queries
  in
  let attack = Arg.(value & opt string "sat" & info [ "attack" ] ~doc:"sat|appsat|ddip|hill|sens") in
  let oracle = Arg.(value & opt string "functional" & info [ "oracle" ] ~doc:"functional|orap") in
  let seed = Arg.(value & opt int 12 & info [ "seed" ] ~doc:"fixture seed") in
  let gates = Arg.(value & opt int 500 & info [ "gates" ] ~doc:"fixture gate count") in
  let key_size = Arg.(value & opt int 32 & info [ "key-size" ] ~doc:"key bits") in
  let noise = Arg.(value & opt float 0.0 & info [ "noise" ] ~doc:"per-query bit-flip probability") in
  let qbudget = Arg.(value & opt int 0 & info [ "query-budget" ] ~doc:"oracle refuses after N queries (0 = unlimited)") in
  let votes = Arg.(value & opt int 1 & info [ "votes" ] ~doc:"majority-vote retries per query (odd; 1 = off)") in
  let wall_clock = Arg.(value & opt float 0.0 & info [ "wall-clock" ] ~doc:"attack deadline in seconds (0 = none)") in
  let max_conflicts = Arg.(value & opt int 0 & info [ "max-conflicts" ] ~doc:"cumulative solver-conflict budget (0 = none)") in
  let validate = Arg.(value & opt int 32 & info [ "validate" ] ~doc:"post-proof audit queries for SAT's exact claims (0 = trust the proof)") in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run an oracle-based attack on a locked fixture")
    Term.(const run $ attack $ oracle $ seed $ gates $ key_size $ noise
          $ qbudget $ votes $ wall_clock $ max_conflicts $ validate $ obs_opts)

(* --- robustness --- *)

let robustness_cmd =
  let parse_list ~what conv s =
    match
      List.map conv
        (List.filter (fun x -> x <> "") (String.split_on_char ',' s))
    with
    | [] -> failwith ("empty " ^ what ^ " list")
    | l -> l
    | exception _ -> failwith ("bad " ^ what ^ " list: " ^ s)
  in
  let run seed gates key_size oracle noise qbudgets trials attacks iters
      wall_clock max_conflicts votes options obs =
    with_obs obs @@ fun () ->
    let oracle =
      match oracle with
      | "functional" -> E.Robustness.Functional
      | "orap" -> E.Robustness.Orap_scan
      | o -> failwith ("unknown oracle " ^ o)
    in
    let attacks =
      if attacks = "all" then E.Robustness.all_attacks
      else
        parse_list ~what:"attack"
          (function
            | "sat" -> E.Robustness.Sat
            | "appsat" -> E.Robustness.Appsat_k
            | "ddip" -> E.Robustness.Double_dip_k
            | "hill" -> E.Robustness.Hill
            | "sens" -> E.Robustness.Sensitize
            | a -> failwith ("unknown attack " ^ a))
          attacks
    in
    let params =
      {
        E.Robustness.seed;
        num_gates = gates;
        key_size;
        oracle;
        noise_levels = parse_list ~what:"noise" float_of_string noise;
        query_budgets = parse_list ~what:"query-budget" int_of_string qbudgets;
        trials;
        attacks;
        max_iterations = iters;
        wall_clock_s = wall_clock;
        max_conflicts = (if max_conflicts > 0 then Some max_conflicts else None);
        retry_votes = votes;
        validate_queries = E.Robustness.default_params.E.Robustness.validate_queries;
      }
    in
    E.Report.print (E.Robustness.report (E.Robustness.run ~params ~options ()))
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"fixture seed") in
  let gates = Arg.(value & opt int 300 & info [ "gates" ] ~doc:"fixture gate count") in
  let key_size = Arg.(value & opt int 16 & info [ "key-size" ] ~doc:"key bits") in
  let oracle = Arg.(value & opt string "functional" & info [ "oracle" ] ~doc:"base oracle: functional|orap") in
  let noise = Arg.(value & opt string "0.0,0.02,0.1" & info [ "noise" ] ~doc:"comma-separated bit-flip probabilities") in
  let qbudgets = Arg.(value & opt string "0,2000" & info [ "query-budget" ] ~doc:"comma-separated query budgets (0 = unlimited)") in
  let trials = Arg.(value & opt int 3 & info [ "trials" ] ~doc:"noise seeds per cell") in
  let attacks = Arg.(value & opt string "all" & info [ "attacks" ] ~doc:"all or comma-separated sat|appsat|ddip|hill|sens") in
  let iters = Arg.(value & opt int 256 & info [ "max-iterations" ] ~doc:"DIP/loop iteration cap") in
  let wall_clock = Arg.(value & opt float 10.0 & info [ "wall-clock" ] ~doc:"per-attack deadline, seconds") in
  let max_conflicts = Arg.(value & opt int 0 & info [ "max-conflicts" ] ~doc:"cumulative solver-conflict budget (0 = none)") in
  let votes = Arg.(value & opt int 1 & info [ "votes" ] ~doc:"majority-vote retries per query (odd; 1 = off)") in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:"Sweep noise level x query budget x attack against an imperfect oracle")
    Term.(const run $ seed $ gates $ key_size $ oracle $ noise $ qbudgets
          $ trials $ attacks $ iters $ wall_clock $ max_conflicts $ votes
          $ runner_opts $ obs_opts)

(* --- experiment tables --- *)

let scale_arg =
  Arg.(value & opt int 0 & info [ "scale" ]
         ~doc:"profile scale divisor; 0 = experiment default, 1 = paper scale")

let table1_cmd =
  let run scale options obs =
    with_obs obs @@ fun () ->
    let params =
      if scale = 0 then E.Table1.quick_params
      else { E.Table1.default_params with E.Table1.scale }
    in
    E.Report.print (E.Table1.report (E.Table1.run ~params ~options ()))
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table I (HD, area, delay overhead)")
    Term.(const run $ scale_arg $ runner_opts $ obs_opts)

let table2_cmd =
  let run scale options obs =
    with_obs obs @@ fun () ->
    let params =
      if scale = 0 then E.Table2.quick_params
      else { E.Table2.default_params with E.Table2.scale }
    in
    E.Report.print (E.Table2.report (E.Table2.run ~params ~options ()))
  in
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce Table II (fault coverage)")
    Term.(const run $ scale_arg $ runner_opts $ obs_opts)

let security_cmd =
  let run () =
    let fx = E.Security.make_fixture () in
    let f1 = E.Security.fig1 fx in
    Printf.printf
      "F1 (Fig.1): unlock correct=%b, cleared on scan=%b, scan locked=%b\n"
      f1.E.Security.unlock_key_correct f1.E.Security.key_cleared_on_scan
      f1.E.Security.scan_responses_locked;
    let f2 = E.Security.fig2 () in
    Printf.printf "F2 (Fig.2): rising=%b, hold silent=%b, falling silent=%b\n"
      f2.E.Security.fires_on_rising_edge f2.E.Security.silent_on_level_hold
      f2.E.Security.silent_on_falling_edge;
    let f3 = E.Security.fig3 fx in
    Printf.printf
      "F3 (Fig.3): honest unlock=%b, frozen FFs break key=%b, basic immune to freeze=%b\n"
      f3.E.Security.honest_unlock_correct f3.E.Security.frozen_ffs_break_unlock
      f3.E.Security.responses_differ_from_basic;
    E.Report.print (E.Security.attack_report (E.Security.attack_matrix fx));
    Printf.printf "S3 hill-climb on locked test responses: %s\n"
      (Orap_attacks.Evaluate.to_string (E.Security.hill_climb_on_test_responses fx))
  in
  Cmd.v (Cmd.info "security" ~doc:"Figs. 1-3 behaviour and the attack matrix")
    Term.(const run $ const ())

let trojans_cmd =
  let run options obs =
    with_obs obs @@ fun () ->
    let fx = E.Security.make_fixture () in
    E.Report.print (E.Trojan_table.report (E.Trojan_table.run ~options fx))
  in
  Cmd.v (Cmd.info "trojans" ~doc:"Section III Trojan scenarios (payload/outcome)")
    Term.(const run $ runner_opts $ obs_opts)

let ablation_cmd =
  let run () =
    let fx = E.Security.make_fixture () in
    E.Report.print (E.Ablation.a1_report (E.Ablation.site_selection ()));
    E.Report.print (E.Ablation.a3_report (E.Ablation.key_register_structure ()));
    E.Report.print (E.Ablation.a4_report (E.Ablation.scheme_comparison fx))
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Design-choice ablation tables")
    Term.(const run $ const ())

let scanflow_cmd =
  let run () =
    let fx = E.Security.make_fixture () in
    let r = E.Scan_flow.run fx.E.Security.basic in
    Printf.printf
      "patterns applied via scan: %d\nresponses match locked prediction: %b\nkey register never held the secret: %b\nATPG coverage: %.2f%%\n"
      r.E.Scan_flow.patterns_applied r.E.Scan_flow.responses_match_prediction
      r.E.Scan_flow.key_register_never_secret r.E.Scan_flow.atpg_coverage_pct
  in
  Cmd.v
    (Cmd.info "scanflow"
       ~doc:"Apply ATPG patterns through the protected chip's scan chains")
    Term.(const run $ const ())

let tracecheck_cmd =
  let run input to_chrome =
    let finish = function
      | Ok n ->
        Printf.printf "%s: %d events, all lines valid\n" input n;
        `Ok ()
      | Error e ->
        `Error (false, Format.asprintf "%s: %a" input Trace.pp_error e)
    in
    match to_chrome with
    | None -> finish (Trace.validate_file input)
    | Some dst ->
      let r = Trace.to_chrome ~src:input ~dst in
      (match r with
      | Ok n -> Printf.printf "wrote %s (%d events)\n" dst n
      | Error _ -> ());
      finish r
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let to_chrome =
    Arg.(
      value & opt (some string) None
      & info [ "to-chrome" ] ~docv:"OUT"
          ~doc:
            "Also convert the JSONL stream to a Chrome trace_event JSON \
             array at $(docv).")
  in
  Cmd.v
    (Cmd.info "tracecheck"
       ~doc:
         "Strictly validate a JSONL trace written by --trace (every line \
          must parse as an emitted trace event)")
    Term.(ret (const run $ input $ to_chrome))

let export_cmd =
  let run input out =
    let nl = read_netlist input in
    Orap_netlist.Verilog.print_to_file out nl;
    Printf.printf "wrote %s (structural Verilog, %d gates)\n" out
      (N.gate_count nl)
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"BENCH") in
  let out = Arg.(value & opt string "out.v" & info [ "o"; "output" ] ~doc:"output file") in
  Cmd.v (Cmd.info "export" ~doc:"Convert a .bench netlist to structural Verilog")
    Term.(const run $ input $ out)

let main =
  Cmd.group
    (Cmd.info "orap" ~version:"1.0.0"
       ~doc:"OraP: oracle-protection logic locking (DATE 2020 reproduction)")
    [ generate_cmd; lock_cmd; atpg_cmd; attack_cmd; robustness_cmd; export_cmd;
      table1_cmd; table2_cmd; security_cmd; trojans_cmd; ablation_cmd;
      scanflow_cmd; tracecheck_cmd ]

let () = exit (Cmd.eval main)
