(** Hill-climbing attack (Plaza & Markov [4]).

    A candidate key is refined by greedy bit flips that reduce the number of
    output mismatches against correct responses.  Two response sources
    exist, both oracle-based: live queries to a functional chip, or the
    designer-supplied test patterns with their (supposedly unlocked)
    responses — the paper's footnote 1.  Under OraP the chip is tested
    locked, so that second source yields locked responses and the climb
    converges to the wrong key. *)

module Locked = Orap_locking.Locked
module Oracle = Orap_core.Oracle
module Prng = Orap_sim.Prng

type result = {
  outcome : bool array Budget.outcome;
  mismatches : int;  (** remaining mismatching output bits on the sample *)
  flips : int;
  queries : int;
}

(* mismatching output bits of [key] against response pairs *)
let cost (locked : Locked.t) key pairs =
  List.fold_left
    (fun acc (x, y) ->
      let y' = Locked.eval locked ~key ~inputs:x in
      let m = ref 0 in
      Array.iteri (fun j b -> if b <> y'.(j) then incr m) y;
      acc + !m)
    0 pairs

let climb (locked : Locked.t) pairs ~seed ~restarts =
  let ksz = Locked.key_size locked in
  let rng = Prng.create seed in
  let best_key = ref (Array.make ksz false) in
  let best_cost = ref max_int in
  let flips = ref 0 in
  for _ = 1 to restarts do
    let key = Prng.bool_array rng ksz in
    let current = ref (cost locked key pairs) in
    let improved = ref true in
    while !improved && !current > 0 do
      improved := false;
      for j = 0 to ksz - 1 do
        key.(j) <- not key.(j);
        let c = cost locked key pairs in
        if c < !current then begin
          current := c;
          incr flips;
          improved := true
        end
        else key.(j) <- not key.(j)
      done
    done;
    if !current < !best_cost then begin
      best_cost := !current;
      best_key := Array.copy key
    end
  done;
  (!best_key, !best_cost, !flips)

(* the climb's outcome: always best-effort (sample-based, no proof) *)
let outcome_of clock locked key ~mismatches ~pairs ~queries =
  let bits =
    List.length pairs * Array.length (Orap_netlist.Netlist.outputs locked.Locked.netlist)
  in
  let err = if bits = 0 then 1.0 else float_of_int mismatches /. float_of_int bits in
  Budget.Approximate
    (key, Budget.stats_of clock ~iterations:0 ~queries ~estimated_error:err ())

(** Attack from live oracle queries on random patterns. *)
let run ?(budget = Budget.default) ?(seed = 51) ?(sample = 48) ?(restarts = 3)
    (locked : Locked.t) (oracle : Oracle.t) : result =
  let clock = Budget.start budget in
  let rng = Prng.create seed in
  let nri = locked.Locked.num_regular_inputs in
  let queries0 = Oracle.num_queries oracle in
  let rec collect n acc =
    if n = 0 then Ok (List.rev acc)
    else
      let x = Prng.bool_array rng nri in
      match Budget.query oracle x with
      | Error r -> Error r
      | Ok y -> collect (n - 1) ((x, y) :: acc)
  in
  match collect sample [] with
  | Error r ->
    { outcome = Budget.Oracle_refused r; mismatches = max_int; flips = 0;
      queries = Oracle.num_queries oracle - queries0 }
  | Ok pairs ->
    let key, mismatches, flips = climb locked pairs ~seed:(seed + 1) ~restarts in
    let queries = Oracle.num_queries oracle - queries0 in
    { outcome = outcome_of clock locked key ~mismatches ~pairs ~queries;
      mismatches; flips; queries }

(** Attack from given test patterns and their responses (footnote 1): under
    OraP these are locked-circuit responses. *)
let run_on_responses ?(seed = 51) ?(restarts = 3) (locked : Locked.t)
    (pairs : (bool array * bool array) list) : result =
  let clock = Budget.start Budget.default in
  let key, mismatches, flips = climb locked pairs ~seed ~restarts in
  { outcome = outcome_of clock locked key ~mismatches ~pairs ~queries:0;
    mismatches; flips; queries = 0 }
