(** The SAT attack of Subramanyan et al. [6].

    The classic loop: build a miter of two locked-circuit copies sharing the
    primary inputs but carrying independent keys; while the miter is
    satisfiable, the model's input vector is a distinguishing input pattern
    (DIP); the oracle's response on the DIP is added as an input/output
    constraint on both key copies.  When the miter goes unsatisfiable, any
    key consistent with the accumulated constraints is functionally
    equivalent to the correct key *provided the oracle answered correctly* —
    which is exactly the property OraP removes. *)

module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Oracle = Orap_core.Oracle
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Tseitin = Orap_sat.Tseitin
module Telemetry = Orap_telemetry.Telemetry

type result = {
  outcome : bool array Budget.outcome;
  iterations : int;
  queries : int;  (** oracle queries made by THIS run (delta, not lifetime) *)
  conflicts : int;  (** solver conflicts spent by this run *)
  elapsed_s : float;
}

type state = {
  locked : Locked.t;
  solver : Solver.t;
  x_vars : int array;
  k1_vars : int array;
  k2_vars : int array;
  activate : Lit.t;  (** assumption literal guarding the miter difference *)
  const_true : int;
  const_false : int;
}

let make_state (locked : Locked.t) : state =
  let solver = Solver.create () in
  let nl = locked.Locked.netlist in
  let nri = locked.Locked.num_regular_inputs in
  let ksz = Locked.key_size locked in
  let x_vars = Solver.new_vars solver nri in
  let k1_vars = Solver.new_vars solver ksz in
  let k2_vars = Solver.new_vars solver ksz in
  let input_var keys i = if i < nri then x_vars.(i) else keys.(i - nri) in
  let n1 = Tseitin.encode solver nl ~input_var:(input_var k1_vars) in
  let n2 = Tseitin.encode solver nl ~input_var:(input_var k2_vars) in
  let o1 = Tseitin.output_vars nl n1 and o2 = Tseitin.output_vars nl n2 in
  (* diff_j <- o1_j xor o2_j; assumption literal A guards the "some output
     differs" clause so the same solver can later produce a consistent key *)
  let a_var = Solver.new_var solver in
  let activate = Lit.pos a_var in
  let diffs =
    Array.map2
      (fun v1 v2 ->
        let d = Solver.new_var solver in
        ignore (Solver.add_clause solver [ Lit.neg d; Lit.pos v1; Lit.pos v2 ]);
        ignore (Solver.add_clause solver [ Lit.neg d; Lit.neg v1; Lit.neg v2 ]);
        ignore (Solver.add_clause solver [ Lit.pos d; Lit.pos v1; Lit.neg v2 ]);
        ignore (Solver.add_clause solver [ Lit.pos d; Lit.neg v1; Lit.pos v2 ]);
        d)
      o1 o2
  in
  ignore
    (Solver.add_clause solver
       (Lit.neg a_var :: Array.to_list (Array.map Lit.pos diffs)));
  let const_true = Solver.new_var solver in
  let const_false = Solver.new_var solver in
  ignore (Solver.add_clause solver [ Lit.pos const_true ]);
  ignore (Solver.add_clause solver [ Lit.neg const_false ]);
  { locked; solver; x_vars; k1_vars; k2_vars; activate; const_true; const_false }

(* add the IO constraint C(dip, K1) = y and C(dip, K2) = y *)
let add_io_constraint (st : state) (dip : bool array) (y : bool array) =
  let nl = st.locked.Locked.netlist in
  let nri = st.locked.Locked.num_regular_inputs in
  let fixed keys i =
    if i < nri then if dip.(i) then st.const_true else st.const_false
    else keys.(i - nri)
  in
  let constrain keys =
    let nodes = Tseitin.encode st.solver nl ~input_var:(fixed keys) in
    let outs = Tseitin.output_vars nl nodes in
    Array.iteri
      (fun j ov ->
        ignore
          (Solver.add_clause st.solver
             [ (if y.(j) then Lit.pos ov else Lit.neg ov) ]))
      outs
  in
  constrain st.k1_vars;
  constrain st.k2_vars

let extract_key (st : state) vars =
  Array.map (fun v -> Solver.model_value st.solver v) vars

(** Run the attack against [oracle] under [budget].  [max_iterations]
    overrides the budget's DIP-loop cap.

    [validate] > 0 audits an [Exact] proof with that many fresh random
    oracle queries before claiming it: the miter proof is only sound
    relative to the oracle's answers, so against a noisy or otherwise
    faulty oracle the "proof" can be hollow.  A probe mismatch downgrades
    the claim to [Approximate] carrying the measured error; a refusal
    mid-probe surfaces as [Oracle_refused].  Validation queries are real
    oracle queries and burn query budget. *)
let run ?(budget = Budget.default) ?max_iterations ?(validate = 0)
    ?(validation_seed = 11213) (locked : Locked.t) (oracle : Oracle.t) :
    result =
  let budget =
    match max_iterations with
    | Some n -> { budget with Budget.max_iterations = n }
    | None -> budget
  in
  let clock = Budget.start budget in
  let st = make_state locked in
  (* snapshot the oracle's lifetime counter so shared oracles report this
     run's queries, not every run's *)
  let queries0 = Oracle.num_queries oracle in
  let queries_here () = Oracle.num_queries oracle - queries0 in
  let finish outcome iters =
    { outcome; iterations = iters; queries = queries_here ();
      conflicts = Solver.num_conflicts st.solver;
      elapsed_s = Budget.elapsed_s clock }
  in
  let audit_proof key iters =
    if validate <= 0 then Budget.Exact key
    else begin
      let rng = Orap_sim.Prng.create validation_seed in
      let nri = locked.Locked.num_regular_inputs in
      let mismatching = ref 0 in
      let total_bits = ref 0 in
      let stopped = ref None in
      (try
         for _ = 1 to validate do
           let x = Orap_sim.Prng.bool_array rng nri in
           match Budget.query oracle x with
           | Error r ->
             stopped := Some r;
             raise Exit
           | Ok y ->
             let y' = Locked.eval locked ~key ~inputs:x in
             Array.iteri (fun j b -> if b <> y'.(j) then incr mismatching) y;
             total_bits := !total_bits + Array.length y
         done
       with Exit -> ());
      match !stopped with
      | Some r -> Budget.Oracle_refused r
      | None ->
        if !mismatching = 0 then Budget.Exact key
        else
          let err = float_of_int !mismatching /. float_of_int !total_bits in
          Budget.Approximate
            ( key,
              Budget.stats_of clock ~iterations:iters
                ~queries:(queries_here ()) ~estimated_error:err () )
    end
  in
  (* one DIP iteration: miter solve, oracle query, IO constraint *)
  let step iters =
    match Budget.solve clock ~assumptions:[| st.activate |] st.solver with
    | Error r -> `Stop (finish (Budget.Exhausted r) iters)
    | Ok Solver.Unknown -> assert false (* Budget.solve never returns it *)
    | Ok Solver.Sat -> (
      let dip = extract_key st st.x_vars in
      Solver.backtrack_to_root st.solver;
      match Budget.query oracle dip with
      | Error r -> `Stop (finish (Budget.Oracle_refused r) iters)
      | Ok y ->
        add_io_constraint st dip y;
        `Continue)
    | Ok Solver.Unsat -> (
      (* miter exhausted: extract any constraint-consistent key *)
      match
        Budget.solve clock ~assumptions:[| Lit.negate st.activate |] st.solver
      with
      | Error r -> `Stop (finish (Budget.Exhausted r) iters)
      | Ok Solver.Unknown -> assert false
      | Ok Solver.Sat ->
        let key = extract_key st st.k1_vars in
        Solver.backtrack_to_root st.solver;
        `Stop (finish (audit_proof key iters) iters)
      | Ok Solver.Unsat ->
        (* the oracle's answers were inconsistent with EVERY key — the
           signature of a locked (OraP-protected) oracle *)
        `Stop (finish (Budget.Exhausted Budget.Inconsistent) iters))
  in
  let rec loop iters =
    match Budget.check_iteration clock iters with
    | Some r -> finish (Budget.Exhausted r) iters
    | None -> (
      match
        Telemetry.span "sat_attack.iteration"
          ~args:[ ("iter", Telemetry.Int iters) ]
          (fun () -> step iters)
      with
      | `Stop r -> r
      | `Continue -> loop (iters + 1))
  in
  Telemetry.span "sat_attack.run"
    ~exit_args:(fun r ->
      [
        ("iterations", Telemetry.Int r.iterations);
        ("queries", Telemetry.Int r.queries);
        ("conflicts", Telemetry.Int r.conflicts);
        ("outcome", Telemetry.String (Budget.outcome_to_string r.outcome));
      ])
    (fun () -> loop 0)
