(** Bypass attack (Xu et al. [12]).

    Pick any wrong key K'; use SAT to enumerate the inputs on which the
    locked circuit under K' disagrees with the oracle, and patch each with
    bypass circuitry (an input comparator whose hit flips the affected
    outputs).  Against point-function defences (SARLock, Anti-SAT) the
    disagreement set is tiny, so the patched circuit is functionally
    correct at trivial cost; against high-corruption locking the set is
    astronomically large and the attack collapses — one more reason the
    paper pairs OraP with weighted locking. *)

module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Oracle = Orap_core.Oracle
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Tseitin = Orap_sat.Tseitin
module Gate = Orap_netlist.Gate

type result = {
  outcome : N.t Budget.outcome;  (** the patched circuit, when viable *)
  key_used : bool array;
  patches : (bool array * bool array) list;
      (** (input pattern, output correction mask) — one comparator each *)
}

(** Overhead of the bypass circuitry in 2-input-gate equivalents: an
    n-input comparator (n XNORs + AND tree) per patch plus one XOR per
    corrected output bit. *)
let patch_overhead (locked : Locked.t) (r : result) : int =
  let n = locked.Locked.num_regular_inputs in
  List.fold_left
    (fun acc (_, mask) ->
      let flips = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mask in
      acc + (2 * n) - 1 + flips)
    0 r.patches

(* Attacker-knowledge-only disagreement discovery (as in [12]): two wrong
   keys K1, K2 disagree exactly on the union of their "trap" inputs (for
   point-function locking, one or two patterns).  Enumerate those inputs
   by SAT, query the oracle there, and record the corrections K1 needs.
   High-corruption locking makes the disagreement set explode past the
   enumeration budget, which is how the attack fails. *)
let find_disagreements (locked : Locked.t) (oracle : Oracle.t) key key2 ~clock =
  let nl = locked.Locked.netlist in
  let nri = locked.Locked.num_regular_inputs in
  let solver = Solver.create () in
  let x_vars = Solver.new_vars solver nri in
  let ct = Solver.new_var solver in
  ignore (Solver.add_clause solver [ Lit.pos ct ]);
  let cf = Solver.new_var solver in
  ignore (Solver.add_clause solver [ Lit.neg cf ]);
  let iv_with karr i =
    if i < nri then x_vars.(i) else if karr.(i - nri) then ct else cf
  in
  let o1 =
    Tseitin.output_vars nl (Tseitin.encode solver nl ~input_var:(iv_with key))
  in
  let o2 =
    Tseitin.output_vars nl (Tseitin.encode solver nl ~input_var:(iv_with key2))
  in
  let diffs =
    Array.map2
      (fun a b ->
        let d = Solver.new_var solver in
        ignore (Solver.add_clause solver [ Lit.neg d; Lit.pos a; Lit.pos b ]);
        ignore (Solver.add_clause solver [ Lit.neg d; Lit.neg a; Lit.neg b ]);
        ignore (Solver.add_clause solver [ Lit.pos d; Lit.pos a; Lit.neg b ]);
        ignore (Solver.add_clause solver [ Lit.pos d; Lit.neg a; Lit.pos b ]);
        d)
      o1 o2
  in
  ignore (Solver.add_clause solver (Array.to_list (Array.map Lit.pos diffs)));
  let patches = ref [] in
  let stopped = ref None in
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Budget.check_iteration clock !iters with
    | Some r ->
      stopped := Some (Budget.Exhausted r);
      continue_ := false
    | None -> (
      match Budget.solve clock solver with
      | Error r ->
        stopped := Some (Budget.Exhausted r);
        continue_ := false
      | Ok Solver.Unknown -> assert false (* Budget.solve never returns it *)
      | Ok Solver.Unsat -> continue_ := false
      | Ok Solver.Sat -> (
        incr iters;
        let x = Array.map (fun v -> Solver.model_value solver v) x_vars in
        Solver.backtrack_to_root solver;
        (* the attacker checks x against the real oracle *)
        match Budget.query oracle x with
        | Error r ->
          stopped := Some (Budget.Oracle_refused r);
          continue_ := false
        | Ok y_oracle ->
          let y_wrong = Locked.eval locked ~key ~inputs:x in
          let mask = Array.map2 (fun a b -> a <> b) y_wrong y_oracle in
          if Array.exists (fun b -> b) mask then
            patches := (x, mask) :: !patches;
          (* block this input *)
          ignore
            (Solver.add_clause solver
               (Array.to_list
                  (Array.mapi
                     (fun i v -> if x.(i) then Lit.neg v else Lit.pos v)
                     x_vars)))))
  done;
  (List.rev !patches, !stopped)

(* patch the keyed netlist with comparators *)
let build_patched (locked : Locked.t) key patches : N.t =
  let nl = locked.Locked.netlist in
  let nri = locked.Locked.num_regular_inputs in
  let b = N.Builder.create ~size_hint:(N.num_nodes nl) () in
  let map = Array.make (N.num_nodes nl) (-1) in
  let inputs = N.inputs nl in
  (* regular inputs stay inputs; key inputs become constants at K' *)
  Array.iteri
    (fun pos id ->
      if pos < nri then map.(id) <- N.Builder.add_input b
      else
        map.(id) <-
          N.Builder.add_node b
            (if key.(pos - nri) then Gate.Const1 else Gate.Const0)
            [||])
    inputs;
  for i = 0 to N.num_nodes nl - 1 do
    match N.kind nl i with
    | Gate.Input -> ()
    | k ->
      map.(i) <- N.Builder.add_node b k (Array.map (fun f -> map.(f)) (N.fanins nl i))
  done;
  (* hit_j = (x == pattern_j) *)
  let hits =
    List.map
      (fun (pattern, mask) ->
        let bits =
          Array.mapi
            (fun pos id ->
              if pattern.(pos) then map.(id)
              else N.Builder.add_node b Gate.Not [| map.(id) |])
            (Array.sub inputs 0 nri)
        in
        (N.Builder.add_node b Gate.And bits, mask))
      patches
  in
  Array.iteri
    (fun j o ->
      let flips =
        List.filter_map
          (fun (hit, mask) -> if mask.(j) then Some hit else None)
          hits
      in
      match flips with
      | [] -> N.Builder.mark_output b map.(o)
      | _ ->
        let any =
          match flips with
          | [ one ] -> one
          | _ -> N.Builder.add_node b Gate.Or (Array.of_list flips)
        in
        N.Builder.mark_output b (N.Builder.add_node b Gate.Xor [| map.(o); any |]))
    (N.outputs nl);
  N.Builder.finish b

(** Run the attack.  The budget's iteration cap bounds the number of
    disagreeing inputs the attacker is willing to enumerate (the attack is
    only viable when the disagreement set is tiny). *)
let run ?(budget = { Budget.default with Budget.max_iterations = 32 })
    ?max_patches ?(seed = 97) (locked : Locked.t) (oracle : Oracle.t) : result =
  let budget =
    match max_patches with
    | Some n -> { budget with Budget.max_iterations = n }
    | None -> budget
  in
  let clock = Budget.start budget in
  let queries0 = Oracle.num_queries oracle in
  let rng = Orap_sim.Prng.create seed in
  let ksz = Locked.key_size locked in
  let key = Orap_sim.Prng.bool_array rng ksz in
  let key2 = Orap_sim.Prng.bool_array rng ksz in
  let key2 = if key2 = key then Array.mapi (fun i b -> if i = 0 then not b else b) key2 else key2 in
  let patches, stopped = find_disagreements locked oracle key key2 ~clock in
  let outcome =
    match stopped with
    | Some o -> o
    | None ->
      let stats =
        Budget.stats_of clock ~iterations:(List.length patches)
          ~queries:(Oracle.num_queries oracle - queries0) ()
      in
      Budget.Approximate (build_patched locked key patches, stats)
  in
  { outcome; key_used = key; patches }
