(** Key-sensitization attack (Yasin et al. [5]), SAT-assisted variant.

    For each key bit the attacker searches an input pattern that propagates
    that bit to a primary output while muting the other key inputs'
    interference; applying the pattern to the oracle then reveals the bit.
    Against OraP the sensitised values come from the reset LFSR, not from
    the secret key (Section II-A), so the read-out is garbage. *)

module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Oracle = Orap_core.Oracle
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Tseitin = Orap_sat.Tseitin
module Prng = Orap_sim.Prng

type result = {
  outcome : bool array Budget.outcome;
  sensitized_bits : int;  (** bits for which a sensitising pattern existed *)
  queries : int;
}

(* find (x, k_rest) such that flipping key bit j flips some output; the
   sensitisation heuristic then assumes k_rest does not interfere *)
let sensitize (locked : Locked.t) j : (bool array * bool array) option =
  let solver = Solver.create () in
  let nl = locked.Locked.netlist in
  let nri = locked.Locked.num_regular_inputs in
  let ksz = Locked.key_size locked in
  let x_vars = Solver.new_vars solver nri in
  let k_vars = Solver.new_vars solver ksz in
  (* two copies differ only in key bit j *)
  let kj0 = Solver.new_var solver and kj1 = Solver.new_var solver in
  ignore (Solver.add_clause solver [ Lit.neg kj0 ]);
  ignore (Solver.add_clause solver [ Lit.pos kj1 ]);
  let input_var kj i =
    if i < nri then x_vars.(i)
    else if i - nri = j then kj
    else k_vars.(i - nri)
  in
  let o0 = Tseitin.output_vars nl (Tseitin.encode solver nl ~input_var:(input_var kj0)) in
  let o1 = Tseitin.output_vars nl (Tseitin.encode solver nl ~input_var:(input_var kj1)) in
  let diffs =
    Array.map2
      (fun v1 v2 ->
        let d = Solver.new_var solver in
        ignore (Solver.add_clause solver [ Lit.neg d; Lit.pos v1; Lit.pos v2 ]);
        ignore (Solver.add_clause solver [ Lit.neg d; Lit.neg v1; Lit.neg v2 ]);
        ignore (Solver.add_clause solver [ Lit.pos d; Lit.pos v1; Lit.neg v2 ]);
        ignore (Solver.add_clause solver [ Lit.pos d; Lit.neg v1; Lit.pos v2 ]);
        d)
      o0 o1
  in
  ignore (Solver.add_clause solver (Array.to_list (Array.map Lit.pos diffs)));
  match Solver.solve solver with
  | Solver.Unsat | Solver.Unknown -> None
  | Solver.Sat ->
    let x = Array.map (fun v -> Solver.model_value solver v) x_vars in
    let k_rest = Array.map (fun v -> Solver.model_value solver v) k_vars in
    Some (x, k_rest)

let run ?(budget = Budget.default) ?(seed = 61) (locked : Locked.t)
    (oracle : Oracle.t) : result =
  let clock = Budget.start budget in
  let queries0 = Oracle.num_queries oracle in
  let ksz = Locked.key_size locked in
  let rng = Prng.create seed in
  let key = Array.init ksz (fun _ -> Prng.bool rng) in
  let sensitized = ref 0 in
  let stopped = ref None in
  (try
     for j = 0 to ksz - 1 do
       (match Budget.check_iteration clock j with
       | Some r ->
         stopped := Some (Budget.Exhausted r);
         raise Exit
       | None -> ());
       match sensitize locked j with
       | None -> ()
       | Some (x, k_rest) -> (
         incr sensitized;
         match Budget.query oracle x with
         | Error r ->
           stopped := Some (Budget.Oracle_refused r);
           raise Exit
         | Ok y ->
           (* choose the bit value whose simulation matches the oracle *)
           let with_bit b =
             let k = Array.copy k_rest in
             k.(j) <- b;
             Locked.eval locked ~key:k ~inputs:x
           in
           if with_bit true = y then key.(j) <- true
           else if with_bit false = y then key.(j) <- false
           else
             (* interference: neither matches — keep the random guess *)
             ())
     done
   with Exit -> ());
  let queries = Oracle.num_queries oracle - queries0 in
  let outcome =
    match !stopped with
    | Some o -> o
    | None ->
      (* unsensitised bits stay random guesses: estimate the miss rate *)
      let err = float_of_int (ksz - !sensitized) /. float_of_int (max 1 ksz) in
      Budget.Approximate
        (key,
         Budget.stats_of clock ~iterations:ksz ~queries ~estimated_error:err ())
  in
  { outcome; sensitized_bits = !sensitized; queries }
