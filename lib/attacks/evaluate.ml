(** Post-attack evaluation: what a recovered key is actually worth. *)

module Locked = Orap_locking.Locked
module Hamming = Orap_sim.Hamming

type verdict = {
  recovered : bool;  (** attack produced some key *)
  exact : bool;  (** bitwise equal to the designer's key *)
  equivalent : bool;  (** functionally equivalent on the sample *)
  hd_vs_original : float;  (** output corruption of the recovered key, % *)
}

let no_key = { recovered = false; exact = false; equivalent = false; hd_vs_original = 100.0 }

let of_key ?(words = 32) (locked : Locked.t) (key : bool array option) :
    verdict =
  match key with
  | None -> no_key
  | Some key ->
    let hd = Locked.hamming_vs_original ~words locked key in
    {
      recovered = true;
      exact = key = locked.Locked.correct_key;
      equivalent = hd = 0.0;
      hd_vs_original = hd;
    }

(** Evaluate a structured attack outcome's recovered key (if any). *)
let of_outcome ?words (locked : Locked.t) (o : bool array Budget.outcome) :
    verdict =
  of_key ?words locked (Budget.recovered o)

let to_string v =
  if not v.recovered then "no key recovered"
  else if v.equivalent then
    Printf.sprintf "key recovered (%s, HD 0%%)"
      (if v.exact then "exact" else "equivalent")
  else Printf.sprintf "WRONG key (HD %.1f%%)" v.hd_vs_original
