(** Resource budgets and the shared attack outcome type.

    Every attack in this library runs under a {!t}: a DIP/loop iteration
    cap, an optional wall-clock deadline and an optional cumulative
    solver-conflict budget (threaded through [Solver.solve]'s
    [?conflict_limit]).  Attacks report a structured {!outcome} instead of
    the old ad-hoc [key option] / [failwith] mix, so a harness can tell
    "proved key" from "settled for an approximation" from "ran out of X"
    from "the oracle refused to answer" without pattern-matching on
    exceptions or magic [None]s. *)

module Oracle = Orap_core.Oracle
module Faulty_oracle = Orap_core.Faulty_oracle
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Telemetry = Orap_telemetry.Telemetry
module Metrics = Orap_telemetry.Metrics

(* --- why an attack stopped --- *)

type reason =
  | Iterations of int  (** the DIP/loop iteration cap *)
  | Wall_clock of float  (** the wall-clock allotment, seconds *)
  | Conflicts of int  (** the cumulative solver-conflict budget *)
  | Inconsistent  (** oracle answers fit no key (OraP's signature) *)
  | Refusal of string  (** the oracle declined to answer *)
  | No_progress of string  (** the attack found nothing to work on *)

let reason_to_string = function
  | Iterations n -> Printf.sprintf "iteration cap of %d reached" n
  | Wall_clock s -> Printf.sprintf "wall-clock budget of %.2fs spent" s
  | Conflicts n -> Printf.sprintf "solver-conflict budget of %d spent" n
  | Inconsistent -> "oracle answers are consistent with no key"
  | Refusal msg -> "oracle refused: " ^ msg
  | No_progress msg -> "no progress: " ^ msg

(* --- what an attack produced --- *)

type stats = {
  iterations : int;
  queries : int;
  elapsed_s : float;
  estimated_error : float;  (** failing fraction on the attack's own probe *)
}

type 'a outcome =
  | Exact of 'a  (** proved (miter-exhausted) recovery *)
  | Approximate of 'a * stats  (** best-effort recovery, no proof *)
  | Exhausted of reason  (** a resource budget tripped first *)
  | Oracle_refused of reason  (** the oracle stopped answering *)

let recovered = function
  | Exact x -> Some x
  | Approximate (x, _) -> Some x
  | Exhausted _ | Oracle_refused _ -> None

let succeeded o = match o with Exact _ | Approximate _ -> true | _ -> false

let outcome_to_string = function
  | Exact _ -> "exact"
  | Approximate (_, st) ->
    Printf.sprintf "approximate (est. error %.1f%%)" (100.0 *. st.estimated_error)
  | Exhausted r -> "exhausted: " ^ reason_to_string r
  | Oracle_refused r -> "refused: " ^ reason_to_string r

(* --- the budget itself --- *)

type t = {
  max_iterations : int;
  wall_clock_s : float option;
  max_conflicts : int option;
}

let default = { max_iterations = 256; wall_clock_s = None; max_conflicts = None }

let make ?(max_iterations = default.max_iterations) ?wall_clock_s ?max_conflicts
    () =
  if max_iterations < 0 then invalid_arg "Budget.make: negative max_iterations";
  (match wall_clock_s with
  | Some s when s < 0.0 -> invalid_arg "Budget.make: negative wall_clock_s"
  | _ -> ());
  (match max_conflicts with
  | Some c when c < 0 -> invalid_arg "Budget.make: negative max_conflicts"
  | _ -> ());
  { max_iterations; wall_clock_s; max_conflicts }

type clock = { budget : t; started : float }

let start budget = { budget; started = Unix.gettimeofday () }

let elapsed_s c = Unix.gettimeofday () -. c.started

let out_of_time c =
  match c.budget.wall_clock_s with
  | None -> None
  | Some limit ->
    if elapsed_s c >= limit then Some (Wall_clock limit) else None

(** [None] when iteration [i] may proceed, [Some reason] when the iteration
    cap or the deadline stops it. *)
let check_iteration c i =
  if i >= c.budget.max_iterations then Some (Iterations c.budget.max_iterations)
  else out_of_time c

(* Deadline checks cannot preempt a single [Solver.solve] call, so when a
   deadline is set the solve is sliced into conflict-limited chunks: a
   chunk that trips its limit reports Unsat with the conflict count at the
   cap, after which the deadline is rechecked and the solve resumed. *)
let conflict_slice = 4096

(** Budget-aware satisfiability: [Ok result] on an honest answer, [Error
    reason] when the conflict budget or the deadline ran out first.  [Ok]
    never carries [Solver.Unknown]: an indeterminate chunk either resumes
    or becomes an [Error]. *)
let solve c ?(assumptions = [||]) (s : Solver.t) :
    (Solver.result, reason) result =
  let cap_abs =
    match c.budget.max_conflicts with Some n -> n | None -> max_int
  in
  let rec go () =
    match out_of_time c with
    | Some r -> Error r
    | None ->
      if Solver.num_conflicts s >= cap_abs then Error (Conflicts cap_abs)
      else begin
        let cap =
          match c.budget.wall_clock_s with
          | Some _ -> min cap_abs (Solver.num_conflicts s + conflict_slice)
          | None -> cap_abs
        in
        if cap = max_int then Ok (Solver.solve ~assumptions s)
        else
          match Solver.solve ~assumptions ~conflict_limit:cap s with
          | (Solver.Sat | Solver.Unsat) as r -> Ok r
          | Solver.Unknown ->
            (* the chunk's limit tripped: recheck budgets, resume *)
            if Solver.num_conflicts s >= cap_abs then Error (Conflicts cap_abs)
            else go ()
      end
  in
  let conflicts0 = Solver.num_conflicts s in
  let decisions0 = Solver.num_decisions s in
  let propagations0 = Solver.num_propagations s in
  Metrics.incr (Metrics.counter "solver.solves");
  (* record per-solve statistic deltas; returns the span args so the same
     closure also serves [Telemetry.span]'s exit hook *)
  let record r =
    let dc = Solver.num_conflicts s - conflicts0 in
    let dd = Solver.num_decisions s - decisions0 in
    let dp = Solver.num_propagations s - propagations0 in
    Metrics.add (Metrics.counter "solver.conflicts") dc;
    Metrics.add (Metrics.counter "solver.decisions") dd;
    Metrics.add (Metrics.counter "solver.propagations") dp;
    [
      ( "result",
        Telemetry.String
          (match r with
          | Ok Solver.Sat -> "sat"
          | Ok Solver.Unsat -> "unsat"
          | Ok Solver.Unknown -> "unknown"
          | Error reason -> reason_to_string reason) );
      ("conflicts", Telemetry.Int dc);
      ("decisions", Telemetry.Int dd);
      ("propagations", Telemetry.Int dp);
    ]
  in
  if Telemetry.enabled () then
    Telemetry.span "solver.solve" ~exit_args:record go
  else begin
    let r = go () in
    ignore (record r);
    r
  end

(** Oracle query that converts {!Faulty_oracle.Refused} into a reason. *)
let query (oracle : Oracle.t) inputs : (bool array, reason) result =
  match Oracle.query oracle inputs with
  | y -> Ok y
  | exception Faulty_oracle.Refused msg -> Error (Refusal msg)

let stats_of c ~iterations ~queries ?(estimated_error = 0.0) () =
  { iterations; queries; elapsed_s = elapsed_s c; estimated_error }
