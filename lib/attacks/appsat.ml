(** AppSAT [11]: approximate SAT attack.  The DIP loop is augmented with
    periodic random-query probes; when the candidate key's error rate on
    random patterns drops below a threshold, the attack settles for an
    approximate key instead of waiting for full miter exhaustion (which
    point-function defences like SARLock push to 2^k iterations). *)

module Locked = Orap_locking.Locked
module Oracle = Orap_core.Oracle
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Prng = Orap_sim.Prng
module Telemetry = Orap_telemetry.Telemetry

type result = {
  outcome : bool array Budget.outcome;
  iterations : int;
  queries : int;  (** oracle queries made by THIS run (delta, not lifetime) *)
  conflicts : int;  (** solver conflicts spent by this run *)
  elapsed_s : float;
}

let run ?(budget = Budget.default) ?max_iterations ?(probe_every = 8)
    ?(probe_size = 32) ?(error_threshold = 0.01) ?(seed = 4242)
    (locked : Locked.t) (oracle : Oracle.t) : result =
  let budget =
    match max_iterations with
    | Some n -> { budget with Budget.max_iterations = n }
    | None -> budget
  in
  let clock = Budget.start budget in
  let st = Sat_attack.make_state locked in
  let rng = Prng.create seed in
  let nri = locked.Locked.num_regular_inputs in
  let queries0 = Oracle.num_queries oracle in
  let queries_here () = Oracle.num_queries oracle - queries0 in
  let finish outcome iters =
    { outcome; iterations = iters; queries = queries_here ();
      conflicts = Solver.num_conflicts st.Sat_attack.solver;
      elapsed_s = Budget.elapsed_s clock }
  in
  (* probe the current constraint-consistent key on random queries *)
  let probe () =
    match
      Budget.solve clock
        ~assumptions:[| Lit.negate st.Sat_attack.activate |]
        st.Sat_attack.solver
    with
    | Error r -> Error (Budget.Exhausted r)
    | Ok Solver.Unknown -> assert false (* Budget.solve never returns it *)
    | Ok Solver.Unsat -> Error (Budget.Exhausted Budget.Inconsistent)
    | Ok Solver.Sat ->
      let key = Sat_attack.extract_key st st.Sat_attack.k1_vars in
      Solver.backtrack_to_root st.Sat_attack.solver;
      let errors = ref 0 in
      let failing = ref [] in
      let refused = ref None in
      (try
         for _ = 1 to probe_size do
           let x = Prng.bool_array rng nri in
           match Budget.query oracle x with
           | Error r ->
             refused := Some r;
             raise Exit
           | Ok y ->
             if Locked.eval locked ~key ~inputs:x <> y then begin
               incr errors;
               failing := (x, y) :: !failing
             end
         done
       with Exit -> ());
      (match !refused with
      | Some r -> Error (Budget.Oracle_refused r)
      | None ->
        Ok (key, float_of_int !errors /. float_of_int probe_size, !failing))
  in
  let rec loop iters =
    match Budget.check_iteration clock iters with
    | Some r -> finish (Budget.Exhausted r) iters
    | None ->
      if iters > 0 && iters mod probe_every = 0 then begin
        match probe () with
        | Error outcome -> finish outcome iters
        | Ok (key, err, failing) ->
          if err <= error_threshold then
            let stats =
              Budget.stats_of clock ~iterations:iters
                ~queries:(queries_here ()) ~estimated_error:err ()
            in
            finish (Budget.Approximate (key, stats)) iters
          else begin
            (* failing probes double as constraints, as in AppSAT *)
            List.iter (fun (x, y) -> Sat_attack.add_io_constraint st x y) failing;
            dip_step iters
          end
      end
      else dip_step iters
  and dip_step iters =
    match
      Telemetry.span "appsat.iteration"
        ~args:[ ("iter", Telemetry.Int iters) ]
        (fun () ->
          Budget.solve clock ~assumptions:[| st.Sat_attack.activate |]
            st.Sat_attack.solver)
    with
    | Error r -> finish (Budget.Exhausted r) iters
    | Ok Solver.Unknown -> assert false
    | Ok Solver.Sat -> (
      let dip = Sat_attack.extract_key st st.Sat_attack.x_vars in
      Solver.backtrack_to_root st.Sat_attack.solver;
      match Budget.query oracle dip with
      | Error r -> finish (Budget.Oracle_refused r) iters
      | Ok y ->
        Sat_attack.add_io_constraint st dip y;
        loop (iters + 1))
    | Ok Solver.Unsat -> (
      match
        Budget.solve clock
          ~assumptions:[| Lit.negate st.Sat_attack.activate |]
          st.Sat_attack.solver
      with
      | Error r -> finish (Budget.Exhausted r) iters
      | Ok Solver.Unknown -> assert false
      | Ok Solver.Sat ->
        let key = Sat_attack.extract_key st st.Sat_attack.k1_vars in
        Solver.backtrack_to_root st.Sat_attack.solver;
        finish (Budget.Exact key) iters
      | Ok Solver.Unsat -> finish (Budget.Exhausted Budget.Inconsistent) iters)
  in
  Telemetry.span "appsat.run"
    ~exit_args:(fun r ->
      [
        ("iterations", Telemetry.Int r.iterations);
        ("queries", Telemetry.Int r.queries);
        ("conflicts", Telemetry.Int r.conflicts);
        ("outcome", Telemetry.String (Budget.outcome_to_string r.outcome));
      ])
    (fun () -> loop 0)
