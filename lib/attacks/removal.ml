(** Removal attack [9]: strip everything driven by the key inputs and
    splice the key gates' functional inputs through.

    On a freshly locked netlist whose key gates are still structurally
    identifiable (named key inputs, XOR/XNOR fed by a control gate in the
    key inputs' fanout cone) the attack recovers the original circuit — the
    reason locked designs are resynthesised before hand-off.  After
    resynthesis (strash/refactor/rewrite) the key logic dissolves into the
    surrounding AIG and the identification heuristic collapses.  Against
    OraP, removing the LFSR and key gates does not unlock anything either
    way (Section II-A): the attacker obtains the locked function, not the
    original. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Locked = Orap_locking.Locked

type result = {
  netlist : N.t;  (** the circuit after removal *)
  removed_key_gates : int;  (** XOR/XNOR splice points undone *)
}

(** Structural identification: a node is a key gate if it is a 2-input
    XOR/XNOR with exactly one *pure-key* fanin — a node whose entire input
    support consists of key inputs (a key input itself, an inverted one, or
    a control gate over key literals).  The convention (key gates pass when
    the pure-key side is at its inactive value) matches both XOR/NAND and
    XNOR/AND locking flavours. *)
let identify_key_gates (locked : Locked.t) : (int * int) list =
  let nl = locked.Locked.netlist in
  let n = N.num_nodes nl in
  (* pure-key: every PI in the node's support is a key input *)
  let is_key_input = Array.make n false in
  Array.iter
    (fun pos -> is_key_input.((N.inputs nl).(pos)) <- true)
    (Locked.key_input_positions locked);
  let pure = Array.make n false in
  for i = 0 to n - 1 do
    pure.(i) <-
      (match N.kind nl i with
      | Gate.Input -> is_key_input.(i)
      | Gate.Const0 | Gate.Const1 -> false
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor | Gate.Mux ->
        Array.length (N.fanins nl i) > 0
        && Array.for_all (fun f -> pure.(f)) (N.fanins nl i))
  done;
  let gates = ref [] in
  for i = 0 to n - 1 do
    match N.kind nl i with
    | Gate.Xor | Gate.Xnor ->
      let fan = N.fanins nl i in
      if Array.length fan = 2 then begin
        match (pure.(fan.(0)), pure.(fan.(1))) with
        | true, false -> gates := (i, fan.(1)) :: !gates
        | false, true -> gates := (i, fan.(0)) :: !gates
        | true, true | false, false -> ()
      end
    | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not
    | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Mux ->
      ()
  done;
  List.rev !gates

(** Execute the removal: every identified key gate is replaced by its clean
    (non-key-cone) fanin; key inputs remain as dangling inputs. *)
let attack (locked : Locked.t) : result =
  let nl = locked.Locked.netlist in
  let splices = identify_key_gates locked in
  let splice_of = Hashtbl.create 16 in
  List.iter (fun (g, keep) -> Hashtbl.replace splice_of g keep) splices;
  let b = N.Builder.create ~size_hint:(N.num_nodes nl) () in
  let map = Array.make (N.num_nodes nl) (-1) in
  for i = 0 to N.num_nodes nl - 1 do
    match N.kind nl i with
    | Gate.Input -> map.(i) <- N.Builder.add_input b
    | k -> (
      match Hashtbl.find_opt splice_of i with
      | Some keep -> map.(i) <- map.(keep)
      | None ->
        map.(i) <-
          N.Builder.add_node b k (Array.map (fun f -> map.(f)) (N.fanins nl i)))
  done;
  Array.iter (fun o -> N.Builder.mark_output b map.(o)) (N.outputs nl);
  { netlist = N.Builder.finish b; removed_key_gates = List.length splices }

(** Structured entry point: removal under the shared outcome type.  The
    attack is purely structural — it fails only by identifying nothing. *)
let run ?(budget = Budget.default) (locked : Locked.t) :
    N.t Budget.outcome * result =
  let clock = Budget.start budget in
  let r = attack locked in
  let outcome =
    if r.removed_key_gates = 0 then
      Budget.Exhausted
        (Budget.No_progress "no structurally identifiable key gates")
    else
      Budget.Approximate
        (r.netlist, Budget.stats_of clock ~iterations:r.removed_key_gates ~queries:0 ())
  in
  (outcome, r)

(** Does the removal recover the original function?  (Checked on random
    patterns over the original inputs; the removed netlist still carries
    the dangling key inputs, which are driven arbitrarily.) *)
let recovers_original ?(seed = 77) ?(n = 128) (locked : Locked.t) (r : result) :
    bool =
  let rng = Orap_sim.Prng.create seed in
  let nri = locked.Locked.num_regular_inputs in
  let total = N.num_inputs r.netlist in
  let ok = ref true in
  for _ = 1 to n do
    let inp = Orap_sim.Prng.bool_array rng total in
    let base = Array.sub inp 0 nri in
    let got = Orap_sim.Sim.eval_bools r.netlist inp in
    let want = Orap_sim.Sim.eval_bools locked.Locked.original base in
    if got <> want then ok := false
  done;
  !ok
