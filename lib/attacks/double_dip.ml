(** Double DIP [10]: every distinguishing input must rule out at least two
    wrong keys at once.  The miter carries two independent key *pairs*; a
    2-distinguishing input makes both pairs disagree simultaneously while
    the pairs are kept distinct, which defeats one-key-per-iteration
    defences such as SARLock. *)

module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Oracle = Orap_core.Oracle
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Tseitin = Orap_sat.Tseitin
module Telemetry = Orap_telemetry.Telemetry

type result = {
  outcome : bool array Budget.outcome;
  iterations : int;
  queries : int;  (** oracle queries made by THIS run (delta, not lifetime) *)
  conflicts : int;  (** solver conflicts spent by this run *)
  elapsed_s : float;
}

let run ?(budget = { Budget.default with Budget.max_iterations = 128 })
    ?max_iterations (locked : Locked.t) (oracle : Oracle.t) : result =
  let budget =
    match max_iterations with
    | Some n -> { budget with Budget.max_iterations = n }
    | None -> budget
  in
  let clock = Budget.start budget in
  let solver = Solver.create () in
  let nl = locked.Locked.netlist in
  let nri = locked.Locked.num_regular_inputs in
  let ksz = Locked.key_size locked in
  let x_vars = Solver.new_vars solver nri in
  let keys = Array.init 4 (fun _ -> Solver.new_vars solver ksz) in
  let input_var kv i = if i < nri then x_vars.(i) else kv.(i - nri) in
  let outs =
    Array.map
      (fun kv ->
        Tseitin.output_vars nl (Tseitin.encode solver nl ~input_var:(input_var kv)))
      keys
  in
  let a_var = Solver.new_var solver in
  let activate = Lit.pos a_var in
  let add c = ignore (Solver.add_clause solver c) in
  let xor_var v1 v2 =
    let d = Solver.new_var solver in
    add [ Lit.neg d; Lit.pos v1; Lit.pos v2 ];
    add [ Lit.neg d; Lit.neg v1; Lit.neg v2 ];
    add [ Lit.pos d; Lit.pos v1; Lit.neg v2 ];
    add [ Lit.pos d; Lit.neg v1; Lit.pos v2 ];
    d
  in
  let diff_clause o1 o2 =
    let diffs = Array.map2 xor_var o1 o2 in
    add (Lit.neg a_var :: Array.to_list (Array.map Lit.pos diffs))
  in
  (* both pairs must disagree on the same input *)
  diff_clause outs.(0) outs.(1);
  diff_clause outs.(2) outs.(3);
  (* and the pairs must differ somewhere (key 0 <> key 2) *)
  let kdiffs = Array.map2 xor_var keys.(0) keys.(2) in
  add (Lit.neg a_var :: Array.to_list (Array.map Lit.pos kdiffs));
  let const_true = Solver.new_var solver in
  let const_false = Solver.new_var solver in
  add [ Lit.pos const_true ];
  add [ Lit.neg const_false ];
  let constrain dip y =
    Array.iter
      (fun kv ->
        let fixed i =
          if i < nri then if dip.(i) then const_true else const_false
          else kv.(i - nri)
        in
        let nodes = Tseitin.encode solver nl ~input_var:fixed in
        Array.iteri
          (fun j ov ->
            add [ (if y.(j) then Lit.pos ov else Lit.neg ov) ])
          (Tseitin.output_vars nl nodes))
      keys
  in
  let queries0 = Oracle.num_queries oracle in
  let finish outcome iters =
    { outcome; iterations = iters;
      queries = Oracle.num_queries oracle - queries0;
      conflicts = Solver.num_conflicts solver;
      elapsed_s = Budget.elapsed_s clock }
  in
  let rec loop iters =
    match Budget.check_iteration clock iters with
    | Some r -> finish (Budget.Exhausted r) iters
    | None -> (
      match
        Telemetry.span "double_dip.iteration"
          ~args:[ ("iter", Telemetry.Int iters) ]
          (fun () -> Budget.solve clock ~assumptions:[| activate |] solver)
      with
      | Error r -> finish (Budget.Exhausted r) iters
      | Ok Solver.Unknown -> assert false (* Budget.solve never returns it *)
      | Ok Solver.Sat -> (
        let dip = Array.map (fun v -> Solver.model_value solver v) x_vars in
        Solver.backtrack_to_root solver;
        match Budget.query oracle dip with
        | Error r -> finish (Budget.Oracle_refused r) iters
        | Ok y ->
          constrain dip y;
          loop (iters + 1))
      | Ok Solver.Unsat -> (
        match Budget.solve clock ~assumptions:[| Lit.negate activate |] solver with
        | Error r -> finish (Budget.Exhausted r) iters
        | Ok Solver.Unknown -> assert false
        | Ok Solver.Sat ->
          let key = Array.map (fun v -> Solver.model_value solver v) keys.(0) in
          Solver.backtrack_to_root solver;
          finish (Budget.Exact key) iters
        | Ok Solver.Unsat -> finish (Budget.Exhausted Budget.Inconsistent) iters))
  in
  Telemetry.span "double_dip.run"
    ~exit_args:(fun r ->
      [
        ("iterations", Telemetry.Int r.iterations);
        ("queries", Telemetry.Int r.queries);
        ("conflicts", Telemetry.Int r.conflicts);
        ("outcome", Telemetry.String (Budget.outcome_to_string r.outcome));
      ])
    (fun () -> loop 0)
