(** Resource budgets and the shared attack outcome type.

    Attacks run under a {!t} (iteration cap, optional wall-clock deadline,
    optional cumulative solver-conflict budget) and report a structured
    {!outcome} instead of ad-hoc [key option]s and [failwith]s. *)

(** Why an attack stopped short of an exact key. *)
type reason =
  | Iterations of int  (** the DIP/loop iteration cap *)
  | Wall_clock of float  (** the wall-clock allotment, seconds *)
  | Conflicts of int  (** the cumulative solver-conflict budget *)
  | Inconsistent  (** oracle answers fit no key (OraP's signature) *)
  | Refusal of string  (** the oracle declined to answer *)
  | No_progress of string  (** the attack found nothing to work on *)

val reason_to_string : reason -> string

type stats = {
  iterations : int;
  queries : int;
  elapsed_s : float;
  estimated_error : float;  (** failing fraction on the attack's own probe *)
}

(** The shared result type of every attack: ['a] is the recovered artefact
    — a key ([bool array]) for key-recovery attacks, a netlist for the
    structural ones (bypass, SPS, removal). *)
type 'a outcome =
  | Exact of 'a  (** proved (miter-exhausted) recovery *)
  | Approximate of 'a * stats  (** best-effort recovery, no proof *)
  | Exhausted of reason  (** a resource budget tripped first *)
  | Oracle_refused of reason  (** the oracle stopped answering *)

(** The recovered artefact, if any. *)
val recovered : 'a outcome -> 'a option

val succeeded : 'a outcome -> bool
val outcome_to_string : 'a outcome -> string

type t = {
  max_iterations : int;
  wall_clock_s : float option;
  max_conflicts : int option;
}

(** 256 iterations, no deadline, no conflict budget. *)
val default : t

val make :
  ?max_iterations:int -> ?wall_clock_s:float -> ?max_conflicts:int -> unit -> t

(** A started budget (captures the start time). *)
type clock

val start : t -> clock
val elapsed_s : clock -> float

(** [None] when iteration [i] may proceed, [Some reason] when the
    iteration cap or the deadline stops it. *)
val check_iteration : clock -> int -> reason option

(** Budget-aware satisfiability: threads the remaining conflict budget
    through [Solver.solve]'s [?conflict_limit] and slices long solves so a
    wall-clock deadline is honoured to ~thousands of conflicts.  [Ok
    result] is an honest answer and never carries [Solver.Unknown] — an
    indeterminate chunk resumes or becomes [Error]; in particular a
    genuine [Unsat] proved on exactly the cap-th conflict is [Ok Unsat].
    [Error reason] means a budget ran out mid-solve.  Each call emits one
    ["solver.solve"] telemetry span carrying conflict/decision/propagation
    deltas, and always feeds the [solver.*] metrics counters. *)
val solve :
  clock ->
  ?assumptions:Orap_sat.Lit.t array ->
  Orap_sat.Solver.t ->
  (Orap_sat.Solver.result, reason) result

(** Oracle query that converts {!Orap_core.Faulty_oracle.Refused} into
    [Error (Refusal _)]. *)
val query : Orap_core.Oracle.t -> bool array -> (bool array, reason) result

val stats_of :
  clock ->
  iterations:int ->
  queries:int ->
  ?estimated_error:float ->
  unit ->
  stats
