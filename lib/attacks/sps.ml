(** Signal-probability-skew (SPS) analysis — the attack of Yasin et al. [9]
    that defeats Anti-SAT by locating the block's flip signal, whose
    probability of being 1 is extremely skewed.

    Given a locked netlist, signal probabilities are estimated by random
    simulation over inputs *and* key inputs; gates whose output probability
    is within [epsilon] of 0 or 1 — but not structurally constant — are
    flagged.  Anti-SAT's Y = g AND NOT g' lights up immediately; weighted
    logic locking and OraP expose no such signal (Section II-A: "neither has
    signals with high probability skew"). *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Locked = Orap_locking.Locked
module Sim = Orap_sim.Sim
module Prng = Orap_sim.Prng

type finding = {
  node : int;
  probability : float;  (** estimated P(node = 1) *)
  fanout : int;
}

type report = {
  findings : finding list;  (** skewed internal signals, most skewed first *)
  max_skew : float;  (** max |P - 0.5| over internal nodes, in [0, 0.5] *)
}

(** Estimated P(=1) of every node over [words] random 64-pattern words
    (inputs and key inputs both random, as the attacker would drive them). *)
let signal_probabilities ?(seed = 2024) ?(words = 64) (nl : N.t) : float array =
  let n = N.num_nodes nl in
  let ones = Array.make n 0 in
  let rng = Prng.create seed in
  let ni = N.num_inputs nl in
  let input_buf = Array.make ni 0L in
  for _ = 1 to words do
    for i = 0 to ni - 1 do
      input_buf.(i) <- Prng.next64 rng
    done;
    let values = Sim.eval_word nl ~input_word:(fun i -> input_buf.(i)) in
    for i = 0 to n - 1 do
      ones.(i) <- ones.(i) + Sim.popcount64 values.(i)
    done
  done;
  let total = float_of_int (64 * words) in
  Array.map (fun c -> float_of_int c /. total) ones

let analyze ?(seed = 2024) ?(words = 64) ?(epsilon = 0.01) (nl : N.t) : report =
  let probs = signal_probabilities ~seed ~words nl in
  let fanouts = N.fanouts nl in
  let findings = ref [] in
  let max_skew = ref 0.0 in
  for i = 0 to N.num_nodes nl - 1 do
    match N.kind nl i with
    | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
    | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
    | Gate.Xor | Gate.Xnor | Gate.Mux ->
      let p = probs.(i) in
      let skew = abs_float (p -. 0.5) in
      if skew > !max_skew then max_skew := skew;
      (* skewed but not stuck: the Anti-SAT flip signal is ~never 1 but can
         be 1, so p in (0, eps] or [1-eps, 1) *)
      if
        Array.length fanouts.(i) > 0
        && ((p > 0.0 && p <= epsilon) || (p < 1.0 && p >= 1.0 -. epsilon))
      then
        findings :=
          { node = i; probability = p; fanout = Array.length fanouts.(i) }
          :: !findings
  done;
  let sorted =
    List.sort
      (fun a b ->
        compare
          (abs_float (b.probability -. 0.5))
          (abs_float (a.probability -. 0.5)))
      !findings
  in
  { findings = sorted; max_skew = !max_skew }

(** Run the full SPS attack on a locked circuit: locate the most skewed
    signal and *remove* it (replace it by its skewed constant), hoping to
    strip a point-function block.  Returns the repaired netlist when a
    candidate was found. *)
let attack ?(seed = 2024) ?(words = 64) ?(epsilon = 0.01) (locked : Locked.t) :
    (N.t * finding) option =
  let nl = locked.Locked.netlist in
  let r = analyze ~seed ~words ~epsilon nl in
  match r.findings with
  | [] -> None
  | best :: _ ->
    let constant = best.probability < 0.5 in
    (* rebuild with the skewed node tied to its constant *)
    let b = N.Builder.create ~size_hint:(N.num_nodes nl) () in
    let map = Array.make (N.num_nodes nl) (-1) in
    for i = 0 to N.num_nodes nl - 1 do
      match N.kind nl i with
      | Gate.Input -> map.(i) <- N.Builder.add_input b
      | k ->
        if i = best.node then
          map.(i) <-
            N.Builder.add_node b (if constant then Gate.Const0 else Gate.Const1) [||]
        else
          map.(i) <-
            N.Builder.add_node b k (Array.map (fun f -> map.(f)) (N.fanins nl i))
    done;
    Array.iter (fun o -> N.Builder.mark_output b map.(o)) (N.outputs nl);
    Some (N.Builder.finish b, best)

type result = {
  outcome : N.t Budget.outcome;  (** the repaired netlist, when found *)
  report : report;
  finding : finding option;  (** the signal that was removed *)
}

(** Structured entry point: run the analysis and removal under a budget
    (wall-clock only — SPS is simulation-based, no oracle, no solver). *)
let run ?(budget = Budget.default) ?(seed = 2024) ?(words = 64)
    ?(epsilon = 0.01) (locked : Locked.t) : result =
  let clock = Budget.start budget in
  let report = analyze ~seed ~words ~epsilon locked.Locked.netlist in
  match attack ~seed ~words ~epsilon locked with
  | None ->
    { outcome =
        Budget.Exhausted
          (Budget.No_progress "no skewed internal signal to remove");
      report; finding = None }
  | Some (repaired, best) ->
    let stats = Budget.stats_of clock ~iterations:words ~queries:0 () in
    { outcome = Budget.Approximate (repaired, stats); report;
      finding = Some best }
