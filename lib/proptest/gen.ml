(** See gen.mli. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Prng = Orap_sim.Prng
module Benchgen = Orap_benchgen.Benchgen

type 'a t = Prng.t -> 'a

let return x _ = x
let map f g rng = f (g rng)
let bind g f rng = f (g rng) rng
let pair a b rng =
  let x = a rng in
  let y = b rng in
  (x, y)

let triple a b c rng =
  let x = a rng in
  let y = b rng in
  let z = c rng in
  (x, y, z)

let bool rng = Prng.bool rng

let int_range lo hi rng =
  if lo > hi then invalid_arg "Gen.int_range";
  lo + Prng.int rng (hi - lo + 1)

let bool_array n rng = Prng.bool_array rng n

let oneof arr rng =
  if Array.length arr = 0 then invalid_arg "Gen.oneof";
  arr.(Prng.int rng (Array.length arr))

let list_of len g rng =
  let n = len rng in
  List.init n (fun _ -> g rng)

(* --- netlists --- *)

type netlist_params = {
  inputs : int * int;
  outputs : int * int;
  gates : int * int;
  max_fanin : int;
  max_fanout : int;
  kinds : Gate.kind array;
  locality : int;
}

(* weighted multiset: associative gates dominate, Mux and inverter-likes
   frequent enough to exercise every eval/encode path, constants rare *)
let full_kinds =
  [|
    Gate.And; Gate.And; Gate.And; Gate.Nand; Gate.Nand; Gate.Nand;
    Gate.Or; Gate.Or; Gate.Nor; Gate.Nor; Gate.Xor; Gate.Xor; Gate.Xnor;
    Gate.Not; Gate.Not; Gate.Buf; Gate.Mux; Gate.Mux;
    Gate.Const0; Gate.Const1;
  |]

let default_params =
  {
    inputs = (4, 8);
    outputs = (2, 5);
    gates = (15, 60);
    max_fanin = 4;
    max_fanout = 6;
    kinds = full_kinds;
    locality = 25;
  }

let tiny_params =
  { default_params with inputs = (2, 5); outputs = (1, 3); gates = (3, 18) }

let netlist ?(params = default_params) () rng =
  let lo_i, hi_i = params.inputs in
  let ni = int_range (max 1 lo_i) hi_i rng in
  let no = int_range (max 1 (fst params.outputs)) (snd params.outputs) rng in
  let ng = int_range (max 1 (fst params.gates)) (snd params.gates) rng in
  let b = N.Builder.create ~size_hint:(ni + ng + 2) () in
  for _ = 1 to ni do
    ignore (N.Builder.add_input b)
  done;
  (* reader counts, for the soft fanout cap *)
  let fanout = ref (Array.make (ni + ng + 2) 0) in
  let ensure_capacity len =
    if len > Array.length !fanout then begin
      let bigger = Array.make (2 * len) 0 in
      Array.blit !fanout 0 bigger 0 (Array.length !fanout);
      fanout := bigger
    end
  in
  let pick_fanin () =
    let len = N.Builder.length b in
    let candidate () =
      if Prng.int rng 100 < params.locality then
        len - 1 - Prng.int rng (min len 16)
      else Prng.int rng len
    in
    if params.max_fanout <= 0 then candidate ()
    else begin
      (* a few redraws steer away from saturated nodes without ever failing *)
      let rec attempt k =
        let c = candidate () in
        if k = 0 || !fanout.(c) < params.max_fanout then c
        else attempt (k - 1)
      in
      attempt 3
    end
  in
  for _ = 1 to ng do
    let kind = oneof params.kinds rng in
    let arity =
      match Gate.arity kind with
      | `Exactly n -> n
      | `At_least n ->
        let extra =
          match Prng.int rng 10 with
          | 0 -> 2
          | 1 | 2 | 3 -> 1
          | _ -> 0
        in
        min params.max_fanin (max n (1 + extra))
    in
    let fan = Array.init arity (fun _ -> pick_fanin ()) in
    (* avoid the x-op-x degeneracy for binary gates (it collapses XOR/XNOR
       to constants and hides real gate behaviour) *)
    if arity = 2 && fan.(0) = fan.(1) then
      fan.(1) <- (fan.(0) + 1) mod N.Builder.length b;
    let id = N.Builder.add_node b kind fan in
    ensure_capacity (id + 1);
    Array.iter (fun f -> !fanout.(f) <- !fanout.(f) + 1) fan
  done;
  let len = N.Builder.length b in
  (* prefer sinks as outputs (in id order, deterministically), then top up
     with random nodes; repetitions are legal but avoided while possible *)
  let sinks = ref [] in
  for i = len - 1 downto 0 do
    if !fanout.(i) = 0 then sinks := i :: !sinks
  done;
  let marked = Hashtbl.create 16 in
  let n_marked = ref 0 in
  let mark id =
    if !n_marked < no && not (Hashtbl.mem marked id) then begin
      Hashtbl.replace marked id ();
      N.Builder.mark_output b id;
      incr n_marked
    end
  in
  List.iter mark !sinks;
  let guard = ref (8 * no) in
  while !n_marked < no && !guard > 0 do
    decr guard;
    mark (Prng.int rng len)
  done;
  (* tiny circuits can exhaust distinct nodes: repeat the last sink *)
  while !n_marked < no do
    N.Builder.mark_output b (len - 1);
    incr n_marked
  done;
  N.Builder.finish b

let benchgen_netlist ~inputs ~outputs ~gates rng =
  Benchgen.generate
    {
      Benchgen.seed = Prng.int rng 0x3FFFFFFF;
      num_inputs = inputs;
      num_outputs = outputs;
      num_gates = gates;
    }

let profile_netlist ?(factor = 100) profile rng =
  let p = Benchgen.scale ~factor profile in
  benchgen_netlist ~inputs:p.Benchgen.inputs ~outputs:p.Benchgen.outputs
    ~gates:p.Benchgen.gates rng

(* --- mutation --- *)

let dual = function
  | Gate.And -> Some Gate.Nand
  | Gate.Nand -> Some Gate.And
  | Gate.Or -> Some Gate.Nor
  | Gate.Nor -> Some Gate.Or
  | Gate.Xor -> Some Gate.Xnor
  | Gate.Xnor -> Some Gate.Xor
  | Gate.Buf -> Some Gate.Not
  | Gate.Not -> Some Gate.Buf
  | Gate.Const0 -> Some Gate.Const1
  | Gate.Const1 -> Some Gate.Const0
  | Gate.Mux | Gate.Input -> None

let mutant nl rng =
  let n = N.num_nodes nl in
  let logic =
    Array.of_list
      (List.filter
         (fun i -> N.kind nl i <> Gate.Input)
         (List.init n (fun i -> i)))
  in
  let target =
    if Array.length logic = 0 then -1 else oneof logic rng
  in
  let b = N.Builder.create ~size_hint:n () in
  for i = 0 to n - 1 do
    match N.kind nl i with
    | Gate.Input -> ignore (N.Builder.add_input b)
    | k ->
      let fan = Array.copy (N.fanins nl i) in
      let k =
        if i <> target then k
        else
          match dual k with
          | Some k' -> k'
          | None ->
            (* Mux: swap the data branches (changes the function unless the
               branches happen to coincide) *)
            let a = fan.(1) in
            fan.(1) <- fan.(2);
            fan.(2) <- a;
            k
      in
      ignore (N.Builder.add_node b k fan)
  done;
  Array.iter (fun o -> N.Builder.mark_output b o) (N.outputs nl);
  N.Builder.finish b
