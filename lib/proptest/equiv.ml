(** See equiv.mli. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Sim = Orap_sim.Sim
module Solver = Orap_sat.Solver
module Lit = Orap_sat.Lit
module Tseitin = Orap_sat.Tseitin

type verdict = Equivalent | Inequivalent of bool array

exception Incomparable of string

let incomparablef fmt =
  Printf.ksprintf (fun s -> raise (Incomparable s)) fmt

let require_same_interface a b =
  if N.num_inputs a <> N.num_inputs b then
    incomparablef "input counts differ: %d vs %d" (N.num_inputs a)
      (N.num_inputs b);
  if N.num_outputs a <> N.num_outputs b then
    incomparablef "output counts differ: %d vs %d" (N.num_outputs a)
      (N.num_outputs b)

let sat_equiv a b =
  require_same_interface a b;
  let solver = Solver.create () in
  let ni = N.num_inputs a in
  let x_vars = Solver.new_vars solver ni in
  let va = Tseitin.encode solver a ~input_var:(fun i -> x_vars.(i)) in
  let vb = Tseitin.encode solver b ~input_var:(fun i -> x_vars.(i)) in
  let oa = Tseitin.output_vars a va and ob = Tseitin.output_vars b vb in
  let add c = ignore (Solver.add_clause solver c) in
  let diffs =
    Array.map2
      (fun v1 v2 ->
        let d = Solver.new_var solver in
        add [ Lit.neg d; Lit.pos v1; Lit.pos v2 ];
        add [ Lit.neg d; Lit.neg v1; Lit.neg v2 ];
        add [ Lit.pos d; Lit.pos v1; Lit.neg v2 ];
        add [ Lit.pos d; Lit.neg v1; Lit.pos v2 ];
        d)
      oa ob
  in
  add (Array.to_list (Array.map Lit.pos diffs));
  match Solver.solve solver with
  | Solver.Unknown -> assert false (* no conflict_limit: cannot happen *)
  | Solver.Unsat -> Equivalent
  | Solver.Sat ->
    Inequivalent (Array.map (fun v -> Solver.model_value solver v) x_vars)

let max_exhaustive_inputs = 12

(* the word of input [i] when simulating patterns [w*64 .. w*64+63]:
   pattern p assigns bit i of p to input i *)
let input_word_for ~word_index i =
  if i < 6 then
    [|
      0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
      0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L;
    |].(i)
  else if (word_index lsr (i - 6)) land 1 = 1 then Int64.minus_one
  else 0L

let exhaustive_equiv a b =
  require_same_interface a b;
  let ni = N.num_inputs a in
  if ni > max_exhaustive_inputs then
    incomparablef "%d inputs exceed the exhaustive cap of %d" ni
      max_exhaustive_inputs;
  let patterns = 1 lsl ni in
  let words = max 1 (patterns / 64) in
  let live_bits = min patterns 64 in
  let result = ref Equivalent in
  (try
     for w = 0 to words - 1 do
       let input_word i = input_word_for ~word_index:w i in
       let va = Sim.eval_word a ~input_word in
       let vb = Sim.eval_word b ~input_word in
       let oa = Sim.output_words a va and ob = Sim.output_words b vb in
       let diff = ref 0L in
       Array.iteri
         (fun j wa -> diff := Int64.logor !diff (Int64.logxor wa ob.(j)))
         oa;
       if live_bits < 64 then
         diff :=
           Int64.logand !diff
             (Int64.sub (Int64.shift_left 1L live_bits) 1L);
       if !diff <> 0L then begin
         (* lowest differing pattern in this word *)
         let bit = ref 0 in
         while Int64.logand (Int64.shift_right_logical !diff !bit) 1L = 0L do
           incr bit
         done;
         let p = (w * 64) + !bit in
         result :=
           Inequivalent (Array.init ni (fun i -> (p lsr i) land 1 = 1));
         raise Exit
       end
     done
   with Exit -> ());
  !result

let check ?(method_ = `Auto) a b =
  match method_ with
  | `Sat -> sat_equiv a b
  | `Exhaustive -> exhaustive_equiv a b
  | `Auto ->
    if N.num_inputs a <= max_exhaustive_inputs && N.num_inputs a = N.num_inputs b
    then exhaustive_equiv a b
    else sat_equiv a b

let equivalent a b = check a b = Equivalent

let counterexample_valid a b cex =
  Array.length cex = N.num_inputs a
  && Array.length cex = N.num_inputs b
  && Sim.eval_bools a cex <> Sim.eval_bools b cex

let with_fixed_inputs nl assignments =
  let inputs = N.inputs nl in
  List.iter
    (fun (pos, _) ->
      if pos < 0 || pos >= Array.length inputs then
        invalid_arg "Equiv.with_fixed_inputs: position out of range")
    assignments;
  let b = N.Builder.create ~size_hint:(N.num_nodes nl + 2) () in
  let map = Array.make (N.num_nodes nl) (-1) in
  let const0 = ref (-1) and const1 = ref (-1) in
  let const v =
    let cell = if v then const1 else const0 in
    if !cell < 0 then
      cell := N.Builder.add_node b (if v then Gate.Const1 else Gate.Const0) [||];
    !cell
  in
  Array.iteri
    (fun pos id ->
      match List.assoc_opt pos assignments with
      | Some v -> map.(id) <- const v
      | None -> map.(id) <- N.Builder.add_input b)
    inputs;
  let map = N.copy_into ~map_inputs:false b nl map in
  Array.iter (fun o -> N.Builder.mark_output b map.(o)) (N.outputs nl);
  N.Builder.finish b
