(** Property-check runner with deterministic, reproducible seeding.

    Case seeds are derived from a root seed and the property name with the
    same FNV-1a discipline as [lib/runner]'s {!Orap_runner.Task}, so a
    single failing case is replayed exactly by seed, independent of every
    other case.  The root seed comes from [ORAP_PROPTEST_SEED] when set
    (the nightly CI job passes a date-derived value); the per-property
    iteration count is multiplied by [ORAP_PROPTEST_COUNT].  When
    [ORAP_PROPTEST_DIR] names a directory, shrunk counterexamples are also
    written there as [.bench]/[.txt] files (uploaded as CI artifacts). *)

type failure = {
  name : string;
  root_seed : int;
  case_index : int;
  case_seed : int;
  message : string;  (** "returned false" or the raised exception *)
  counterexample : string option;  (** shrunk report, when a shrinker ran *)
}

val pp_failure : failure -> string

(** Root seed: [ORAP_PROPTEST_SEED] or a fixed default. *)
val default_root_seed : unit -> int

(** [ORAP_PROPTEST_COUNT] (default 1) times [count]. *)
val effective_count : int -> int

(** Run [prop] on [count] generated cases (default 40, scaled by
    [ORAP_PROPTEST_COUNT]).  [shrink failing_value still_fails] should
    return a printable minimal counterexample.  A property fails by
    returning [false] or raising. *)
val run :
  ?count:int ->
  ?root_seed:int ->
  name:string ->
  gen:'a Gen.t ->
  ?print:('a -> string) ->
  ?shrink:('a -> ('a -> bool) -> string) ->
  ('a -> bool) ->
  (int, failure) result

(** {1 Alcotest integration} *)

(** Wrap {!run}; on failure the test prints the failing root/case seed, the
    reproduction recipe and the shrunk counterexample. *)
val to_alcotest :
  ?count:int ->
  name:string ->
  gen:'a Gen.t ->
  ?print:('a -> string) ->
  ?shrink:('a -> ('a -> bool) -> string) ->
  ('a -> bool) ->
  unit Alcotest.test_case

(** Netlist property with built-in DAG generation and {!Shrink} shrinking. *)
val netlist :
  ?count:int ->
  ?params:Gen.netlist_params ->
  string ->
  (Orap_netlist.Netlist.t -> bool) ->
  unit Alcotest.test_case

(** Netlist property that also draws an auxiliary seed (for pattern
    streams, key draws, fault picks...).  Shrinking holds the auxiliary
    seed fixed and minimises only the netlist. *)
val netlist_with_seed :
  ?count:int ->
  ?params:Gen.netlist_params ->
  string ->
  (Orap_netlist.Netlist.t -> aux:int -> bool) ->
  unit Alcotest.test_case
