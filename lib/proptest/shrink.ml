(** See shrink.mli. *)

module N = Orap_netlist.Netlist
module Gate = Orap_netlist.Gate
module Bench_format = Orap_netlist.Bench_format

(* mutable working copy of a netlist's structure *)
type snapshot = {
  kinds : Gate.kind array;
  fanins : int array array;
  outputs : int array;
}

let decompose nl =
  let n = N.num_nodes nl in
  {
    kinds = Array.init n (N.kind nl);
    fanins = Array.init n (fun i -> Array.copy (N.fanins nl i));
    outputs = Array.copy (N.outputs nl);
  }

(* rebuild a netlist, garbage-collecting nodes no longer reachable from the
   outputs; inputs are always kept so the interface never changes *)
let realize (s : snapshot) : N.t option =
  let n = Array.length s.kinds in
  let live = Array.make n false in
  let rec visit i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter visit s.fanins.(i)
    end
  in
  Array.iter visit s.outputs;
  match
    let b = N.Builder.create ~size_hint:n () in
    let map = Array.make n (-1) in
    for i = 0 to n - 1 do
      match s.kinds.(i) with
      | Gate.Input -> map.(i) <- N.Builder.add_input b
      | k ->
        if live.(i) then
          map.(i) <- N.Builder.add_node b k (Array.map (fun f -> map.(f)) s.fanins.(i))
    done;
    Array.iter (fun o -> N.Builder.mark_output b map.(o)) s.outputs;
    N.Builder.finish b
  with
  | nl -> Some nl
  | exception N.Invalid _ -> None

type candidate =
  | Drop_output of int  (** output position *)
  | Subst of int * int  (** rewire readers of node to an (earlier) node *)
  | Subst_const of int * bool  (** turn the node itself into a constant *)
  | Drop_fanin of int * int  (** node, fanin position (associative gates) *)

let apply (s : snapshot) = function
  | Drop_output pos ->
    if Array.length s.outputs <= 1 then None
    else
      Some
        {
          s with
          outputs =
            Array.of_list
              (List.filteri (fun i _ -> i <> pos) (Array.to_list s.outputs));
        }
  | Subst (node, target) ->
    if target >= node then None
    else
      Some
        {
          s with
          fanins =
            Array.map
              (Array.map (fun f -> if f = node then target else f))
              s.fanins;
          outputs =
            Array.map (fun o -> if o = node then target else o) s.outputs;
        }
  | Subst_const (node, v) ->
    if s.kinds.(node) = Gate.Input then None
    else begin
      let kinds = Array.copy s.kinds in
      let fanins = Array.copy s.fanins in
      kinds.(node) <- (if v then Gate.Const1 else Gate.Const0);
      fanins.(node) <- [||];
      Some { s with kinds; fanins }
    end
  | Drop_fanin (node, pos) ->
    let fan = s.fanins.(node) in
    let width = Array.length fan in
    if (not (Gate.arity_ok s.kinds.(node) (width - 1))) || width <= 1 then None
    else begin
      let fanins = Array.copy s.fanins in
      fanins.(node) <-
        Array.of_list (List.filteri (fun i _ -> i <> pos) (Array.to_list fan));
      Some { s with fanins }
    end

(* high node ids first: substituting near the outputs severs whole cones *)
let candidates (s : snapshot) : candidate list =
  let n = Array.length s.kinds in
  let acc = ref [] in
  for i = 0 to n - 1 do
    if s.kinds.(i) <> Gate.Input then begin
      acc := Subst_const (i, false) :: Subst_const (i, true) :: !acc;
      let fan = s.fanins.(i) in
      Array.iter (fun f -> acc := Subst (i, f) :: !acc) fan;
      for p = 0 to Array.length fan - 1 do
        acc := Drop_fanin (i, p) :: !acc
      done
    end
  done;
  let outs =
    List.init (Array.length s.outputs) (fun pos -> Drop_output pos)
  in
  outs @ List.rev !acc

(* strictly decreasing non-negative metric => the greedy loop terminates *)
let metric nl =
  let edges = ref 0 in
  for i = 0 to N.num_nodes nl - 1 do
    edges := !edges + Array.length (N.fanins nl i)
  done;
  (10 * N.node_count nl) + !edges + (5 * N.num_outputs nl)

let shrink ?(max_checks = 4000) (fails : N.t -> bool) (nl : N.t) : N.t =
  let still_fails candidate_nl = try fails candidate_nl with _ -> false in
  let checks = ref 0 in
  let best_nl = ref nl in
  let best = ref (decompose nl) in
  let improved = ref true in
  while !improved && !checks < max_checks do
    improved := false;
    let cands = candidates !best in
    let rec try_cands = function
      | [] -> ()
      | c :: rest ->
        if !checks >= max_checks then ()
        else begin
          (match apply !best c with
          | None -> ()
          | Some s' -> (
            match realize s' with
            | None -> ()
            | Some nl' ->
              if metric nl' < metric !best_nl then begin
                incr checks;
                if still_fails nl' then begin
                  best := decompose nl';
                  best_nl := nl';
                  improved := true
                end
              end));
          if !improved then () else try_cands rest
        end
    in
    try_cands cands
  done;
  !best_nl

let to_bench = Bench_format.print

let report nl =
  Printf.sprintf
    "%d inputs, %d outputs, %d gates (%d nodes incl. inverters)\n%s"
    (N.num_inputs nl) (N.num_outputs nl) (N.gate_count nl) (N.node_count nl)
    (to_bench nl)
