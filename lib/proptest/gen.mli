(** Seeded generator combinators and structured netlist generators.

    A generator is a function of the shared deterministic PRNG; composing
    generators threads the single stream, so a property case is reproduced
    exactly by re-seeding the PRNG with the case seed recorded by
    {!Prop.run}. *)

type 'a t = Orap_sim.Prng.t -> 'a

(** {1 Value combinators} *)

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val bool : bool t

(** Uniform over [\[lo, hi\]] inclusive; raises if [lo > hi]. *)
val int_range : int -> int -> int t

val bool_array : int -> bool array t

(** Uniform pick from a non-empty array. *)
val oneof : 'a array -> 'a t

val list_of : int t -> 'a t -> 'a list t

(** {1 Netlist generators} *)

(** Shape envelope for random DAG generation.  All ranges are inclusive.
    [kinds] is the multiset logic kinds are drawn from (repeat an entry to
    weight it).  [max_fanin] bounds associative-gate width; [max_fanout]
    softly bounds per-node reader count (0 = unbounded); [locality] is the
    percentage of fanin draws biased towards recent nodes, which creates
    the reconvergence real logic exhibits. *)
type netlist_params = {
  inputs : int * int;
  outputs : int * int;
  gates : int * int;
  max_fanin : int;
  max_fanout : int;
  kinds : Orap_netlist.Gate.kind array;
  locality : int;
}

(** 4–8 inputs, 2–5 outputs, 15–60 gates, the full gate vocabulary
    (including [Mux], [Buf]/[Not] and rare constants). *)
val default_params : netlist_params

(** Small circuits whose input count admits exhaustive checking. *)
val tiny_params : netlist_params

(** Random combinational DAG over [params.kinds]; always valid
    (passes {!Orap_netlist.Netlist.validate}). *)
val netlist : ?params:netlist_params -> unit -> Orap_netlist.Netlist.t t

(** Netlist from the {!Orap_benchgen} generator with a drawn seed — the
    synthesised-looking profile used by the paper experiments, as opposed
    to the adversarial full-vocabulary DAGs of {!netlist}. *)
val benchgen_netlist :
  inputs:int -> outputs:int -> gates:int -> Orap_netlist.Netlist.t t

(** A scaled-down Table-I profile circuit (see {!Orap_benchgen.Benchgen.scale}). *)
val profile_netlist :
  ?factor:int -> Orap_benchgen.Benchgen.profile -> Orap_netlist.Netlist.t t

(** {1 Mutation}

    [mutant nl] applies one random local semantic mutation to a logic node
    (dual gate swap [And<->Nand], [Or<->Nor], [Xor<->Xnor], [Buf<->Not],
    [Const0<->Const1], or a [Mux] branch swap): the workload for
    differential testing of the equivalence checker itself. *)
val mutant : Orap_netlist.Netlist.t -> Orap_netlist.Netlist.t t
