(** Greedy netlist shrinking.

    [shrink fails nl] repeatedly applies local reductions — dropping
    outputs, rewiring a gate's readers to one of its fanins, collapsing a
    gate to a constant, narrowing associative gates — keeping a candidate
    only when [fails] still holds (a raised exception counts as "does not
    reproduce"), until no reduction reproduces the failure.  The result is
    a locally minimal counterexample; primary inputs are never removed, so
    properties comparing against a same-interface reference stay
    well-typed throughout. *)

val shrink :
  ?max_checks:int ->
  (Orap_netlist.Netlist.t -> bool) ->
  Orap_netlist.Netlist.t ->
  Orap_netlist.Netlist.t

(** The counterexample as [.bench] text ({!Orap_netlist.Bench_format.print}). *)
val to_bench : Orap_netlist.Netlist.t -> string

(** One-line size summary plus the [.bench] text. *)
val report : Orap_netlist.Netlist.t -> string
