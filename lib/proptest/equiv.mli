(** Functional-equivalence oracle for combinational netlists.

    The SAT path builds a miter over shared primary inputs with
    {!Orap_sat.Tseitin.encode} and decides equality with the repo's own CDCL
    solver; the exhaustive path bit-parallel-simulates every input pattern.
    Having two independent deciders lets the checker itself be
    differentially tested (see the [prop_equiv] suite). *)

(** [Inequivalent cex] carries a distinguishing input assignment (indexed
    by input position). *)
type verdict = Equivalent | Inequivalent of bool array

(** Raised when the two netlists have different input or output counts. *)
exception Incomparable of string

(** Miter + SAT. *)
val sat_equiv : Orap_netlist.Netlist.t -> Orap_netlist.Netlist.t -> verdict

(** Inputs capped at {!max_exhaustive_inputs}; raises [Incomparable] above. *)
val exhaustive_equiv :
  Orap_netlist.Netlist.t -> Orap_netlist.Netlist.t -> verdict

val max_exhaustive_inputs : int

(** [`Auto] (default) simulates exhaustively up to 12 inputs and falls back
    to the miter above. *)
val check :
  ?method_:[ `Sat | `Exhaustive | `Auto ] ->
  Orap_netlist.Netlist.t ->
  Orap_netlist.Netlist.t ->
  verdict

val equivalent : Orap_netlist.Netlist.t -> Orap_netlist.Netlist.t -> bool

(** Does [cex] really distinguish the two netlists? (Used to validate
    counterexamples produced by either decider.) *)
val counterexample_valid :
  Orap_netlist.Netlist.t -> Orap_netlist.Netlist.t -> bool array -> bool

(** [with_fixed_inputs nl assignments] specialises the inputs at the given
    positions to constants; the result's inputs are the remaining positions
    in order.  Fixing a locked netlist's key inputs to a key yields a
    circuit directly comparable to the original. *)
val with_fixed_inputs :
  Orap_netlist.Netlist.t -> (int * bool) list -> Orap_netlist.Netlist.t
