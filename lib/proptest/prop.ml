(** See prop.mli. *)

module Prng = Orap_sim.Prng
module Task = Orap_runner.Task
module N = Orap_netlist.Netlist

type failure = {
  name : string;
  root_seed : int;
  case_index : int;
  case_seed : int;
  message : string;
  counterexample : string option;
}

let pp_failure f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "property %S failed\n" f.name);
  Buffer.add_string buf
    (Printf.sprintf "  root seed : %d (ORAP_PROPTEST_SEED=%d reproduces)\n"
       f.root_seed f.root_seed);
  Buffer.add_string buf
    (Printf.sprintf "  case      : #%d (derived case seed %d)\n" f.case_index
       f.case_seed);
  Buffer.add_string buf (Printf.sprintf "  reason    : %s\n" f.message);
  (match f.counterexample with
  | Some c ->
    Buffer.add_string buf "  shrunk counterexample:\n";
    String.split_on_char '\n' c
    |> List.iter (fun line ->
           Buffer.add_string buf "    ";
           Buffer.add_string buf line;
           Buffer.add_char buf '\n')
  | None -> ());
  Buffer.contents buf

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> default)

let default_root_seed () = env_int "ORAP_PROPTEST_SEED" 192837465

let effective_count count = max 1 (env_int "ORAP_PROPTEST_COUNT" 1) * count

let slug name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    name

(* write the shrunk counterexample where CI can pick it up as an artifact *)
let save_counterexample ~name text =
  match Sys.getenv_opt "ORAP_PROPTEST_DIR" with
  | None -> None
  | Some dir ->
    (try
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       let ext = if String.length text > 0 && text.[0] = 'I' then "bench" else "txt" in
       let path = Filename.concat dir (Printf.sprintf "%s.%s" (slug name) ext) in
       let oc = open_out path in
       output_string oc text;
       close_out oc;
       Some path
     with _ -> None)

let run ?(count = 40) ?root_seed ~name ~(gen : 'a Gen.t) ?print ?shrink prop =
  let root_seed =
    match root_seed with Some s -> s | None -> default_root_seed ()
  in
  let count = effective_count count in
  let failure case_index case_seed message value =
    let still_fails x = try not (prop x) with _ -> true in
    let counterexample =
      match (shrink, print) with
      | Some sh, _ -> Some (sh value still_fails)
      | None, Some pr -> Some (pr value)
      | None, None -> None
    in
    Option.iter
      (fun c -> ignore (save_counterexample ~name c))
      counterexample;
    Error { name; root_seed; case_index; case_seed; message; counterexample }
  in
  let rec case i =
    if i >= count then Ok count
    else begin
      let case_seed =
        Task.derive_seed ~root_seed ~id:(Printf.sprintf "%s#%d" name i)
      in
      let rng = Prng.create case_seed in
      match gen rng with
      | exception e ->
        Error
          {
            name;
            root_seed;
            case_index = i;
            case_seed;
            message = "generator raised " ^ Printexc.to_string e;
            counterexample = None;
          }
      | value -> (
        match prop value with
        | true -> case (i + 1)
        | false -> failure i case_seed "property returned false" value
        | exception e ->
          failure i case_seed
            ("property raised " ^ Printexc.to_string e)
            value)
    end
  in
  case 0

let to_alcotest ?count ~name ~gen ?print ?shrink prop =
  Alcotest.test_case name `Quick (fun () ->
      match run ?count ~name ~gen ?print ?shrink prop with
      | Ok _ -> ()
      | Error f -> Alcotest.fail (pp_failure f))

let netlist ?(count = 40) ?params name prop =
  to_alcotest ~count ~name
    ~gen:(Gen.netlist ?params ())
    ~shrink:(fun nl still_fails -> Shrink.report (Shrink.shrink still_fails nl))
    prop

let netlist_with_seed ?(count = 40) ?params name prop =
  to_alcotest ~count ~name
    ~gen:(Gen.pair (Gen.netlist ?params ()) (Gen.int_range 0 0x3FFFFFFF))
    ~shrink:(fun (nl, aux) still_fails ->
      let shrunk =
        Shrink.shrink (fun nl' -> still_fails (nl', aux)) nl
      in
      Printf.sprintf "aux seed %d\n%s" aux (Shrink.report shrunk))
    (fun (nl, aux) -> prop nl ~aux)
