(** See journal.mli. *)

type entry = { key : string; id : string; data : string }

(* --- JSON string escaping (the subset we emit) --- *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let format_line ~key ~id ~data =
  Printf.sprintf "{\"key\":\"%s\",\"id\":\"%s\",\"data\":\"%s\"}" (escape key)
    (escape id) (escape data)

(* --- strict line parser for exactly the object shape we emit --- *)

exception Bad

let parse_line (line : string) : entry option =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise Bad in
  let advance () = incr pos in
  let expect c = if peek () <> c then raise Bad else advance () in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then raise Bad;
          let hex = String.sub line !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c when c < 0x100 -> c
            | Some _ | None -> raise Bad
          in
          Buffer.add_char b (Char.chr code);
          pos := !pos + 4
        | _ -> raise Bad);
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  try
    expect '{';
    let fields = ref [] in
    let rec members () =
      let k = parse_string () in
      expect ':';
      let v = parse_string () in
      fields := (k, v) :: !fields;
      match peek () with
      | ',' -> advance (); members ()
      | '}' -> advance ()
      | _ -> raise Bad
    in
    members ();
    if !pos <> n then raise Bad;
    let get k = List.assoc_opt k !fields in
    match (get "key", get "id", get "data") with
    | Some key, Some id, Some data -> Some { key; id; data }
    | _ -> None
  with Bad | Invalid_argument _ -> None

(* --- file I/O --- *)

let fold_lines path f acc =
  if not (Sys.file_exists path) then acc
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let acc = ref acc in
        (try
           while true do
             acc := f !acc (input_line ic)
           done
         with End_of_file -> ());
        !acc)
  end

let load path =
  List.rev
    (fold_lines path
       (fun acc line ->
         (* skip blank and corrupt (e.g. crash-truncated) lines *)
         if String.trim line = "" then acc
         else match parse_line line with Some e -> e :: acc | None -> acc)
       [])

let scan path =
  fold_lines path
    (fun (ok, bad) line ->
      if String.trim line = "" then (ok, bad)
      else match parse_line line with Some _ -> (ok + 1, bad) | None -> (ok, bad + 1))
    (0, 0)

type t = { oc : out_channel; mutex : Mutex.t }

(* a crash can leave the file without a final newline (a half-written
   line); appending straight after it would merge the first new entry into
   the corrupt line and lose both.  Start on a fresh line instead. *)
let ends_with_newline path =
  match (Unix.stat path).Unix.st_size with
  | 0 -> true
  | size ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        seek_in ic (size - 1);
        input_char ic = '\n')
  | exception Unix.Unix_error _ -> true

let open_append path =
  let needs_newline = Sys.file_exists path && not (ends_with_newline path) in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  if needs_newline then output_char oc '\n';
  { oc; mutex = Mutex.create () }

let append t ~key ~id ~data =
  let line = format_line ~key ~id ~data in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc)

let close t = close_out_noerr t.oc
