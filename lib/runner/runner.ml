(** See runner.mli. *)

module Telemetry = Orap_telemetry.Telemetry
module Metrics = Orap_telemetry.Metrics

type options = {
  jobs : int;
  journal : string option;
  resume : bool;
  root_seed : int;
  progress : bool;
  progress_interval_s : float;
}

let default_options =
  {
    jobs = 0;
    journal = None;
    resume = false;
    root_seed = 0;
    progress = false;
    progress_interval_s = 1.0;
  }

type 'b codec = { encode : 'b -> string; decode : string -> 'b option }

let fields = String.concat "\t"
let unfields = String.split_on_char '\t'
let float_repr x = Printf.sprintf "%h" x

let map_grid ?(options = default_options) ?codec ?(tag = fun _ -> "done") ~id
    ~f items =
  (match (options.journal, codec) with
  | Some _, None ->
    invalid_arg "Runner.map_grid: a journal requires a result codec"
  | _ -> ());
  let cells =
    Array.of_list (Task.grid ~root_seed:options.root_seed ~id items)
  in
  let n = Array.length cells in
  let results : 'b option array = Array.make n None in
  (* resume: serve journaled cells without recomputation *)
  (match (options.journal, codec) with
  | Some path, Some c when options.resume ->
    let by_key = Hashtbl.create 64 in
    List.iter
      (fun e -> Hashtbl.replace by_key e.Journal.key e.Journal.data)
      (Journal.load path);
    Array.iter
      (fun cell ->
        match Hashtbl.find_opt by_key cell.Task.key with
        | Some data -> (
          match c.decode data with
          | Some v -> results.(cell.Task.index) <- Some v
          | None -> ())
        | None -> ())
      cells
  | _ -> ());
  let todo =
    Array.of_list
      (List.filter
         (fun cell -> Option.is_none results.(cell.Task.index))
         (Array.to_list cells))
  in
  let progress =
    Progress.create ~interval_s:options.progress_interval_s
      ~enabled:options.progress ~total:n ()
  in
  let cached = n - Array.length todo in
  Progress.add_cached progress cached;
  Metrics.add (Metrics.counter "runner.cache_hits") cached;
  let journal =
    match options.journal with
    | Some path -> Some (Journal.open_append path)
    | None -> None
  in
  let on_result i v =
    (match (journal, codec) with
    | Some j, Some c ->
      Journal.append j ~key:todo.(i).Task.key ~id:todo.(i).Task.id
        ~data:(c.encode v);
      Metrics.incr (Metrics.counter "runner.journal_appends")
    | _ -> ());
    Metrics.incr (Metrics.counter "runner.cells_computed");
    Progress.tick progress ~tag:(tag v)
  in
  (* cache replay ends here: the throughput estimate starts now *)
  Progress.start_compute progress;
  let outcomes =
    Pool.map ~jobs:options.jobs ~on_result
      (fun _ cell ->
        Telemetry.span "runner.cell"
          ~args:
            [
              ("id", Telemetry.String cell.Task.id);
              ("key", Telemetry.String cell.Task.key);
            ]
          (fun () -> f ~seed:cell.Task.seed cell.Task.payload))
      todo
  in
  (match journal with Some j -> Journal.close j | None -> ());
  Progress.finish progress;
  let first_error = ref None in
  Array.iteri
    (fun i -> function
      | Ok v -> results.(todo.(i).Task.index) <- Some v
      | Error e ->
        if Option.is_none !first_error then first_error := Some e)
    outcomes;
  (match !first_error with Some e -> raise e | None -> ());
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) results)
