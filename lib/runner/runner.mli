(** The experiment-execution engine: declarative task grids executed on a
    Domain worker pool, with per-cell derived seeds (deterministic under any
    worker count and scheduling order), a JSONL checkpoint journal with
    [--resume] semantics, and live progress telemetry.

    {[
      let rows =
        Runner.map_grid
          ~options:{ Runner.default_options with jobs = 4 }
          ~codec:row_codec
          ~tag:row_outcome_tag
          ~id:cell_id
          ~f:(fun ~seed cell -> compute ~seed cell)
          cells
    ]} *)

type options = {
  jobs : int;  (** worker domains; [<= 0] = [Domain.recommended_domain_count ()] *)
  journal : string option;  (** JSONL checkpoint file; [None] = no journal *)
  resume : bool;  (** skip cells already present in the journal *)
  root_seed : int;  (** mixed into every cell key and derived seed *)
  progress : bool;  (** periodic stderr telemetry *)
  progress_interval_s : float;
}

(** jobs = all cores, no journal, no resume, root seed 0, progress off. *)
val default_options : options

(** Result (de)serializer for the journal.  [decode] returns [None] on any
    mismatch — the cell is then recomputed rather than failing the run. *)
type 'b codec = { encode : 'b -> string; decode : string -> 'b option }

(** Tab-join / tab-split for field-per-value codecs. *)
val fields : string list -> string

val unfields : string -> string list

(** Exact round-trip float representation (hex float literal). *)
val float_repr : float -> string

(** [map_grid ~id ~f items] executes one [f ~seed payload] per item and
    returns the results in input order — a drop-in parallel [List.map].

    - [id] must render a stable, canonical cell spec: it determines both
      the journal key and the derived seed.
    - [f] receives the cell's derived seed ([Task.derive_seed] of
      [options.root_seed] and the id) and must draw all its randomness from
      it; results are then independent of scheduling.
    - With [options.journal] set, completed cells are appended as they
      finish (requires [codec]; raises [Invalid_argument] otherwise).  With
      [options.resume] also set, cells whose key is already journaled (and
      whose data decodes) are served from the journal without recomputation.
    - [tag] labels each fresh result for the progress tally (e.g. the
      [Exact]/[Approximate]/[Exhausted]/[Oracle_refused] outcome).

    If any cell raises, the first exception (in grid order) is re-raised
    after all other cells have finished and been journaled, so a crashing
    grid still checkpoints its completed work. *)
val map_grid :
  ?options:options ->
  ?codec:'b codec ->
  ?tag:('b -> string) ->
  id:('a -> string) ->
  f:(seed:int -> 'a -> 'b) ->
  'a list ->
  'b list
