(** See task.mli. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash64 (s : string) : int64 =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let hash_hex s = Printf.sprintf "%016Lx" (hash64 s)

(* '\x00' cannot appear in a cell id line, so the pair encoding is
   injective *)
let cell_key ~root_seed ~id = hash_hex (Printf.sprintf "%d\x00%s" root_seed id)

let derive_seed ~root_seed ~id =
  let h = hash64 (Printf.sprintf "seed\x00%d\x00%s" root_seed id) in
  Int64.to_int (Int64.logand h 0x3FFF_FFFF_FFFF_FFFFL)

let hash_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      hash_hex (really_input_string ic n))

type 'a cell = {
  index : int;
  id : string;
  key : string;
  seed : int;
  payload : 'a;
}

let grid ~root_seed ~id items =
  List.mapi
    (fun index payload ->
      let id = id payload in
      {
        index;
        id;
        key = cell_key ~root_seed ~id;
        seed = derive_seed ~root_seed ~id;
        payload;
      })
    items
