(** Live grid telemetry: periodic done/total, cells/sec, ETA and a
    per-outcome tally (the [Exact]/[Approximate]/[Exhausted]/
    [Oracle_refused]-style tags the experiments map their outcomes to).

    All entry points are thread-safe; workers call [tick] directly. *)

type t

(** [create ~total ()] — [interval_s] (default 1.0) throttles emission;
    [enabled:false] (the default used under tests) keeps the counters but
    never writes; output goes to [out] (default [stderr]). *)
val create :
  ?interval_s:float ->
  ?out:out_channel ->
  ?enabled:bool ->
  total:int ->
  unit ->
  t

(** Record [n] cells satisfied from the journal (they count as done but not
    towards the throughput estimate). *)
val add_cached : t -> int -> unit

(** Record one freshly computed cell carrying an outcome tag. *)
val tick : t -> tag:string -> unit

(** The current status line, e.g.
    ["[runner] 12/40 cells  3.1 cells/s  ETA 9.0s  (4 cached)  6 exact, 2 timeout"]. *)
val line : t -> string

(** Number of cells recorded so far (cached + computed). *)
val completed : t -> int

(** Emit a final status line (even when under the interval). *)
val finish : t -> unit
