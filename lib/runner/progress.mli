(** Live grid telemetry: periodic done/total, cells/sec, ETA and a
    per-outcome tally (the [Exact]/[Approximate]/[Exhausted]/
    [Oracle_refused]-style tags the experiments map their outcomes to).

    All entry points are thread-safe; workers call [tick] directly. *)

type t

(** [create ~total ()] — [interval_s] (default 1.0) throttles emission;
    [enabled:false] (the default used under tests) keeps the counters but
    never writes; output goes to [out] (default [stderr]); [now] injects a
    clock for deterministic tests (default [Unix.gettimeofday]). *)
val create :
  ?interval_s:float ->
  ?out:out_channel ->
  ?enabled:bool ->
  ?now:(unit -> float) ->
  total:int ->
  unit ->
  t

(** Mark the start of real computation.  Time before this call — journal
    loading, cache replay — is excluded from the throughput estimate, so
    resumed runs don't report a diluted rate and an inflated ETA.  Called
    by the runner after cache replay; idempotent.  If never called, the
    first [tick] dates the compute phase from [create] (the pre-fix
    behaviour). *)
val start_compute : t -> unit

(** Record [n] cells satisfied from the journal (they count as done but not
    towards the throughput estimate). *)
val add_cached : t -> int -> unit

(** Record one freshly computed cell carrying an outcome tag. *)
val tick : t -> tag:string -> unit

(** Freshly computed cells per second of compute time (0 before the first
    measurable interval). *)
val rate : t -> float

(** Estimated seconds to completion: [Some 0.] when done, [None] while the
    rate is still unmeasurable. *)
val eta_s : t -> float option

(** The current status line, e.g.
    ["[runner] 12/40 cells  3.1 cells/s  ETA 9.0s  (4 cached)  6 exact, 2 timeout"]. *)
val line : t -> string

(** Number of cells recorded so far (cached + computed). *)
val completed : t -> int

(** Emit a final status line (even when under the interval). *)
val finish : t -> unit
