(** See progress.mli. *)

type t = {
  total : int;
  interval_s : float;
  out : out_channel;
  enabled : bool;
  mutex : Mutex.t;
  started : float;
  mutable computed : int;
  mutable cached : int;
  mutable last_emit : float;
  tally : (string, int) Hashtbl.t;
  mutable tag_order : string list;  (** first-seen order, reversed *)
}

let create ?(interval_s = 1.0) ?(out = stderr) ?(enabled = true) ~total () =
  {
    total;
    interval_s;
    out;
    enabled;
    mutex = Mutex.create ();
    started = Unix.gettimeofday ();
    computed = 0;
    cached = 0;
    last_emit = 0.0;
    tally = Hashtbl.create 8;
    tag_order = [];
  }

let completed t = t.computed + t.cached

let line t =
  let elapsed = Unix.gettimeofday () -. t.started in
  let rate =
    if elapsed > 0.0 then float_of_int t.computed /. elapsed else 0.0
  in
  let remaining = t.total - completed t in
  let eta =
    if remaining = 0 then "0.0s"
    else if rate > 0.0 then
      Printf.sprintf "%.1fs" (float_of_int remaining /. rate)
    else "?"
  in
  let cached =
    if t.cached > 0 then Printf.sprintf "  (%d cached)" t.cached else ""
  in
  let tags =
    match t.tag_order with
    | [] -> ""
    | order ->
      "  "
      ^ String.concat ", "
          (List.rev_map
             (fun tag ->
               Printf.sprintf "%d %s" (Hashtbl.find t.tally tag) tag)
             order)
  in
  Printf.sprintf "[runner] %d/%d cells  %.1f cells/s  ETA %s%s%s"
    (completed t) t.total rate eta cached tags

let emit t =
  output_string t.out (line t ^ "\n");
  flush t.out

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add_cached t n =
  locked t (fun () -> t.cached <- t.cached + n)

let tick t ~tag =
  locked t (fun () ->
      t.computed <- t.computed + 1;
      (match Hashtbl.find_opt t.tally tag with
      | Some n -> Hashtbl.replace t.tally tag (n + 1)
      | None ->
        Hashtbl.add t.tally tag 1;
        t.tag_order <- tag :: t.tag_order);
      if t.enabled then begin
        let now = Unix.gettimeofday () in
        if now -. t.last_emit >= t.interval_s then begin
          t.last_emit <- now;
          emit t
        end
      end)

let finish t = locked t (fun () -> if t.enabled then emit t)
