(** See progress.mli. *)

type t = {
  total : int;
  interval_s : float;
  out : out_channel;
  enabled : bool;
  now : unit -> float;
  mutex : Mutex.t;
  started : float;
  mutable compute_started : float option;
      (** when real computation began — cache replay before this instant is
          excluded from the throughput estimate *)
  mutable computed : int;
  mutable cached : int;
  mutable last_emit : float;
  tally : (string, int) Hashtbl.t;
  mutable tag_order : string list;  (** first-seen order, reversed *)
}

let create ?(interval_s = 1.0) ?(out = stderr) ?(enabled = true)
    ?(now = Unix.gettimeofday) ~total () =
  {
    total;
    interval_s;
    out;
    enabled;
    now;
    mutex = Mutex.create ();
    started = now ();
    compute_started = None;
    computed = 0;
    cached = 0;
    last_emit = 0.0;
    tally = Hashtbl.create 8;
    tag_order = [];
  }

let completed t = t.computed + t.cached

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let start_compute t =
  locked t (fun () ->
      if t.compute_started = None then t.compute_started <- Some (t.now ()))

(* computed cells per second of COMPUTE time: measuring from [started]
   would fold journal-load/cache-replay time into the denominator and
   understate the rate (so overstate the ETA) on resumed runs *)
let rate_unlocked t =
  let base = match t.compute_started with Some s -> s | None -> t.started in
  let elapsed = t.now () -. base in
  if elapsed > 0.0 then float_of_int t.computed /. elapsed else 0.0

let rate t = locked t (fun () -> rate_unlocked t)

let eta_s_unlocked t =
  let remaining = t.total - completed t in
  if remaining <= 0 then Some 0.0
  else
    let rate = rate_unlocked t in
    if rate > 0.0 then Some (float_of_int remaining /. rate) else None

let eta_s t = locked t (fun () -> eta_s_unlocked t)

let line_unlocked t =
  let rate = rate_unlocked t in
  let eta =
    match eta_s_unlocked t with
    | Some s -> Printf.sprintf "%.1fs" s
    | None -> "?"
  in
  let cached =
    if t.cached > 0 then Printf.sprintf "  (%d cached)" t.cached else ""
  in
  let tags =
    match t.tag_order with
    | [] -> ""
    | order ->
      "  "
      ^ String.concat ", "
          (List.rev_map
             (fun tag ->
               Printf.sprintf "%d %s" (Hashtbl.find t.tally tag) tag)
             order)
  in
  Printf.sprintf "[runner] %d/%d cells  %.1f cells/s  ETA %s%s%s"
    (completed t) t.total rate eta cached tags

let line t = locked t (fun () -> line_unlocked t)

let emit t =
  output_string t.out (line_unlocked t ^ "\n");
  flush t.out

let add_cached t n = locked t (fun () -> t.cached <- t.cached + n)

let tick t ~tag =
  locked t (fun () ->
      (* fallback for callers that never announce the compute phase: date
         it from the first tick so replay time still stays excluded *)
      if t.compute_started = None then t.compute_started <- Some t.started;
      t.computed <- t.computed + 1;
      (match Hashtbl.find_opt t.tally tag with
      | Some n -> Hashtbl.replace t.tally tag (n + 1)
      | None ->
        Hashtbl.add t.tally tag 1;
        t.tag_order <- tag :: t.tag_order);
      if t.enabled then begin
        let now = t.now () in
        if now -. t.last_emit >= t.interval_s then begin
          t.last_emit <- now;
          emit t
        end
      end)

let finish t = locked t (fun () -> if t.enabled then emit t)
