(** Domain-based worker pool.

    [map] distributes an array of independent work items over [jobs]
    domains (default [Domain.recommended_domain_count ()]).  Items are
    claimed through a single atomic counter, so scheduling is
    work-conserving; because every item computes from its own inputs only
    (the runner derives per-cell seeds), the results do not depend on which
    domain ran what. *)

(** [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [map ~jobs ?on_result f items] applies [f index item] to every item and
    returns the results in item order.  [jobs <= 0] selects
    [default_jobs ()]; the pool never spawns more domains than items.

    [on_result] runs in the worker domain as soon as an item finishes — the
    hook for journal appends and progress ticks; it must be thread-safe.  An
    exception raised by [f] or [on_result] is captured as [Error] for that
    item without disturbing the others. *)
val map :
  ?jobs:int ->
  ?on_result:(int -> 'b -> unit) ->
  (int -> 'a -> 'b) ->
  'a array ->
  ('b, exn) result array
