(** Grid cells: stable identity, content hashing and per-cell seed
    derivation.

    A task grid is a list of independent cells (benchmark-profile x scheme x
    attack x seed points).  Each cell gets
    - a caller-supplied stable textual id (the canonical cell spec),
    - a content [key] = FNV-1a hash of (root seed, id), used to index the
      journal, and
    - a derived PRNG [seed] = hash (root_seed, id), so results are
      bit-identical regardless of worker count or scheduling order: no cell
      ever draws from another cell's random stream. *)

(** FNV-1a, 64-bit, over the bytes of a string.  Stable across OCaml
    versions and architectures (unlike [Hashtbl.hash]). *)
val hash64 : string -> int64

(** [hash64] as 16 lowercase hex digits. *)
val hash_hex : string -> string

(** Journal key of a cell: hash of the root seed and the cell id. *)
val cell_key : root_seed:int -> id:string -> string

(** Per-cell PRNG seed, derived (not sequential) so it is independent of
    scheduling.  Always non-negative. *)
val derive_seed : root_seed:int -> id:string -> int

(** Content hash of a file (e.g. a [.bench] input referenced by a journal),
    as 16 hex digits.  Raises [Sys_error] if unreadable. *)
val hash_file : string -> string

type 'a cell = {
  index : int;  (** position in the grid; results are returned in this order *)
  id : string;  (** caller-supplied canonical spec *)
  key : string;  (** journal key: [cell_key ~root_seed ~id] *)
  seed : int;  (** derived PRNG seed: [derive_seed ~root_seed ~id] *)
  payload : 'a;
}

(** Build the cell list for a grid.  Ids should be unique; duplicate ids
    yield identical seeds and journal keys (last write wins on resume). *)
val grid : root_seed:int -> id:('a -> string) -> 'a list -> 'a cell list
