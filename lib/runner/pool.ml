(** See pool.mli. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = 0) ?on_result (f : int -> 'a -> 'b) (items : 'a array) :
    ('b, exn) result array =
  let n = Array.length items in
  let jobs = if jobs <= 0 then default_jobs () else jobs in
  let jobs = max 1 (min jobs n) in
  let results : ('b, exn) result option array = Array.make n None in
  let next = Atomic.make 0 in
  let rec work () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      let r =
        try
          let v = f i items.(i) in
          (match on_result with Some g -> g i v | None -> ());
          Ok v
        with e -> Error e
      in
      (* disjoint slots: no two domains ever write the same index *)
      results.(i) <- Some r;
      work ()
    end
  in
  if jobs = 1 then work ()
  else begin
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join domains
  end;
  Array.map (function Some r -> r | None -> assert false) results
