(** JSONL checkpoint journal.

    One line per completed cell:
    {v {"key":"<16 hex>","id":"<cell spec>","data":"<encoded result>"} v}

    Appends are mutex-protected and flushed line-at-a-time, so a journal
    written by several domains interleaves whole lines.  [load] skips any
    line that does not parse completely — in particular the half-written
    final line left by a crash mid-append — so a resumed run simply
    recomputes the cells whose lines were lost. *)

type entry = { key : string; id : string; data : string }

(** Parse every valid line of a journal file; a missing file is an empty
    journal.  Returns entries in file order (on duplicate keys the caller
    should let the last one win). *)
val load : string -> entry list

(** [load] restricted to well-formedness: [(valid, corrupt)] line counts. *)
val scan : string -> int * int

type t

(** Open for append, creating the file (and truncating nothing). *)
val open_append : string -> t

(** Thread-safe, flushed append of one entry line. *)
val append : t -> key:string -> id:string -> data:string -> unit

val close : t -> unit

(** Exposed for tests: escape / parse one journal line. *)
val format_line : key:string -> id:string -> data:string -> string

val parse_line : string -> entry option
