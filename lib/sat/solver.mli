(** CDCL SAT solver: two-watched-literal propagation, first-UIP learning,
    VSIDS branching with phase saving, Luby restarts, activity-based learnt
    clause reduction and assumption-based incremental solving. *)

type result =
  | Sat
  | Unsat
  | Unknown
      (** the conflict limit tripped before the solver reached an answer —
        distinct from [Unsat] so budgeted callers never misread a genuine
        refutation that lands exactly at the cap *)

type t

val create : unit -> t

(** {1 Variables and clauses} *)

(** Allocate a fresh variable (0-based index). *)
val new_var : t -> int

(** Allocate [n] fresh variables. *)
val new_vars : t -> int -> int array

(** Add a problem clause (the solver first backtracks to the root).  Returns [false] once the
    clause set is trivially unsatisfiable; further calls are ignored. *)
val add_clause : t -> Lit.t list -> bool

(** {1 Solving} *)

(** [solve ?assumptions ?conflict_limit s] decides satisfiability under the
    given assumption literals.  Returns [Unknown] iff [conflict_limit] is
    reached without an answer; note the level-0 conflict check precedes the
    limit check, so a refutation found on exactly the cap-th conflict is
    still reported [Unsat].  The solver can be reused: clauses may be added
    and [solve] called again (backtracking to the root first). *)
val solve : ?assumptions:Lit.t array -> ?conflict_limit:int -> t -> result

(** Model access, valid after a [Sat] answer and before the next solver
    operation. *)
val model_value : t -> int -> bool

val model_lit : t -> Lit.t -> bool

(** Undo all decisions (required before adding clauses after a [Sat]). *)
val backtrack_to_root : t -> unit

(** {1 Introspection} *)

val num_vars : t -> int
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int

(** Current assignment of a variable: 1 true, -1 false, 0 unassigned. *)
val value_var : t -> int -> int

(** Current assignment of a literal under the same encoding. *)
val value_lit : t -> Lit.t -> int
