(** CDCL SAT solver: two-watched-literal propagation, first-UIP clause
    learning, VSIDS branching with phase saving, Luby restarts, activity-based
    learnt-clause reduction, and assumption-based incremental solving.

    The design follows Minisat; the implementation is self-contained (the
    container ships no SAT tooling, and the SAT attack of the paper needs an
    incremental solver). *)

type result = Sat | Unsat | Unknown

type clause = {
  lits : int array;  (* watched literals are lits.(0) and lits.(1) *)
  learnt : bool;
  mutable activity : float;
  mutable deleted : bool;
}

type t = {
  mutable clauses : clause array;  (* arena; index = clause id *)
  mutable num_clauses : int;
  mutable learnts : Vec.t;  (* ids of learnt clauses *)
  mutable watches : Vec.t array;  (* per literal *)
  mutable assign : int array;  (* per var: 0 undef, 1 true, -1 false *)
  mutable level : int array;  (* per var *)
  mutable reason : int array;  (* per var: clause id or -1 *)
  mutable activity : float array;  (* per var *)
  mutable polarity : bool array;  (* saved phase per var *)
  mutable seen : bool array;  (* scratch for analyze *)
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable nvars : int;
  mutable ok : bool;  (* false once a top-level conflict is derived *)
  mutable var_inc : float;
  mutable cla_inc : float;
  (* branching heap *)
  heap : Vec.t;
  mutable heap_pos : int array;  (* per var: position in heap or -1 *)
  (* statistics *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable max_learnts : float;
}

let create () =
  {
    clauses = Array.make 16 { lits = [||]; learnt = false; activity = 0.; deleted = true };
    num_clauses = 0;
    learnts = Vec.create ();
    watches = Array.init 2 (fun _ -> Vec.create ());
    assign = Array.make 1 0;
    level = Array.make 1 0;
    reason = Array.make 1 (-1);
    activity = Array.make 1 0.;
    polarity = Array.make 1 false;
    seen = Array.make 1 false;
    trail = Vec.create ~capacity:64 ();
    trail_lim = Vec.create ();
    qhead = 0;
    nvars = 0;
    ok = true;
    var_inc = 1.0;
    cla_inc = 1.0;
    heap = Vec.create ();
    heap_pos = Array.make 1 (-1);
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    max_learnts = 0.;
  }

let num_vars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations

let value_var s v = s.assign.(v)
let value_lit s l =
  let a = s.assign.(Lit.var l) in
  if Lit.is_neg l then -a else a

(* ---- branching heap (max-heap on var activity) ---- *)

let heap_lt s v w = s.activity.(v) > s.activity.(w)

let rec percolate_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    let v = Vec.get s.heap i and pv = Vec.get s.heap p in
    if heap_lt s v pv then begin
      Vec.set s.heap i pv;
      Vec.set s.heap p v;
      s.heap_pos.(pv) <- i;
      s.heap_pos.(v) <- p;
      percolate_up s p
    end
  end

let rec percolate_down s i =
  let n = Vec.length s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_lt s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_lt s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    let a = Vec.get s.heap i and b = Vec.get s.heap !best in
    Vec.set s.heap i b;
    Vec.set s.heap !best a;
    s.heap_pos.(b) <- i;
    s.heap_pos.(a) <- !best;
    percolate_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Vec.push s.heap v;
    s.heap_pos.(v) <- Vec.length s.heap - 1;
    percolate_up s (Vec.length s.heap - 1)
  end

let heap_pop s =
  let top = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  s.heap_pos.(top) <- -1;
  if Vec.length s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    percolate_down s 0
  end;
  top

(* ---- variables ---- *)

let grow_arrays s n =
  let old = Array.length s.assign in
  if n > old then begin
    let m = max n (2 * old) in
    let copy_int a def = let b = Array.make m def in Array.blit a 0 b 0 old; b in
    let copy_f a = let b = Array.make m 0. in Array.blit a 0 b 0 old; b in
    let copy_b a = let b = Array.make m false in Array.blit a 0 b 0 old; b in
    s.assign <- copy_int s.assign 0;
    s.level <- copy_int s.level 0;
    s.reason <- copy_int s.reason (-1);
    s.heap_pos <- copy_int s.heap_pos (-1);
    s.activity <- copy_f s.activity;
    s.polarity <- copy_b s.polarity;
    s.seen <- copy_b s.seen;
    let w = Array.make (2 * m) (Vec.create ()) in
    Array.blit s.watches 0 w 0 (2 * old);
    for i = 2 * old to (2 * m) - 1 do
      w.(i) <- Vec.create ~capacity:2 ()
    done;
    s.watches <- w
  end

let new_var s =
  let v = s.nvars in
  grow_arrays s (v + 1);
  s.assign.(v) <- 0;
  s.reason.(v) <- -1;
  s.heap_pos.(v) <- -1;
  s.activity.(v) <- 0.;
  s.polarity.(v) <- false;
  s.nvars <- v + 1;
  heap_insert s v;
  v

let new_vars s n = Array.init n (fun _ -> new_var s)

(* ---- activity ---- *)

let var_decay = 1.0 /. 0.95
let cla_decay = 1.0 /. 0.999

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then percolate_up s s.heap_pos.(v)

let cla_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun id -> s.clauses.(id).activity <- s.clauses.(id).activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

(* ---- trail ---- *)

let decision_level s = Vec.length s.trail_lim

let enqueue s l reason =
  let v = Lit.var l in
  s.assign.(v) <- (if Lit.is_neg l then -1 else 1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let new_decision_level s = Vec.push s.trail_lim (Vec.length s.trail)

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.length s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      s.polarity.(v) <- not (Lit.is_neg l);
      s.assign.(v) <- 0;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.length s.trail
  end

(* ---- clauses ---- *)

let alloc_clause s lits learnt =
  if s.num_clauses = Array.length s.clauses then begin
    let a =
      Array.make (2 * s.num_clauses)
        { lits = [||]; learnt = false; activity = 0.; deleted = true }
    in
    Array.blit s.clauses 0 a 0 s.num_clauses;
    s.clauses <- a
  end;
  let id = s.num_clauses in
  s.clauses.(id) <- { lits; learnt; activity = 0.; deleted = false };
  s.num_clauses <- id + 1;
  Vec.push s.watches.(Lit.negate lits.(0)) id;
  Vec.push s.watches.(Lit.negate lits.(1)) id;
  if learnt then Vec.push s.learnts id;
  id

(** Add a problem clause.  Must be called at decision level 0 (the solver
    backtracks there between [solve] calls).  Returns [false] if the clause
    set became trivially unsatisfiable. *)
let add_clause s (lits : Lit.t list) =
  if s.ok then begin
    (* adding clauses invalidates any retained model: return to the root *)
    cancel_until s 0;
    (* sort, dedup, drop clauses with x and ~x or with a true literal *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (Lit.negate l) lits) lits
      || List.exists (fun l -> value_lit s l > 0) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> value_lit s l = 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] -> enqueue s l (-1)
      | _ -> ignore (alloc_clause s (Array.of_list lits) false)
    end
  end;
  s.ok

(* ---- propagation ---- *)

let propagate s : int =
  (* returns conflicting clause id or -1 *)
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < Vec.length s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* clauses watching literal L are filed under key ~L, so the clauses
       whose watch was falsified by p (i.e. watching ~p) are in watches.(p) *)
    let false_lit = Lit.negate p in
    let ws = s.watches.(p) in
    let n = Vec.length ws in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let id = Vec.get ws !i in
      incr i;
      let c = s.clauses.(id) in
      if c.deleted then () (* drop stale watch *)
      else begin
        let lits = c.lits in
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        if value_lit s lits.(0) > 0 then begin
          (* clause satisfied; keep watching *)
          Vec.set ws !keep id;
          incr keep
        end
        else begin
          (* look for a new literal to watch *)
          let len = Array.length lits in
          let rec find k = if k >= len then -1 else if value_lit s lits.(k) >= 0 then k else find (k + 1) in
          let k = find 2 in
          if k >= 0 then begin
            lits.(1) <- lits.(k);
            lits.(k) <- false_lit;
            Vec.push s.watches.(Lit.negate lits.(1)) id
          end
          else if value_lit s lits.(0) < 0 then begin
            (* conflict: keep remaining watches *)
            conflict := id;
            Vec.set ws !keep id;
            incr keep;
            while !i < n do
              Vec.set ws !keep (Vec.get ws !i);
              incr keep;
              incr i
            done;
            s.qhead <- Vec.length s.trail
          end
          else begin
            (* unit *)
            Vec.set ws !keep id;
            incr keep;
            enqueue s lits.(0) id
          end
        end
      end
    done;
    Vec.shrink ws !keep
  done;
  !conflict

(* ---- conflict analysis (first UIP) ---- *)

let analyze s conflict_id =
  let learnt = ref [] in
  let bt_level = ref 0 in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref conflict_id in
  let index = ref (Vec.length s.trail - 1) in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!confl) in
    if c.learnt then cla_bump s c;
    let lits = c.lits in
    let start = if !p = -1 then 0 else 1 in
    (* when resolving on p, lits.(0) is p (asserted lit of the reason) *)
    for j = start to Array.length lits - 1 do
      let q = lits.(j) in
      let v = Lit.var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr counter
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !bt_level then bt_level := s.level.(v)
        end
      end
    done;
    (* next clause to resolve: walk trail backwards to a seen var *)
    while not s.seen.(Lit.var (Vec.get s.trail !index)) do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    let v = Lit.var !p in
    s.seen.(v) <- false;
    decr counter;
    if !counter = 0 then continue := false else confl := s.reason.(v)
  done;
  let learnt_lits = Array.of_list (Lit.negate !p :: !learnt) in
  (* cleanup seen for the literals kept in the learnt clause *)
  Array.iter (fun l -> s.seen.(Lit.var l) <- false) learnt_lits;
  (learnt_lits, !bt_level)

let record_learnt s lits =
  if Array.length lits = 1 then enqueue s lits.(0) (-1)
  else begin
    (* watch a literal of the backtrack level in position 1 *)
    let max_i = ref 1 in
    for j = 2 to Array.length lits - 1 do
      if s.level.(Lit.var lits.(j)) > s.level.(Lit.var lits.(!max_i)) then max_i := j
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!max_i);
    lits.(!max_i) <- tmp;
    let id = alloc_clause s lits true in
    cla_bump s s.clauses.(id);
    enqueue s lits.(0) id
  end

(* ---- learnt clause DB reduction ---- *)

let locked s c = Array.length c.lits > 0 && s.reason.(Lit.var c.lits.(0)) >= 0
  && s.clauses.(s.reason.(Lit.var c.lits.(0))) == c

let reduce_db s =
  let ids = Vec.to_list s.learnts in
  let ids = List.filter (fun id -> not s.clauses.(id).deleted) ids in
  let sorted =
    List.sort
      (fun a b -> compare s.clauses.(a).activity s.clauses.(b).activity)
      ids
  in
  let n = List.length sorted in
  let removed = ref 0 in
  List.iteri
    (fun i id ->
      let c = s.clauses.(id) in
      if i < n / 2 && Array.length c.lits > 2 && not (locked s c) then begin
        c.deleted <- true;
        incr removed
      end)
    sorted;
  Vec.clear s.learnts;
  List.iter (fun id -> if not s.clauses.(id).deleted then Vec.push s.learnts id) ids

(* ---- search ---- *)

(* Luby restart sequence, as in Minisat *)
let luby y x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

exception Answered of result

let solve ?(assumptions : Lit.t array = [||]) ?(conflict_limit = max_int) s : result
    =
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    let restart_first = 100. in
    let restart_num = ref 0 in
    s.max_learnts <- float_of_int (max 1000 (s.num_clauses / 3));
    let result =
      try
        while true do
          let conflict_budget =
            restart_first *. luby 2.0 !restart_num |> int_of_float
          in
          incr restart_num;
          let conflicts_here = ref 0 in
          let continue_inner = ref true in
          while !continue_inner do
            let confl = propagate s in
            if confl >= 0 then begin
              s.conflicts <- s.conflicts + 1;
              incr conflicts_here;
              if decision_level s = 0 then begin
                s.ok <- false;
                raise (Answered Unsat)
              end;
              let learnt, bt = analyze s confl in
              cancel_until s bt;
              record_learnt s learnt;
              s.var_inc <- s.var_inc *. var_decay;
              s.cla_inc <- s.cla_inc *. cla_decay;
              if s.conflicts >= conflict_limit then raise (Answered Unknown)
            end
            else begin
              if !conflicts_here >= conflict_budget then begin
                cancel_until s 0;
                continue_inner := false
              end
              else begin
                if
                  float_of_int (Vec.length s.learnts)
                  >= s.max_learnts +. float_of_int (Vec.length s.trail)
                then begin
                  reduce_db s;
                  s.max_learnts <- s.max_learnts *. 1.1
                end;
                (* decide: assumptions first *)
                let decided = ref false in
                while (not !decided) && decision_level s < Array.length assumptions do
                  let p = assumptions.(decision_level s) in
                  let v = value_lit s p in
                  if v > 0 then new_decision_level s (* already true: dummy level *)
                  else if v < 0 then raise (Answered Unsat)
                  else begin
                    new_decision_level s;
                    s.decisions <- s.decisions + 1;
                    enqueue s p (-1);
                    decided := true
                  end
                done;
                if not !decided then begin
                  (* pick a branching variable *)
                  let rec pick () =
                    if Vec.length s.heap = 0 then -1
                    else
                      let v = heap_pop s in
                      if s.assign.(v) = 0 then v else pick ()
                  in
                  let v = pick () in
                  if v < 0 then raise (Answered Sat)
                  else begin
                    s.decisions <- s.decisions + 1;
                    new_decision_level s;
                    enqueue s (Lit.of_var ~negated:(not s.polarity.(v)) v) (-1)
                  end
                end
              end
            end
          done
        done;
        assert false
      with Answered r -> r
    in
    (match result with
    | Sat -> () (* model read before next cancel *)
    | Unsat | Unknown -> cancel_until s 0);
    result
  end

(** Model value of a variable after a [Sat] answer: [true]/[false]; unassigned
    pure variables default to [false]. *)
let model_value s v = s.assign.(v) > 0

let model_lit s l = value_lit s l > 0

(** Reset the trail to level 0 (e.g. before adding clauses after a Sat). *)
let backtrack_to_root s = cancel_until s 0
