(** Table II: stuck-at fault coverage and redundant+aborted fault counts,
    original vs. OraP-protected versions of the benchmark profiles.

    The protected version's key inputs are free ATPG inputs — the LFSR is
    in the scan chains — which is why the paper observes *better* fault
    coverage for the protected circuits (key gates act as test points). *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Locked = Orap_locking.Locked
module Atpg = Orap_atpg.Atpg
module Runner = Orap_runner.Runner

type side = { fc_pct : float; redundant_aborted : int; total_faults : int }

type row = { name : string; original : side; protected_ : side }

type params = {
  scale : int;
  random_words : int;
  backtrack_limit : int;
  seed : int;
}

let default_params =
  { scale = 8; random_words = 32; backtrack_limit = 64; seed = 2020 }

let quick_params =
  { scale = 24; random_words = 16; backtrack_limit = 48; seed = 2020 }

let run_side ~seed (p : params) (nl : N.t) : side =
  let r =
    Atpg.run ~seed ~random_words:p.random_words
      ~backtrack_limit:p.backtrack_limit nl
  in
  {
    fc_pct = Atpg.coverage r;
    redundant_aborted = Atpg.redundant_plus_aborted r;
    total_faults = r.Atpg.total_faults;
  }

(* [seed] as in {!Table1.run_profile}: the cell's derived seed *)
let run_profile ?seed (p : params) (profile : Benchgen.profile) : row =
  let seed = match seed with Some s -> s | None -> p.seed in
  let profile =
    if p.scale = 1 then profile else Benchgen.scale ~factor:p.scale profile
  in
  let nl = Benchgen.of_profile profile in
  let locked =
    Weighted.lock nl ~key_size:profile.Benchgen.lfsr_size
      ~ctrl_inputs:profile.Benchgen.ctrl_inputs
  in
  {
    name = profile.Benchgen.name;
    original = run_side ~seed p nl;
    protected_ = run_side ~seed p locked.Locked.netlist;
  }

let cell_id (p : params) (profile : Benchgen.profile) =
  Printf.sprintf
    "table2|scale=%d|words=%d|backtrack=%d|seed=%d|profile=%s" p.scale
    p.random_words p.backtrack_limit p.seed profile.Benchgen.name

let side_fields s =
  [ Runner.float_repr s.fc_pct; string_of_int s.redundant_aborted;
    string_of_int s.total_faults ]

let side_of_fields fc ra tf =
  {
    fc_pct = float_of_string fc;
    redundant_aborted = int_of_string ra;
    total_faults = int_of_string tf;
  }

let row_codec : row Runner.codec =
  {
    encode =
      (fun r ->
        Runner.fields
          ((r.name :: side_fields r.original) @ side_fields r.protected_));
    decode =
      (fun s ->
        match Runner.unfields s with
        | [ name; ofc; ora; otf; pfc; pra; ptf ] -> (
          try
            Some
              {
                name;
                original = side_of_fields ofc ora otf;
                protected_ = side_of_fields pfc pra ptf;
              }
          with _ -> None)
        | _ -> None);
  }

let run ?(params = default_params) ?(options = Runner.default_options)
    ?(profiles = Benchgen.table1_profiles) () : row list =
  let options = { options with Runner.root_seed = params.seed } in
  Runner.map_grid ~options ~codec:row_codec
    ~tag:(fun _ -> "row")
    ~id:(cell_id params)
    ~f:(fun ~seed profile -> run_profile ~seed params profile)
    profiles

let report (rows : row list) : Report.t =
  let t =
    Report.create
      ~title:"Table II: stuck-at fault coverage and redundant+aborted faults"
      ~header:
        [ "Circuit"; "Orig FC (%)"; "Orig #Red+Abrt"; "Prot FC (%)";
          "Prot #Red+Abrt" ]
      ~aligns:[ Report.L; R; R; R; R ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.name; Report.f2 r.original.fc_pct;
          Report.d r.original.redundant_aborted;
          Report.f2 r.protected_.fc_pct;
          Report.d r.protected_.redundant_aborted ])
    rows;
  t
