(** Security experiments: the behavioural claims of Figs. 1–3 and the
    attack-vs-oracle matrix of Section II-A.

    - F1 (Fig. 1): asserting [scan_enable] clears the key register before
      the first shift, so scan responses are locked-circuit responses.
    - F2 (Fig. 2): the pulse generator fires exactly on 0-to-1 transitions.
    - F3 (Fig. 3): the modified scheme unlocks correctly in the honest
      closed loop, and the key depends on the circuit responses produced
      while unlocking (freezing the FFs corrupts it).
    - S1: SAT attack and variants against a functional (unprotected) oracle
      vs. the OraP scan oracle.
    - S3: hill climbing on locked test responses and key sensitization. *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Locked = Orap_locking.Locked
module Weighted = Orap_locking.Weighted
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Oracle = Orap_core.Oracle
module Pulse_gen = Orap_dft.Pulse_gen
module Prng = Orap_sim.Prng
module Sat_attack = Orap_attacks.Sat_attack
module Appsat = Orap_attacks.Appsat
module Double_dip = Orap_attacks.Double_dip
module Hill_climb = Orap_attacks.Hill_climb
module Key_sensitization = Orap_attacks.Key_sensitization
module Evaluate = Orap_attacks.Evaluate

type fixture = {
  nl : N.t;
  locked : Locked.t;
  basic : Orap.t;
  modified : Orap.t;
}

let make_fixture ?(seed = 12) ?(num_inputs = 48) ?(num_outputs = 36)
    ?(num_gates = 500) ?(key_size = 32) () : fixture =
  let nl =
    Benchgen.generate { Benchgen.seed; num_inputs; num_outputs; num_gates }
  in
  let locked = Weighted.lock nl ~key_size ~ctrl_inputs:3 in
  let num_ffs = num_outputs / 2 in
  let mk kind =
    Orap.protect
      ~config:{ (Orap.default_config ~kind ~num_ffs ()) with Orap.seed = seed }
      locked
  in
  { nl; locked; basic = mk Orap.Basic; modified = mk Orap.Modified }

(* --- F1: key register clears on scan start --- *)

type fig1_result = {
  unlock_key_correct : bool;
  key_cleared_on_scan : bool;
  scan_responses_locked : bool;
}

let fig1 (fx : fixture) : fig1_result =
  let chip = Chip.create fx.basic in
  Chip.unlock chip;
  let unlock_key_correct =
    Chip.key_register chip = fx.locked.Locked.correct_key
  in
  Chip.set_scan_enable chip true;
  let key_cleared_on_scan =
    Array.for_all (fun b -> not b) (Chip.key_register chip)
  in
  Chip.set_scan_enable chip false;
  (* a fresh unlocked chip, queried through scan, must answer locked *)
  let chip2 = Chip.create fx.basic in
  Chip.unlock chip2;
  let oracle = Oracle.scan_chip chip2 in
  let reference = Oracle.functional fx.locked in
  let rng = Prng.create 2 in
  let width = Orap.num_ext_inputs fx.basic + Orap.num_ffs fx.basic in
  let corrupted = ref 0 in
  let trials = 32 in
  for _ = 1 to trials do
    let x = Prng.bool_array rng width in
    if Oracle.query oracle x <> Oracle.query reference x then incr corrupted
  done;
  {
    unlock_key_correct;
    key_cleared_on_scan;
    scan_responses_locked = !corrupted > trials / 2;
  }

(* --- F2: pulse generator edge behaviour --- *)

type fig2_result = {
  fires_on_rising_edge : bool;
  silent_on_level_hold : bool;
  silent_on_falling_edge : bool;
}

let fig2 () : fig2_result =
  let g = Pulse_gen.create () in
  let r1 = Pulse_gen.observe g ~scan_enable:false in
  let rising = Pulse_gen.observe g ~scan_enable:true in
  let hold = Pulse_gen.observe g ~scan_enable:true in
  let falling = Pulse_gen.observe g ~scan_enable:false in
  let rising2 = Pulse_gen.observe g ~scan_enable:true in
  {
    fires_on_rising_edge = rising && rising2 && not r1;
    silent_on_level_hold = not hold;
    silent_on_falling_edge = not falling;
  }

(* --- F3: response feedback is necessary in the modified scheme --- *)

type fig3_result = {
  honest_unlock_correct : bool;
  frozen_ffs_break_unlock : bool;
  responses_differ_from_basic : bool;
}

let fig3 (fx : fixture) : fig3_result =
  let honest = Chip.create fx.modified in
  Chip.unlock honest;
  let honest_unlock_correct =
    Chip.key_register honest = fx.locked.Locked.correct_key
  in
  let frozen =
    Chip.create
      ~trojan:{ Chip.no_trojan with Chip.freeze_ffs_during_unlock = true }
      fx.modified
  in
  (* put a nonzero state into the FFs first, as the attack would *)
  Chip.set_scan_enable frozen true;
  for i = 0 to Orap.num_ffs fx.modified - 1 do
    ignore (Chip.scan_shift frozen ~scan_in:(i land 1 = 0))
  done;
  Chip.set_scan_enable frozen false;
  Chip.unlock frozen;
  let frozen_ffs_break_unlock =
    Chip.key_register frozen <> fx.locked.Locked.correct_key
  in
  (* basic scheme is insensitive to the same freeze *)
  let basic_frozen =
    Chip.create
      ~trojan:{ Chip.no_trojan with Chip.freeze_ffs_during_unlock = true }
      fx.basic
  in
  Chip.unlock basic_frozen;
  let basic_still_correct =
    Chip.key_register basic_frozen = fx.locked.Locked.correct_key
  in
  {
    honest_unlock_correct;
    frozen_ffs_break_unlock;
    responses_differ_from_basic = basic_still_correct;
  }

(* --- S1: the attack matrix --- *)

type attack_row = {
  attack : string;
  oracle_kind : string;
  verdict : Evaluate.verdict;
  iterations : int;
  queries : int;
}

let attack_matrix ?(max_iterations = 128) (fx : fixture) : attack_row list =
  let mk_oracle = function
    | `Functional -> Oracle.functional fx.locked
    | `Orap ->
      let chip = Chip.create fx.basic in
      Chip.unlock chip;
      Oracle.scan_chip chip
  in
  let oracle_name = function
    | `Functional -> "unprotected"
    | `Orap -> "OraP scan"
  in
  let rows = ref [] in
  List.iter
    (fun okind ->
      let o = mk_oracle okind in
      let r = Sat_attack.run ~max_iterations fx.locked o in
      rows :=
        { attack = "SAT attack"; oracle_kind = oracle_name okind;
          verdict = Evaluate.of_outcome fx.locked r.Sat_attack.outcome;
          iterations = r.Sat_attack.iterations; queries = r.Sat_attack.queries }
        :: !rows;
      let o = mk_oracle okind in
      let r = Appsat.run ~max_iterations fx.locked o in
      rows :=
        { attack = "AppSAT"; oracle_kind = oracle_name okind;
          verdict = Evaluate.of_outcome fx.locked r.Appsat.outcome;
          iterations = r.Appsat.iterations; queries = r.Appsat.queries }
        :: !rows;
      let o = mk_oracle okind in
      let r = Double_dip.run ~max_iterations fx.locked o in
      rows :=
        { attack = "Double DIP"; oracle_kind = oracle_name okind;
          verdict = Evaluate.of_outcome fx.locked r.Double_dip.outcome;
          iterations = r.Double_dip.iterations; queries = r.Double_dip.queries }
        :: !rows;
      let o = mk_oracle okind in
      let r = Hill_climb.run fx.locked o in
      rows :=
        { attack = "Hill climbing"; oracle_kind = oracle_name okind;
          verdict = Evaluate.of_outcome fx.locked r.Hill_climb.outcome;
          iterations = r.Hill_climb.flips; queries = r.Hill_climb.queries }
        :: !rows;
      let o = mk_oracle okind in
      let r = Key_sensitization.run fx.locked o in
      rows :=
        { attack = "Key sensitization"; oracle_kind = oracle_name okind;
          verdict = Evaluate.of_outcome fx.locked r.Key_sensitization.outcome;
          iterations = r.Key_sensitization.sensitized_bits;
          queries = r.Key_sensitization.queries }
        :: !rows)
    [ `Functional; `Orap ];
  List.rev !rows

let attack_report rows : Report.t =
  let t =
    Report.create ~title:"Oracle-based attacks vs. oracle protection (S1/S3)"
      ~header:[ "Attack"; "Oracle"; "Outcome"; "Iters"; "Queries" ]
      ~aligns:[ Report.L; Report.L; Report.L; Report.R; Report.R ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.attack; r.oracle_kind; Evaluate.to_string r.verdict;
          Report.d r.iterations; Report.d r.queries ])
    rows;
  t

(* --- S3: hill-climbing on manufacturing-test responses --- *)

(** Under OraP the chip is tested locked, so designer-released test
    responses are locked-circuit responses (key register cleared).  The
    climb must not recover the key from them. *)
let hill_climb_on_test_responses (fx : fixture) : Evaluate.verdict =
  let chip = Chip.create fx.basic in
  Chip.unlock chip;
  let oracle = Oracle.scan_chip chip in
  let rng = Prng.create 77 in
  let width = Orap.num_ext_inputs fx.basic + Orap.num_ffs fx.basic in
  let pairs =
    List.init 48 (fun _ ->
        let x = Prng.bool_array rng width in
        (x, Oracle.query oracle x))
  in
  let r = Hill_climb.run_on_responses fx.locked pairs in
  Evaluate.of_outcome fx.locked r.Hill_climb.outcome
