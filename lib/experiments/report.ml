(** Plain-text table rendering for the experiment harnesses. *)

type align = L | R

(* rows are stored newest-first so [add_row] is O(1); [render] reverses
   once.  [count] mirrors the list length so [num_rows] is O(1) too. *)
type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rev_rows : string list list;
  mutable count : int;
}

let create ~title ~header ~aligns =
  if List.length header <> List.length aligns then invalid_arg "Report.create";
  { title; header; aligns; rev_rows = []; count = 0 }

(* rows render in insertion (FIFO) order: callers replaying journaled
   results must add rows in grid order, not completion order *)
let add_row t row =
  if List.length row <> List.length t.header then invalid_arg "Report.add_row";
  t.rev_rows <- row :: t.rev_rows;
  t.count <- t.count + 1

let num_rows t = t.count

let render t : string =
  let rows = List.rev t.rev_rows in
  let cols = List.length t.header in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure t.header;
  List.iter measure rows;
  let pad align width s =
    let d = width - String.length s in
    match align with
    | L -> s ^ String.make d ' '
    | R -> String.make d ' ' ^ s
  in
  let line row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.contents buf

let print t = print_string (render t)

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let d x = string_of_int x
let b x = if x then "yes" else "no"
