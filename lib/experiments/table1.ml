(** Table I: Hamming distance, area and delay overhead of OraP + weighted
    logic locking on the eight benchmark profiles.

    Per circuit: a synthetic netlist at the profile's scale is locked with
    weighted logic locking (key size = LFSR size, control-gate width from
    the profile), wrapped in an OraP design, and measured:
    - HD: mean output Hamming distance of random keys vs. the valid key;
    - area/delay: ABC-style [strash -> refactor -> rewrite] of original and
      protected netlists (plus OraP's own pulse-generator and XOR hardware
      in AND-node units), as percentages over the original. *)

module N = Orap_netlist.Netlist
module Benchgen = Orap_benchgen.Benchgen
module Weighted = Orap_locking.Weighted
module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Abc = Orap_synth.Abc_script
module Aig = Orap_synth.Aig
module Prng = Orap_sim.Prng
module Runner = Orap_runner.Runner

type row = {
  name : string;
  gates : int;
  outputs : int;
  lfsr_size : int;
  ctrl_inputs : int;
  hd_pct : float;
  area_pct : float;
  delay_pct : float;
}

type params = {
  scale : int;  (** divide the profile sizes by this (1 = paper scale) *)
  hd_words : int;  (** 64-pattern words per HD estimate *)
  hd_keys : int;  (** random keys averaged for the HD column *)
  synth_effort : int;
  seed : int;
}

let default_params =
  { scale = 1; hd_words = 320; hd_keys = 4; synth_effort = 1; seed = 2020 }

let quick_params =
  { scale = 16; hd_words = 64; hd_keys = 3; synth_effort = 1; seed = 2020 }

(* [seed] is the cell's derived seed ({!Orap_runner.Task.derive_seed} of
   the grid root seed and this cell's id): every profile draws from its own
   stream, so rows are bit-identical under any worker count *)
let run_profile ?seed (p : params) (profile : Benchgen.profile) : row =
  let seed = match seed with Some s -> s | None -> p.seed in
  let profile =
    if p.scale = 1 then profile else Benchgen.scale ~factor:p.scale profile
  in
  let nl = Benchgen.of_profile profile in
  let locked =
    Weighted.lock nl ~key_size:profile.Benchgen.lfsr_size
      ~ctrl_inputs:profile.Benchgen.ctrl_inputs
  in
  let design =
    Orap.protect
      ~config:
        {
          (Orap.default_config ~kind:Orap.Basic
             ~num_ffs:(min 32 (N.num_outputs nl / 2)) ())
          with
          Orap.seed = seed;
        }
      locked
  in
  (* HD: valid key vs random keys *)
  let rng = Prng.create (seed + 3) in
  let hd_sum = ref 0.0 in
  for k = 1 to p.hd_keys do
    let key = Prng.bool_array rng (Locked.key_size locked) in
    hd_sum :=
      !hd_sum
      +. Locked.hamming_vs_original ~seed:(seed + k) ~words:p.hd_words
           locked key
  done;
  let hd = !hd_sum /. float_of_int p.hd_keys in
  (* area / delay through the resynthesis pipeline *)
  let mo = Abc.evaluate ~effort:p.synth_effort nl in
  let mp = Abc.evaluate ~effort:p.synth_effort locked.Locked.netlist in
  let orap_ands = Orap.hardware_and_nodes (Orap.hardware design) in
  let area_pct =
    100.0
    *. float_of_int (mp.Abc.ands + orap_ands - mo.Abc.ands)
    /. float_of_int mo.Abc.ands
  in
  let delay_pct =
    if mo.Abc.levels = 0 then 0.0
    else
      100.0
      *. float_of_int (max 0 (mp.Abc.levels - mo.Abc.levels))
      /. float_of_int mo.Abc.levels
  in
  {
    name = profile.Benchgen.name;
    gates = N.gate_count nl;
    outputs = N.num_outputs nl;
    lfsr_size = profile.Benchgen.lfsr_size;
    ctrl_inputs = profile.Benchgen.ctrl_inputs;
    hd_pct = hd;
    area_pct;
    delay_pct;
  }

(* canonical cell spec: params + profile name — the journal key and the
   derived seed both hash this, so changing any knob invalidates the cell *)
let cell_id (p : params) (profile : Benchgen.profile) =
  Printf.sprintf
    "table1|scale=%d|hd_words=%d|hd_keys=%d|synth=%d|seed=%d|profile=%s"
    p.scale p.hd_words p.hd_keys p.synth_effort p.seed profile.Benchgen.name

let row_codec : row Runner.codec =
  {
    encode =
      (fun r ->
        Runner.fields
          [ r.name; string_of_int r.gates; string_of_int r.outputs;
            string_of_int r.lfsr_size; string_of_int r.ctrl_inputs;
            Runner.float_repr r.hd_pct; Runner.float_repr r.area_pct;
            Runner.float_repr r.delay_pct ]);
    decode =
      (fun s ->
        match Runner.unfields s with
        | [ name; gates; outputs; lfsr_size; ctrl_inputs; hd; area; delay ]
          -> (
          try
            Some
              {
                name;
                gates = int_of_string gates;
                outputs = int_of_string outputs;
                lfsr_size = int_of_string lfsr_size;
                ctrl_inputs = int_of_string ctrl_inputs;
                hd_pct = float_of_string hd;
                area_pct = float_of_string area;
                delay_pct = float_of_string delay;
              }
          with _ -> None)
        | _ -> None);
  }

let run ?(params = default_params) ?(options = Runner.default_options)
    ?(profiles = Benchgen.table1_profiles) () : row list =
  let options = { options with Runner.root_seed = params.seed } in
  Runner.map_grid ~options ~codec:row_codec
    ~tag:(fun _ -> "row")
    ~id:(cell_id params)
    ~f:(fun ~seed profile -> run_profile ~seed params profile)
    profiles

let report (rows : row list) : Report.t =
  let t =
    Report.create ~title:"Table I: HD, area and delay overhead"
      ~header:
        [ "Circuit"; "# Gates"; "# Outputs"; "LFSR size"; "Ctrl inputs";
          "HD (%)"; "Area ovhd (%)"; "Delay ovhd (%)" ]
      ~aligns:[ Report.L; R; R; R; R; R; R; R ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.name; Report.d r.gates; Report.d r.outputs; Report.d r.lfsr_size;
          Report.d r.ctrl_inputs; Report.f2 r.hd_pct; Report.f2 r.area_pct;
          Report.f2 r.delay_pct ])
    rows;
  t
