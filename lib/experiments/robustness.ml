(** Robustness sweep: oracle-based attacks vs. the imperfect oracles of the
    paper's threat model.

    The classic attack literature assumes a perfect, tireless oracle; the
    paper's point is that the oracle is the weak element — protected
    (OraP answers locked), partially compromised (Trojan scenarios (c)/(e)
    are intermittent), or simply hard to reach (noisy probes, rate-limited
    chip access).  This table sweeps noise level × query budget × attack
    and reports recovery rate, the Hamming distance of the recovered key
    and how each run ended, using the structured outcomes of
    {!Orap_attacks.Budget}. *)

module Locked = Orap_locking.Locked
module Orap = Orap_core.Orap
module Chip = Orap_core.Chip
module Oracle = Orap_core.Oracle
module Faulty = Orap_core.Faulty_oracle
module Budget = Orap_attacks.Budget
module Evaluate = Orap_attacks.Evaluate
module Sat_attack = Orap_attacks.Sat_attack
module Appsat = Orap_attacks.Appsat
module Double_dip = Orap_attacks.Double_dip
module Hill_climb = Orap_attacks.Hill_climb
module Key_sensitization = Orap_attacks.Key_sensitization
module Runner = Orap_runner.Runner

type attack_kind = Sat | Appsat_k | Double_dip_k | Hill | Sensitize

let attack_name = function
  | Sat -> "SAT attack"
  | Appsat_k -> "AppSAT"
  | Double_dip_k -> "Double DIP"
  | Hill -> "Hill climbing"
  | Sensitize -> "Key sensitization"

let all_attacks = [ Sat; Appsat_k; Double_dip_k; Hill; Sensitize ]

type oracle_kind = Functional | Orap_scan

type params = {
  seed : int;
  num_gates : int;
  key_size : int;
  oracle : oracle_kind;  (** base oracle under the fault stack *)
  noise_levels : float list;  (** per-query bit-flip probabilities *)
  query_budgets : int list;  (** 0 = unlimited *)
  trials : int;  (** noise seeds per cell *)
  attacks : attack_kind list;
  max_iterations : int;
  wall_clock_s : float;  (** per-attack deadline, seconds *)
  max_conflicts : int option;  (** cumulative solver-conflict budget *)
  retry_votes : int;  (** >1 enables the majority-vote repair wrapper *)
  validate_queries : int;
      (** post-proof audit queries for the SAT attack's [Exact] claims *)
}

let default_params =
  {
    seed = 1;
    num_gates = 300;
    key_size = 16;
    oracle = Functional;
    noise_levels = [ 0.0; 0.02; 0.10 ];
    query_budgets = [ 0; 2000 ];
    trials = 3;
    attacks = all_attacks;
    max_iterations = 256;
    wall_clock_s = 10.0;
    max_conflicts = None;
    retry_votes = 1;
    validate_queries = 32;
  }

type row = {
  attack : string;
  noise : float;
  query_budget : int;
  trials : int;
  equivalent : int;  (** trials ending in a functionally correct key *)
  exact_proofs : int;  (** trials proving [Exact] a genuinely equivalent key *)
  mean_key_hd_pct : float option;  (** over trials that produced a key *)
  mean_queries : float;
  mean_elapsed_s : float;
  outcomes : string;  (** aggregated outcome tags, e.g. "2 exact, 1 refused" *)
}

(* short tag for aggregation; [genuine] is the harness's ground-truth
   equivalence check — an [Exact] whose key is functionally wrong is a
   proof relative to a lying oracle, which only the harness can unmask *)
let outcome_tag ~genuine = function
  | Budget.Exact _ -> if genuine then "exact" else "false-proof"
  | Budget.Approximate _ -> "approx"
  | Budget.Exhausted (Budget.Iterations _) -> "iter-cap"
  | Budget.Exhausted (Budget.Wall_clock _) -> "timeout"
  | Budget.Exhausted (Budget.Conflicts _) -> "conflict-cap"
  | Budget.Exhausted Budget.Inconsistent -> "inconsistent"
  | Budget.Exhausted (Budget.Refusal _) -> "refused"
  | Budget.Exhausted (Budget.No_progress _) -> "no-progress"
  | Budget.Oracle_refused _ -> "refused"

let summarize_tags tags =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun tag ->
      match Hashtbl.find_opt tbl tag with
      | Some n -> Hashtbl.replace tbl tag (n + 1)
      | None ->
        Hashtbl.add tbl tag 1;
        order := tag :: !order)
    tags;
  String.concat ", "
    (List.rev_map
       (fun tag -> Printf.sprintf "%d %s" (Hashtbl.find tbl tag) tag)
       !order)

(* key-bit Hamming distance, percent *)
let key_hd_pct correct key =
  let diff = ref 0 in
  Array.iteri (fun i b -> if b <> key.(i) then incr diff) correct;
  100.0 *. float_of_int !diff /. float_of_int (max 1 (Array.length correct))

let base_oracle params (fx : Security.fixture) = function
  | Functional -> Oracle.functional fx.Security.locked
  | Orap_scan ->
    let chip = Chip.create fx.Security.basic in
    Chip.unlock chip;
    ignore params;
    Oracle.scan_chip chip

(* the fault stack, innermost first: chip -> measurement noise -> access
   rate limit -> optional majority-vote repair (each vote is a metered
   physical query, so retries burn budget — that is the tradeoff) *)
let build_oracle params fx ~noise ~query_budget ~trial_seed =
  let o = base_oracle params fx params.oracle in
  let o = if noise > 0.0 then Faulty.bit_flip ~seed:trial_seed ~p:noise o else o in
  let o = if query_budget > 0 then Faulty.query_budget ~limit:query_budget o else o in
  if params.retry_votes > 1 then Faulty.retry ~votes:params.retry_votes o else o

let run_attack kind ~budget ~validate locked oracle :
    bool array Budget.outcome * int =
  match kind with
  | Sat ->
    let r = Sat_attack.run ~budget ~validate locked oracle in
    (r.Sat_attack.outcome, r.Sat_attack.queries)
  | Appsat_k ->
    let r = Appsat.run ~budget locked oracle in
    (r.Appsat.outcome, r.Appsat.queries)
  | Double_dip_k ->
    let r = Double_dip.run ~budget locked oracle in
    (r.Double_dip.outcome, r.Double_dip.queries)
  | Hill ->
    let r = Hill_climb.run ~budget locked oracle in
    (r.Hill_climb.outcome, r.Hill_climb.queries)
  | Sensitize ->
    let r = Key_sensitization.run ~budget locked oracle in
    (r.Key_sensitization.outcome, r.Key_sensitization.queries)

(* one grid cell: an (attack, noise, query budget) point, run for
   [params.trials] trial seeds *)
type cell = { kind : attack_kind; noise : float; query_budget : int }

let attack_slug = function
  | Sat -> "sat"
  | Appsat_k -> "appsat"
  | Double_dip_k -> "ddip"
  | Hill -> "hill"
  | Sensitize -> "sens"

let cell_id (p : params) (c : cell) =
  Printf.sprintf
    "robustness|gates=%d|key=%d|oracle=%s|trials=%d|iters=%d|wall=%s|confl=%s|votes=%d|validate=%d|seed=%d|attack=%s|noise=%s|qb=%d"
    p.num_gates p.key_size
    (match p.oracle with Functional -> "functional" | Orap_scan -> "orap")
    p.trials p.max_iterations
    (Runner.float_repr p.wall_clock_s)
    (match p.max_conflicts with None -> "-" | Some c -> string_of_int c)
    p.retry_votes p.validate_queries p.seed (attack_slug c.kind)
    (Runner.float_repr c.noise) c.query_budget

(* [seed] is the cell's derived seed; trial [t] uses [seed + t], so trial
   streams are independent of every other cell and of scheduling order *)
let run_cell (params : params) fx budget ~seed (c : cell) : row =
  let locked = fx.Security.locked in
  let tags = ref [] in
  let equivalent = ref 0 in
  let exact_proofs = ref 0 in
  let hds = ref [] in
  let queries = ref 0 in
  let elapsed = ref 0.0 in
  for trial = 0 to params.trials - 1 do
    let trial_seed = seed + trial in
    let oracle =
      build_oracle params fx ~noise:c.noise ~query_budget:c.query_budget
        ~trial_seed
    in
    let t0 = Unix.gettimeofday () in
    let outcome, q =
      run_attack c.kind ~budget ~validate:params.validate_queries locked
        oracle
    in
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    queries := !queries + q;
    let genuine =
      match Budget.recovered outcome with
      | None -> false
      | Some key ->
        hds := key_hd_pct locked.Locked.correct_key key :: !hds;
        (Evaluate.of_key locked (Some key)).Evaluate.equivalent
    in
    if genuine then incr equivalent;
    (match outcome with
    | Budget.Exact _ when genuine -> incr exact_proofs
    | _ -> ());
    tags := outcome_tag ~genuine outcome :: !tags
  done;
  let n = float_of_int params.trials in
  {
    attack = attack_name c.kind;
    noise = c.noise;
    query_budget = c.query_budget;
    trials = params.trials;
    equivalent = !equivalent;
    exact_proofs = !exact_proofs;
    mean_key_hd_pct =
      (match !hds with
      | [] -> None
      | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)));
    mean_queries = float_of_int !queries /. n;
    mean_elapsed_s = !elapsed /. n;
    outcomes = summarize_tags (List.rev !tags);
  }

(* the first outcome tag of the aggregated cell, for the progress tally *)
let row_tag (r : row) =
  match String.index_opt r.outcomes ' ' with
  | Some i -> (
    let rest = String.sub r.outcomes (i + 1) (String.length r.outcomes - i - 1) in
    match String.index_opt rest ',' with
    | Some j -> String.sub rest 0 j
    | None -> rest)
  | None -> "?"

let row_codec : row Runner.codec =
  {
    encode =
      (fun r ->
        Runner.fields
          [ r.attack; Runner.float_repr r.noise;
            string_of_int r.query_budget; string_of_int r.trials;
            string_of_int r.equivalent; string_of_int r.exact_proofs;
            (match r.mean_key_hd_pct with
            | None -> "-"
            | Some h -> Runner.float_repr h);
            Runner.float_repr r.mean_queries;
            Runner.float_repr r.mean_elapsed_s; r.outcomes ]);
    decode =
      (fun s ->
        match Runner.unfields s with
        | [ attack; noise; query_budget; trials; equivalent; exact_proofs;
            hd; mean_queries; mean_elapsed_s; outcomes ] -> (
          try
            Some
              {
                attack;
                noise = float_of_string noise;
                query_budget = int_of_string query_budget;
                trials = int_of_string trials;
                equivalent = int_of_string equivalent;
                exact_proofs = int_of_string exact_proofs;
                mean_key_hd_pct =
                  (if hd = "-" then None else Some (float_of_string hd));
                mean_queries = float_of_string mean_queries;
                mean_elapsed_s = float_of_string mean_elapsed_s;
                outcomes;
              }
          with _ -> None)
        | _ -> None);
  }

(** A scheduling-independent rendering of a row: every field except the
    wall-clock timing (which can never be byte-identical across runs).
    Used by the determinism tests and CI smoke checks. *)
let canonical (r : row) : string =
  row_codec.Runner.encode { r with mean_elapsed_s = 0.0 }

let grid (p : params) : cell list =
  List.concat_map
    (fun kind ->
      List.concat_map
        (fun noise ->
          List.map
            (fun query_budget -> { kind; noise; query_budget })
            p.query_budgets)
        p.noise_levels)
    p.attacks

let run ?(params = default_params) ?(options = Runner.default_options) () :
    row list =
  let fx =
    Security.make_fixture ~seed:params.seed ~num_gates:params.num_gates
      ~key_size:params.key_size ()
  in
  let budget =
    Budget.make ~max_iterations:params.max_iterations
      ~wall_clock_s:params.wall_clock_s
      ?max_conflicts:params.max_conflicts ()
  in
  let options = { options with Runner.root_seed = params.seed } in
  Runner.map_grid ~options ~codec:row_codec ~tag:row_tag
    ~id:(cell_id params)
    ~f:(run_cell params fx budget)
    (grid params)

let report (rows : row list) : Report.t =
  let t =
    Report.create
      ~title:"Robustness: attacks vs. noisy / rate-limited oracles"
      ~header:
        [ "Attack"; "Noise"; "Q-budget"; "Recovered"; "Proved"; "Key HD (%)";
          "Queries"; "Time (s)"; "Outcomes" ]
      ~aligns:
        [ Report.L; Report.R; Report.R; Report.R; Report.R; Report.R;
          Report.R; Report.R; Report.L ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ r.attack;
          Printf.sprintf "%.2f" r.noise;
          (if r.query_budget = 0 then "inf" else string_of_int r.query_budget);
          Printf.sprintf "%d/%d" r.equivalent r.trials;
          Report.d r.exact_proofs;
          (match r.mean_key_hd_pct with None -> "-" | Some h -> Report.f1 h);
          Report.f1 r.mean_queries;
          Report.f2 r.mean_elapsed_s;
          r.outcomes ])
    rows;
  t
