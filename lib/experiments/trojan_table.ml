(** S2: the Section-III Trojan scenario table — payload overheads and
    end-to-end attack outcomes for scenarios (a)–(e), against both the
    basic and the modified OraP schemes. *)

module Orap = Orap_core.Orap
module Threat = Orap_core.Threat
module Runner = Orap_runner.Runner

type row = {
  scenario : Threat.scenario;
  scheme : string;
  outcome : Threat.outcome;
}

let scenario_of_label label =
  List.find_opt
    (fun sc -> Threat.scenario_label sc = label)
    Threat.all_scenarios

let cell_id (scheme, sc) =
  Printf.sprintf "trojan|scheme=%s|scenario=%s" scheme
    (Threat.scenario_label sc)

let row_codec : row Runner.codec =
  {
    encode =
      (fun r ->
        Runner.fields
          [ Threat.scenario_label r.scenario; r.scheme;
            string_of_bool r.outcome.Threat.oracle_obtained;
            Runner.float_repr r.outcome.Threat.payload_nand2;
            string_of_bool r.outcome.Threat.detectable ]);
    decode =
      (fun s ->
        match Runner.unfields s with
        | [ label; scheme; obtained; payload; detectable ] -> (
          match scenario_of_label label with
          | None -> None
          | Some scenario -> (
            try
              Some
                {
                  scenario;
                  scheme;
                  outcome =
                    {
                      Threat.scenario;
                      oracle_obtained = bool_of_string obtained;
                      payload_nand2 = float_of_string payload;
                      detectable = bool_of_string detectable;
                    };
                }
            with _ -> None))
        | _ -> None);
  }

let run ?(options = Runner.default_options) (fx : Security.fixture) : row list
    =
  let cells =
    List.concat_map
      (fun scheme -> List.map (fun sc -> (scheme, sc)) Threat.all_scenarios)
      [ "basic"; "modified" ]
  in
  Runner.map_grid ~options ~codec:row_codec
    ~tag:(fun r -> if Threat.defeated r.outcome then "defeated" else "oracle-leaked")
    ~id:cell_id
    ~f:(fun ~seed:_ (scheme, sc) ->
      let design =
        match scheme with
        | "basic" -> fx.Security.basic
        | _ -> fx.Security.modified
      in
      { scenario = sc; scheme; outcome = Threat.run design sc })
    cells

let report (rows : row list) : Report.t =
  let t =
    Report.create ~title:"Section III Trojan scenarios: payload and outcome"
      ~header:
        [ "Scenario"; "Scheme"; "Oracle obtained"; "Payload (NAND2-eq)";
          "Side-channel detectable"; "Defeated" ]
      ~aligns:[ Report.L; Report.L; Report.L; Report.R; Report.L; Report.L ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [ Threat.scenario_label r.scenario; r.scheme;
          Report.b r.outcome.Threat.oracle_obtained;
          Report.f1 r.outcome.Threat.payload_nand2;
          Report.b r.outcome.Threat.detectable;
          Report.b (Threat.defeated r.outcome) ])
    rows;
  t

(** The paper's 128-bit reference point for scenario (a): "roughly 64 NAND2
    gates". *)
let paper_reference_payload_a ~key_size = 0.5 *. float_of_int key_size
