(** The resynthesis pipeline used by the paper's overhead measurements:
    [strash -> refactor -> rewrite] (ABC command sequence of Xu et al. [12]),
    followed by a balancing pass for the level metric.

    Area is the live AND-node count (gates without inverters); delay is the
    AND level of the deepest output. *)

module Telemetry = Orap_telemetry.Telemetry

type metrics = { ands : int; levels : int }

let metrics_of_aig aig = { ands = Aig.num_live_ands aig; levels = Aig.depth aig }

(* each rewriting pass is timed and reports the AND count it produced *)
let timed name f =
  Telemetry.span name
    ~exit_args:(fun aig -> [ ("ands", Telemetry.Int (Aig.num_live_ands aig)) ])
    f

(** [optimize netlist] returns the optimised AIG.  [effort] bounds the
    number of refactor/rewrite rounds. *)
let optimize ?(effort = 1) (nl : Orap_netlist.Netlist.t) : Aig.t =
  let aig = ref (Aig.of_netlist nl) in
  for _ = 1 to effort do
    (* refactor: large cuts; rewrite: small cuts everywhere *)
    aig := timed "synth.refactor" (fun () -> Refactor.run ~cut_size:10 ~min_cone:3 !aig);
    aig := timed "synth.rewrite" (fun () -> Refactor.run ~cut_size:4 ~min_cone:1 !aig)
  done;
  aig := timed "synth.balance" (fun () -> Balance.run !aig);
  !aig

(** Optimise and report the paper's two metrics. *)
let evaluate ?effort (nl : Orap_netlist.Netlist.t) : metrics =
  metrics_of_aig (optimize ?effort nl)

(** Overhead of [protected] over [original] in percent, after optimising
    both with the same script — exactly how Table I is computed. *)
type overhead = { area_pct : float; delay_pct : float }

let overhead ?effort ~original ~protected_ () : overhead =
  let mo = evaluate ?effort original in
  let mp = evaluate ?effort protected_ in
  let pct a b =
    if a = 0 then 0. else 100. *. float_of_int (b - a) /. float_of_int a
  in
  { area_pct = pct mo.ands mp.ands; delay_pct = pct mo.levels mp.levels }
