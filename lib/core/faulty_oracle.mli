(** Fault-injection middleware over {!Oracle.t}: composable wrappers that
    model the imperfect, protected or rate-limited oracles of the paper's
    threat model.  Each wrapper takes an oracle and returns an oracle, so
    faults stack and every attack runs against them unchanged.

    Mapping to the Section-III Trojan scenarios:
    - scenarios (c)/(e) — a Trojan that only works some of the time — are
      {!intermittent}: a fraction of queries answer from the locked circuit;
    - a Trojan with broken payload wiring is {!stuck_at} scan cells;
    - an unreliable probe/scan interface is {!bit_flip} noise;
    - rate-limited access to a rented or fielded chip is {!query_budget}.

    All randomness comes from a seeded {!Orap_sim.Prng}: a faulty oracle
    replays bit-identically for a given seed. *)

(** Raised by {!query_budget}-wrapped oracles once the budget is spent.
    Attacks converting this into a structured outcome is the point: no
    attack in [lib/attacks] lets it escape. *)
exception Refused of string

(** [bit_flip ~seed ~p inner]: with per-query probability [p] the response
    has one uniformly chosen bit flipped — seeded measurement noise.
    Raises [Invalid_argument] unless [p] is in [0,1]. *)
val bit_flip : ?seed:int -> p:float -> Oracle.t -> Oracle.t

(** [stuck_at ~cells inner] forces response position [i] to value [v] for
    every [(i, v)] in [cells] — a stuck-at scan cell on the unload path. *)
val stuck_at : cells:(int * bool) list -> Oracle.t -> Oracle.t

(** [intermittent ~seed ~rate ~locked inner] answers a [rate] fraction of
    queries from the [locked] oracle instead of [inner] — the intermittent
    lockdown of Trojan scenarios (c)/(e). *)
val intermittent : ?seed:int -> rate:float -> locked:Oracle.t -> Oracle.t -> Oracle.t

(** [query_budget ~limit inner] refuses (raises {!Refused}) after [limit]
    queries — rate-limited chip access. *)
val query_budget : limit:int -> Oracle.t -> Oracle.t

(** Latency accounting for the wrapped oracle's queries. *)
type meter = {
  mutable timed_queries : int;
  mutable total_s : float;  (** accumulated query time, seconds *)
  mutable max_s : float;  (** slowest single query *)
}

(** [with_latency ~cost_s inner] meters every query and adds a modelled
    fixed access cost [cost_s] (scan shifting a real chip is slow) to the
    accounting; returns the wrapped oracle and its meter.

    Note: {!Oracle.query} now feeds every call into the global
    [oracle.query_latency_s] metrics histogram, which subsumes this meter
    for observability purposes — the meter remains the tool for modelling
    an access *cost* and reading it back programmatically in experiments. *)
val with_latency : ?cost_s:float -> Oracle.t -> Oracle.t * meter

val mean_latency_s : meter -> float

(** [retry ~votes inner]: every query is answered by the per-bit majority
    of [votes] independent queries to [inner] — the repair combinator
    attacks opt into against {!bit_flip} noise.  [votes] must be odd;
    each vote consumes underlying queries (and budget). *)
val retry : ?votes:int -> Oracle.t -> Oracle.t
