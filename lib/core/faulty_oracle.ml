(** Fault-injection middleware over {!Oracle.t}.

    The paper's threat model is about oracles that are less than ideal: OraP
    itself makes every scan session answer with locked responses, and the
    Section-III Trojan scenarios (a)–(e) describe oracles that are only
    partially or intermittently compromised.  Real chip access is also
    noisy, rate-limited and slow.  Each wrapper below takes an oracle and
    returns an oracle, so any stack of faults composes and every attack in
    [lib/attacks] runs against it unchanged.

    All randomness is drawn from a seeded {!Orap_sim.Prng}, so a faulty
    oracle replays bit-identically for a given seed. *)

module Prng = Orap_sim.Prng

exception Refused of string

let wrap (inner : Oracle.t) ~tag q : Oracle.t =
  { Oracle.query = q; queries = 0; description = tag ^ " over " ^ inner.Oracle.description }

let bit_flip ?(seed = 2020) ~p (inner : Oracle.t) : Oracle.t =
  if p < 0.0 || p > 1.0 then invalid_arg "Faulty_oracle.bit_flip: p not in [0,1]";
  let rng = Prng.create seed in
  let q inputs =
    let y = Oracle.query inner inputs in
    if p > 0.0 && Array.length y > 0 && Prng.float rng < p then begin
      let y = Array.copy y in
      let j = Prng.int rng (Array.length y) in
      y.(j) <- not y.(j);
      y
    end
    else y
  in
  wrap inner ~tag:(Printf.sprintf "bit-flip(p=%.3f)" p) q

let stuck_at ~cells (inner : Oracle.t) : Oracle.t =
  List.iter
    (fun (i, _) ->
      if i < 0 then invalid_arg "Faulty_oracle.stuck_at: negative cell index")
    cells;
  let q inputs =
    let y = Array.copy (Oracle.query inner inputs) in
    List.iter
      (fun (i, v) ->
        if i >= Array.length y then
          invalid_arg
            (Printf.sprintf
               "Faulty_oracle.stuck_at: cell %d out of range (response width %d)"
               i (Array.length y));
        y.(i) <- v)
      cells;
    y
  in
  wrap inner ~tag:(Printf.sprintf "stuck-at(%d cells)" (List.length cells)) q

let intermittent ?(seed = 2021) ~rate ~(locked : Oracle.t) (inner : Oracle.t) :
    Oracle.t =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Faulty_oracle.intermittent: rate not in [0,1]";
  let rng = Prng.create seed in
  let q inputs =
    if Prng.float rng < rate then Oracle.query locked inputs
    else Oracle.query inner inputs
  in
  wrap inner ~tag:(Printf.sprintf "intermittent-lockdown(rate=%.2f)" rate) q

let query_budget ~limit (inner : Oracle.t) : Oracle.t =
  if limit < 0 then invalid_arg "Faulty_oracle.query_budget: negative limit";
  let used = ref 0 in
  let q inputs =
    if !used >= limit then
      raise
        (Refused
           (Printf.sprintf "query budget of %d exhausted (%s)" limit
              inner.Oracle.description));
    incr used;
    Oracle.query inner inputs
  in
  wrap inner ~tag:(Printf.sprintf "query-budget(%d)" limit) q

type meter = {
  mutable timed_queries : int;
  mutable total_s : float;
  mutable max_s : float;
}

let with_latency ?(cost_s = 0.0) (inner : Oracle.t) : Oracle.t * meter =
  let m = { timed_queries = 0; total_s = 0.0; max_s = 0.0 } in
  let q inputs =
    let t0 = Sys.time () in
    let y = Oracle.query inner inputs in
    let dt = Sys.time () -. t0 +. cost_s in
    m.timed_queries <- m.timed_queries + 1;
    m.total_s <- m.total_s +. dt;
    if dt > m.max_s then m.max_s <- dt;
    y
  in
  (wrap inner ~tag:"latency-metered" q, m)

let mean_latency_s (m : meter) : float =
  if m.timed_queries = 0 then 0.0
  else m.total_s /. float_of_int m.timed_queries

let retry ?(votes = 3) (inner : Oracle.t) : Oracle.t =
  if votes < 1 || votes mod 2 = 0 then
    invalid_arg "Faulty_oracle.retry: votes must be positive and odd";
  let q inputs =
    let first = Oracle.query inner inputs in
    if votes = 1 then first
    else begin
      let ones = Array.make (Array.length first) 0 in
      let tally y =
        Array.iteri (fun i b -> if b then ones.(i) <- ones.(i) + 1) y
      in
      tally first;
      for _ = 2 to votes do
        tally (Oracle.query inner inputs)
      done;
      Array.map (fun c -> 2 * c > votes) ones
    end
  in
  wrap inner ~tag:(Printf.sprintf "majority-retry(%d)" votes) q
