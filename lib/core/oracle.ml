(** Oracle interfaces — the attacker-side view of a functional chip.

    Every oracle answers combinational queries: given a full input vector of
    the locked core (external PIs ++ state-FF values), return the full
    output vector (external POs ++ next-state values).  Oracle-based attacks
    (SAT and friends) are written against this interface, so the same attack
    code runs against an idealised functional chip and against an
    OraP-protected chip reached through its scan chains. *)

module N = Orap_netlist.Netlist
module Locked = Orap_locking.Locked
module Telemetry = Orap_telemetry.Telemetry
module Metrics = Orap_telemetry.Metrics

type t = {
  query : bool array -> bool array;
  mutable queries : int;  (** number of oracle calls made so far *)
  description : string;
}

(* Per-query latency lands in one shared histogram; the trace gets one
   "oracle.query" span per call (also on failure, so refusals are visible
   in the timeline).  The disabled-telemetry path adds only the counter
   bump and a histogram observe. *)
let query t inputs =
  t.queries <- t.queries + 1;
  Metrics.incr (Metrics.counter "oracle.queries");
  let lat = Metrics.histogram "oracle.query_latency_s" in
  if Telemetry.enabled () then begin
    let t0_us = Telemetry.now_us () in
    let record () = Metrics.observe lat ((Telemetry.now_us () -. t0_us) *. 1e-6) in
    Telemetry.span "oracle.query" (fun () ->
        match t.query inputs with
        | y ->
          record ();
          y
        | exception e ->
          record ();
          raise e)
  end
  else begin
    let t0 = Unix.gettimeofday () in
    match t.query inputs with
    | y ->
      Metrics.observe lat (Unix.gettimeofday () -. t0);
      y
    | exception e ->
      Metrics.observe lat (Unix.gettimeofday () -. t0);
      raise e
  end

let num_queries t = t.queries

(* Every oracle validates the query width at its boundary so malformed
   attack code fails with a clear message instead of deep inside
   [Locked.eval]. *)
let check_width ~who ~expected inputs =
  let got = Array.length inputs in
  if got <> expected then
    invalid_arg
      (Printf.sprintf "%s: expected input width %d, got %d" who expected got)

(** Idealised oracle: direct evaluation of the locked circuit under its
    correct key.  This is what an *unprotected* design leaks through scan
    (and what attack papers assume). *)
let functional (locked : Locked.t) : t =
  let width = locked.Locked.num_regular_inputs in
  {
    query =
      (fun inputs ->
        check_width ~who:"Oracle.functional" ~expected:width inputs;
        Locked.eval locked ~key:locked.Locked.correct_key ~inputs);
    queries = 0;
    description = "functional oracle (unprotected scan access)";
  }

(** Oracle reached through an OraP-protected chip's scan interface: scan in
    the state part, apply the external inputs at the pins, capture, scan
    out.  The pulse generators clear the key register before the first
    shift, so the responses are those of the LOCKED circuit — unless a
    Trojan interferes. *)
let scan_chip (chip : Chip.t) : t =
  let d = chip.Chip.design in
  let n_ext = Orap.num_ext_inputs d in
  let n_ffs = Orap.num_ffs d in
  let q inputs =
    check_width ~who:"Oracle.scan_chip" ~expected:(n_ext + n_ffs) inputs;
    let ext = Array.sub inputs 0 n_ext in
    let state = Array.sub inputs n_ext n_ffs in
    let ext_outs, captured = Chip.scan_test chip ~state ~ext_inputs:ext in
    Array.append ext_outs captured
  in
  { query = q; queries = 0; description = "scan oracle (OraP chip)" }

(** Oracle built from a raw key guess — used to evaluate what an attack's
    recovered key is actually worth. *)
let with_key (locked : Locked.t) (key : bool array) : t =
  let width = locked.Locked.num_regular_inputs in
  {
    query =
      (fun inputs ->
        check_width ~who:"Oracle.with_key" ~expected:width inputs;
        Locked.eval locked ~key ~inputs);
    queries = 0;
    description = "keyed evaluation";
  }
