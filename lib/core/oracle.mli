(** Oracle interfaces — the attacker-side view of a functional chip.  All
    oracle-based attacks are written against this interface, so the same
    attack code runs against an idealised functional chip and against an
    OraP-protected chip reached through its scan chains. *)

type t = {
  query : bool array -> bool array;
  mutable queries : int;
  description : string;
}

(** Query the oracle with a full input vector of the locked core
    (external primary inputs followed by state-FF values); returns the full
    output vector (external outputs followed by next-state values).
    Increments the query counter, feeds the [oracle.queries] metrics
    counter and the [oracle.query_latency_s] histogram, and (when tracing
    is enabled) emits one ["oracle.query"] span per call — including calls
    that raise, so refusals stay visible in the timeline.  Every built-in
    oracle validates the query width at its boundary and raises
    [Invalid_argument] with a message naming the oracle, the expected and
    the actual width. *)
val query : t -> bool array -> bool array

val num_queries : t -> int

(** Idealised oracle: the locked circuit evaluated under its correct key —
    what an unprotected design leaks through its scan chains. *)
val functional : Orap_locking.Locked.t -> t

(** Oracle reached through an OraP chip's scan interface (scan in, capture,
    scan out).  The pulse generators clear the key register before the first
    shift, so responses come from the locked circuit — unless the chip
    carries a Trojan. *)
val scan_chip : Chip.t -> t

(** Evaluation oracle for an arbitrary key guess. *)
val with_key : Orap_locking.Locked.t -> bool array -> t
