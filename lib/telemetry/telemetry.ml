(** See telemetry.mli. *)

type value = Int of int | Float of float | String of string | Bool of bool

type phase = Complete | Instant | Counter

type event = {
  phase : phase;
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * value) list;
}

(* --- clock: gettimeofday relative to the trace epoch, clamped so the
   stream never goes backwards (NTP steps would otherwise corrupt span
   durations).  The clamp races benignly across domains: a stale [last]
   read can only under-clamp by the width of the race. --- *)

let epoch = Unix.gettimeofday ()

let last_us = Atomic.make 0.0

let now_us () =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  let l = Atomic.get last_us in
  if t >= l then begin
    Atomic.set last_us t;
    t
  end
  else l

let tid () = (Domain.self () :> int)

(* --- JSON rendering (Chrome trace_event object per event) --- *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
  | String s -> "\"" ^ escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let phase_letter = function Complete -> "X" | Instant -> "i" | Counter -> "C"

let event_to_json (e : event) : string =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"ph\":\"%s\",\"name\":\"%s\",\"ts\":%.3f"
       (phase_letter e.phase) (escape e.name) e.ts_us);
  if e.phase = Complete then
    Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" e.dur_us);
  Buffer.add_string b (Printf.sprintf ",\"pid\":1,\"tid\":%d" e.tid);
  (match e.args with
  | [] -> ()
  | args ->
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b ("\"" ^ escape k ^ "\":" ^ value_to_json v))
      args;
    Buffer.add_char b '}');
  Buffer.add_char b '}';
  Buffer.contents b

(* --- sinks --- *)

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

let null () =
  let n = Atomic.make 0 in
  { emit = (fun _ -> Atomic.incr n); close = (fun () -> ()) }

let memory () =
  let events = ref [] in
  let mutex = Mutex.create () in
  let emit e =
    Mutex.lock mutex;
    events := e :: !events;
    Mutex.unlock mutex
  in
  ({ emit; close = (fun () -> ()) }, fun () -> List.rev !events)

let jsonl path =
  let oc = open_out path in
  let mutex = Mutex.create () in
  let emit e =
    let line = event_to_json e in
    Mutex.lock mutex;
    output_string oc line;
    output_char oc '\n';
    Mutex.unlock mutex
  in
  let close () =
    Mutex.lock mutex;
    flush oc;
    close_out_noerr oc;
    Mutex.unlock mutex
  in
  { emit; close }

let chrome path =
  let oc = open_out path in
  let mutex = Mutex.create () in
  let first = ref true in
  output_char oc '[';
  let emit e =
    let line = event_to_json e in
    Mutex.lock mutex;
    if !first then first := false else output_string oc ",\n";
    output_string oc line;
    Mutex.unlock mutex
  in
  let close () =
    Mutex.lock mutex;
    output_string oc "]\n";
    flush oc;
    close_out_noerr oc;
    Mutex.unlock mutex
  in
  { emit; close }

(* --- global installation ---

   A plain ref, written only from the orchestrating domain (before workers
   spawn / after they join); workers only read it.  The disabled check is
   one load + one branch. *)

let current : sink option ref = ref None

let enabled () = Option.is_some !current

let shutdown () =
  match !current with
  | None -> ()
  | Some s ->
    current := None;
    s.close ()

let install sink =
  shutdown ();
  current := Some sink

let with_sink sink f =
  install sink;
  Fun.protect ~finally:shutdown f

(* --- emission --- *)

let emit e = match !current with None -> () | Some s -> s.emit e

let complete ?(args = []) ~name ~ts_us ~dur_us () =
  emit { phase = Complete; name; ts_us; dur_us; tid = tid (); args }

let instant ?(args = []) name =
  if enabled () then
    emit { phase = Instant; name; ts_us = now_us (); dur_us = 0.0; tid = tid (); args }

let counter_sample name v =
  if enabled () then
    emit
      {
        phase = Counter;
        name;
        ts_us = now_us ();
        dur_us = 0.0;
        tid = tid ();
        args = [ ("value", Float v) ];
      }

let span ?(args = []) ?exit_args name f =
  match !current with
  | None -> f ()
  | Some sink ->
    let t0 = now_us () in
    let finish extra =
      let t1 = now_us () in
      sink.emit
        {
          phase = Complete;
          name;
          ts_us = t0;
          dur_us = t1 -. t0;
          tid = tid ();
          args = args @ extra;
        }
    in
    (match f () with
    | v ->
      finish (match exit_args with None -> [] | Some g -> g v);
      v
    | exception e ->
      finish [ ("error", String (Printexc.to_string e)) ];
      raise e)
