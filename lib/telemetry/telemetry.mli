(** Zero-dependency tracing: named spans with wall-clock timestamps, event
    sinks, and Chrome [trace_event]-compatible output.

    The design centre is the disabled case: until a sink is installed every
    entry point is a branch on one [ref] and costs a few nanoseconds, so
    hot paths (solver loops, oracle queries, grid cells) stay instrumented
    permanently.  With a sink installed, each span is emitted as one
    Chrome "complete" event ([ph:"X"]) carrying its start timestamp and
    duration; nesting is recovered from containment, exactly as
    [about://tracing] and Perfetto render it.

    Timestamps come from [Unix.gettimeofday] relative to the trace epoch
    and are clamped to be non-decreasing per process (gettimeofday is the
    only wall clock the stdlib offers; the clamp protects traces from NTP
    steps).  All sinks serialise internally and are safe to use from
    multiple [Domain]s, e.g. inside [Runner.pool] workers. *)

(** Argument values attached to events ([args] in the Chrome format). *)
type value = Int of int | Float of float | String of string | Bool of bool

type phase =
  | Complete  (** a span: [ts_us] start + [dur_us] duration (Chrome "X") *)
  | Instant  (** a point event (Chrome "i") *)
  | Counter  (** a sampled counter track (Chrome "C") *)

type event = {
  phase : phase;
  name : string;
  ts_us : float;  (** microseconds since the trace epoch *)
  dur_us : float;  (** [Complete] only; 0 otherwise *)
  tid : int;  (** emitting domain id *)
  args : (string * value) list;
}

(** {1 Sinks} *)

type sink

(** Counts events, emits nothing — the no-op sink used by the overhead
    benchmark to price the instrumentation itself. *)
val null : unit -> sink

(** In-memory sink; the second component returns the events captured so
    far, in emission order. *)
val memory : unit -> sink * (unit -> event list)

(** One JSON object per line, each a Chrome trace_event object
    ([{"ph":"X","name":...,"ts":...,"dur":...,"pid":1,"tid":...,"args":{...}}]).
    The strict parser in {!Trace} round-trips every line; {!Trace.to_chrome}
    wraps such a file into a directly loadable Chrome trace. *)
val jsonl : string -> sink

(** Chrome trace_event JSON array ([\[event, event, ...\]]) written
    incrementally; loadable as-is in [about://tracing] or Perfetto once the
    sink is closed (and by Perfetto even when truncated). *)
val chrome : string -> sink

(** {1 Global installation} *)

(** Install [sink] as the process-wide event destination.  Installing over
    an existing sink closes the old one.  Install before spawning worker
    domains; the sink itself is domain-safe. *)
val install : sink -> unit

(** Flush and close the current sink and disable tracing. *)
val shutdown : unit -> unit

(** [true] iff a sink is installed.  Instrumentation sites use this to
    skip timestamping entirely when tracing is off. *)
val enabled : unit -> bool

(** [with_sink sink f] installs, runs [f], and shuts down (also on
    exceptions). *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** {1 Emission} *)

(** Microseconds since the trace epoch (non-decreasing). *)
val now_us : unit -> float

(** [span ?args ?exit_args name f] times [f] and emits one [Complete]
    event.  [exit_args] derives additional args from the result (e.g.
    solver-statistics deltas).  When disabled this is exactly [f ()].  If
    [f] raises, the span is emitted with an ["error"] arg and the
    exception re-raised. *)
val span :
  ?args:(string * value) list ->
  ?exit_args:('a -> (string * value) list) ->
  string ->
  (unit -> 'a) ->
  'a

(** Emit a [Complete] event from an explicit start time (callers that
    already timed the region). *)
val complete :
  ?args:(string * value) list -> name:string -> ts_us:float -> dur_us:float -> unit -> unit

val instant : ?args:(string * value) list -> string -> unit

(** Emit a Chrome counter sample (its own track in the viewer). *)
val counter_sample : string -> float -> unit

(** {1 Rendering} *)

(** The event as a single-line Chrome trace_event JSON object — the JSONL
    sink's line format. *)
val event_to_json : event -> string
