(** Strict reader for the {!Telemetry.jsonl} sink's event stream.

    The parser accepts exactly the line format {!Telemetry.event_to_json}
    emits — one Chrome trace_event object per line — and rejects anything
    else with a reason.  CI uses {!validate_file} to assert that a traced
    smoke run produced a well-formed stream; {!to_chrome} wraps a JSONL
    stream into a JSON array loadable directly in [about://tracing] or
    Perfetto. *)

type error = {
  line_no : int;  (** 1-based *)
  line : string;
  reason : string;
}

val pp_error : Format.formatter -> error -> unit

(** Parse one line.  [Error reason] if the line deviates from the emitted
    format in any way (unknown key, missing field, trailing bytes, bad
    escape, [dur] on a non-span, ...). *)
val parse_line : string -> (Telemetry.event, string) result

(** All events of a JSONL trace, in file order.  Blank lines are not
    tolerated: the sink never writes them. *)
val read_file : string -> (Telemetry.event list, error) result

(** Strictly parse every line; [Ok n] is the number of events. *)
val validate_file : string -> (int, error) result

(** Convert a JSONL trace to a Chrome trace_event JSON array file.
    Validates as it goes; on error the destination is still written but
    truncated at the offending line. *)
val to_chrome : src:string -> dst:string -> (int, error) result
