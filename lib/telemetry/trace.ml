(** See trace.mli. *)

type error = { line_no : int; line : string; reason : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d: %s (%S)" e.line_no e.reason e.line

(* Recursive-descent parser for the exact object shape event_to_json
   emits: one flat object whose values are strings, numbers, booleans,
   null, or (for "args" only) one nested object of scalars. *)

exception Bad of string

type json =
  | Jstring of string
  | Jnumber of float * bool (* value, had a fractional/exponent part *)
  | Jbool of bool
  | Jnull
  | Jobject of (string * json) list

let parse_json_line (line : string) : (string * json) list =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise (Bad "truncated") in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then raise (Bad (Printf.sprintf "expected %C" c))
    else advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then raise (Bad "truncated \\u escape");
          let hex = String.sub line !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c when c < 0x100 -> c
            | Some _ | None -> raise (Bad "bad \\u escape")
          in
          Buffer.add_char b (Char.chr code);
          pos := !pos + 4
        | _ -> raise (Bad "bad escape"));
        go ()
      | c when Char.code c < 0x20 -> raise (Bad "raw control char in string")
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let fractional = ref false in
    let continue_ = ref true in
    while !continue_ && !pos < n do
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' -> advance ()
      | '.' | 'e' | 'E' ->
        fractional := true;
        advance ()
      | _ -> continue_ := false
    done;
    if !pos = start then raise (Bad "expected number");
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> Jnumber (f, !fractional)
    | None -> raise (Bad "malformed number")
  in
  let rec parse_value ~depth =
    match peek () with
    | '"' -> Jstring (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4;
        Jbool true
      end
      else raise (Bad "bad literal")
    | 'f' ->
      if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5;
        Jbool false
      end
      else raise (Bad "bad literal")
    | 'n' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
        pos := !pos + 4;
        Jnull
      end
      else raise (Bad "bad literal")
    | '{' ->
      if depth > 0 then raise (Bad "object nested too deep")
      else Jobject (parse_object ~depth:(depth + 1))
    | _ -> parse_number ()
  and parse_object ~depth =
    expect '{';
    if peek () = '}' then begin
      advance ();
      []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        let k = parse_string () in
        expect ':';
        if List.mem_assoc k !fields then
          raise (Bad (Printf.sprintf "duplicate key %S" k));
        let v = parse_value ~depth in
        fields := (k, v) :: !fields;
        match peek () with
        | ',' -> advance (); members ()
        | '}' -> advance ()
        | _ -> raise (Bad "expected ',' or '}'")
      in
      members ();
      List.rev !fields
    end
  in
  let fields = parse_object ~depth:0 in
  if !pos <> n then raise (Bad "trailing bytes after object");
  fields

(* --- lift the generic object into a Telemetry.event, strictly --- *)

let event_of_fields (fields : (string * json) list) : Telemetry.event =
  let known =
    [ "ph"; "name"; "ts"; "dur"; "pid"; "tid"; "args" ]
  in
  List.iter
    (fun (k, _) ->
      if not (List.mem k known) then
        raise (Bad (Printf.sprintf "unknown key %S" k)))
    fields;
  let get k = List.assoc_opt k fields in
  let require k =
    match get k with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "missing key %S" k))
  in
  let phase =
    match require "ph" with
    | Jstring "X" -> Telemetry.Complete
    | Jstring "i" -> Telemetry.Instant
    | Jstring "C" -> Telemetry.Counter
    | Jstring s -> raise (Bad (Printf.sprintf "unknown phase %S" s))
    | _ -> raise (Bad "\"ph\" must be a string")
  in
  let name =
    match require "name" with
    | Jstring s -> s
    | _ -> raise (Bad "\"name\" must be a string")
  in
  let number k =
    match require k with
    | Jnumber (f, _) -> f
    | _ -> raise (Bad (Printf.sprintf "%S must be a number" k))
  in
  let ts_us = number "ts" in
  let dur_us =
    match (phase, get "dur") with
    | Telemetry.Complete, Some (Jnumber (f, _)) -> f
    | Telemetry.Complete, Some _ -> raise (Bad "\"dur\" must be a number")
    | Telemetry.Complete, None -> raise (Bad "span without \"dur\"")
    | _, Some _ -> raise (Bad "\"dur\" on a non-span event")
    | _, None -> 0.0
  in
  (match require "pid" with
  | Jnumber (1.0, false) -> ()
  | _ -> raise (Bad "\"pid\" must be 1"));
  let tid =
    match require "tid" with
    | Jnumber (f, false) when Float.is_integer f && f >= 0.0 ->
      int_of_float f
    | _ -> raise (Bad "\"tid\" must be a non-negative integer")
  in
  let args =
    match get "args" with
    | None -> []
    | Some (Jobject kvs) ->
      if kvs = [] then raise (Bad "empty \"args\" object is never emitted");
      List.map
        (fun (k, v) ->
          let value =
            match v with
            | Jstring s -> Telemetry.String s
            | Jbool b -> Telemetry.Bool b
            | Jnumber (f, true) -> Telemetry.Float f
            | Jnumber (f, false) ->
              if Float.is_integer f && Float.abs f <= 1e15 then
                Telemetry.Int (int_of_float f)
              else Telemetry.Float f
            | Jnull -> Telemetry.Float Float.nan
            | Jobject _ -> raise (Bad "nested object inside \"args\"")
          in
          (k, value))
        kvs
    | Some _ -> raise (Bad "\"args\" must be an object")
  in
  if ts_us < 0.0 then raise (Bad "negative timestamp");
  if dur_us < 0.0 then raise (Bad "negative duration");
  { Telemetry.phase; name; ts_us; dur_us; tid; args }

let parse_line line =
  match event_of_fields (parse_json_line line) with
  | e -> Ok e
  | exception Bad reason -> Error reason

(* --- files --- *)

let fold_file path f acc =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let acc = ref acc and line_no = ref 0 and stop = ref None in
      (try
         while !stop = None do
           let line = input_line ic in
           incr line_no;
           match f !acc ~line_no:!line_no ~line with
           | Ok a -> acc := a
           | Error e -> stop := Some e
         done
       with End_of_file -> ());
      match !stop with Some e -> Error e | None -> Ok !acc)

let read_file path =
  Result.map List.rev
    (fold_file path
       (fun acc ~line_no ~line ->
         match parse_line line with
         | Ok e -> Ok (e :: acc)
         | Error reason -> Error { line_no; line; reason })
       [])

let validate_file path =
  fold_file path
    (fun n ~line_no ~line ->
      match parse_line line with
      | Ok _ -> Ok (n + 1)
      | Error reason -> Error { line_no; line; reason })
    0

let to_chrome ~src ~dst =
  let oc = open_out dst in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_char oc '[';
      let r =
        fold_file src
          (fun n ~line_no ~line ->
            match parse_line line with
            | Ok _ ->
              if n > 0 then output_string oc ",\n";
              output_string oc line;
              Ok (n + 1)
            | Error reason -> Error { line_no; line; reason })
          0
      in
      output_string oc "]\n";
      r)
