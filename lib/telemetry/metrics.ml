(** See metrics.mli. *)

type counter = { c_name : string; cell : int Atomic.t }

type gauge = { g_name : string; mutable g : float; g_mutex : Mutex.t }

(* Log-scaled buckets: observation [v] lands in the bucket whose inclusive
   upper bound is the smallest 2^(i - offset) >= v.  With 64 buckets and
   offset 32 the instrument spans 2^-32 s (~0.2 ns) to 2^31 s in one
   allocation-free array. *)
let num_buckets = 64

let bucket_offset = 32

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
  h_mutex : Mutex.t;
}

let bucket_of v =
  if v <= 0.0 then 0
  else begin
    let _, e = Float.frexp v in
    (* frexp: v = m * 2^e with m in [0.5, 1) — so 2^(e-1) <= v < 2^e,
       hence 2^e is the least power-of-two upper bound (2^(e-1) when v is
       an exact power of two, but the coarser bound keeps it simple) *)
    min (num_buckets - 1) (max 0 (e + bucket_offset))
  end

let bucket_upper i = Float.ldexp 1.0 (i - bucket_offset)

(* --- registry --- *)

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let intern name make cast kind =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> (
        match cast i with
        | Some x -> x
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics.%s: %S is registered as another kind" kind
               name))
      | None ->
        let x = make () in
        Hashtbl.replace registry name (match x with i, _ -> i);
        snd x)

let counter name =
  intern name
    (fun () ->
      let c = { c_name = name; cell = Atomic.make 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)
    "counter"

let gauge name =
  intern name
    (fun () ->
      let g = { g_name = name; g = 0.0; g_mutex = Mutex.create () } in
      (G g, g))
    (function G g -> Some g | _ -> None)
    "gauge"

let histogram name =
  intern name
    (fun () ->
      let h =
        {
          h_name = name;
          buckets = Array.make num_buckets 0;
          h_count = 0;
          h_sum = 0.0;
          h_max = 0.0;
          h_mutex = Mutex.create ();
        }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)
    "histogram"

(* --- operations --- *)

let incr c = Atomic.incr c.cell

let add c n = ignore (Atomic.fetch_and_add c.cell n)

let value c = Atomic.get c.cell

let set g v =
  Mutex.lock g.g_mutex;
  g.g <- v;
  Mutex.unlock g.g_mutex

let gauge_value g = g.g

let observe h v =
  let b = bucket_of v in
  Mutex.lock h.h_mutex;
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v > h.h_max then h.h_max <- v;
  Mutex.unlock h.h_mutex

type histogram_snapshot = {
  count : int;
  sum : float;
  max : float;
  buckets : (float * int) list;
}

let histogram_snapshot h =
  Mutex.lock h.h_mutex;
  let buckets = ref [] in
  for i = num_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (bucket_upper i, h.buckets.(i)) :: !buckets
  done;
  let s = { count = h.h_count; sum = h.h_sum; max = h.h_max; buckets = !buckets } in
  Mutex.unlock h.h_mutex;
  s

let mean h =
  let s = histogram_snapshot h in
  if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

let quantile h q =
  let s = histogram_snapshot h in
  if s.count = 0 then 0.0
  else begin
    let rank =
      int_of_float (Float.round (q *. float_of_int (s.count - 1))) + 1
    in
    let rec walk seen = function
      | [] -> s.max
      | (ub, n) :: rest -> if seen + n >= rank then ub else walk (seen + n) rest
    in
    walk 0 s.buckets
  end

(* --- snapshot --- *)

let reset () = locked (fun () -> Hashtbl.reset registry)

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let snapshot_json () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  locked (fun () ->
      Hashtbl.iter
        (fun name -> function
          | C c -> counters := (name, value c) :: !counters
          | G g -> gauges := (name, g.g) :: !gauges
          | H h -> histograms := (name, histogram_snapshot h) :: !histograms)
        registry);
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let b = Buffer.create 512 in
  let key k = "\"" ^ k ^ "\":" in
  Buffer.add_string b "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (key name ^ string_of_int v))
    (sorted !counters);
  Buffer.add_string b "},\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (key name ^ json_float v))
    (sorted !gauges);
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i (name, (s : histogram_snapshot)) ->
      if i > 0 then Buffer.add_char b ',';
      let h =
        match
          locked (fun () -> Hashtbl.find_opt registry name)
        with
        | Some (H h) -> h
        | _ -> assert false
      in
      Buffer.add_string b (key name);
      Buffer.add_string b
        (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"max\":%s,\"mean\":%s,"
           s.count (json_float s.sum) (json_float s.max)
           (json_float (if s.count = 0 then 0.0 else s.sum /. float_of_int s.count)));
      Buffer.add_string b
        (Printf.sprintf "\"p50\":%s,\"p99\":%s,\"buckets\":["
           (json_float (quantile h 0.5))
           (json_float (quantile h 0.99)));
      List.iteri
        (fun j (ub, n) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "[%s,%d]" (json_float ub) n))
        s.buckets;
      Buffer.add_string b "]}")
    (sorted !histograms);
  Buffer.add_string b "}}";
  Buffer.contents b

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (snapshot_json ());
      output_char oc '\n')
