(** Typed metrics over a process-wide, thread-safe registry.

    Three instrument kinds:
    - {b counters}: monotonically increasing integers ([Atomic]-backed, so
      workers on different [Domain]s increment without locking);
    - {b gauges}: last-write-wins floats;
    - {b histograms}: power-of-two log-scaled buckets, built for latencies
      spanning nanoseconds to minutes in one instrument.

    Instruments are interned by name: [counter "x"] returns the same cell
    everywhere, so instrumentation sites need no shared setup.  The whole
    registry snapshots to JSON for the [--metrics FILE] flag and the
    [BENCH_*.json] summary blocks. *)

type counter
type gauge
type histogram

(** Get or create the named instrument.  A name registered as one kind
    raises [Invalid_argument] when requested as another. *)
val counter : string -> counter

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Record one observation (histograms are unit-agnostic; by convention
    latency instruments carry a [_s] suffix and take seconds). *)
val observe : histogram -> float -> unit

type histogram_snapshot = {
  count : int;
  sum : float;
  max : float;
  buckets : (float * int) list;
      (** (inclusive upper bound, count) for each non-empty bucket,
          ascending *)
}

val histogram_snapshot : histogram -> histogram_snapshot

(** Mean of all observations (0 when empty). *)
val mean : histogram -> float

(** Approximate quantile ([q] in [0,1]) from the log-scaled buckets: the
    upper bound of the bucket containing the q-th observation. *)
val quantile : histogram -> float -> float

(** {1 Registry} *)

(** Remove every instrument (tests and benchmarks isolate themselves with
    this). *)
val reset : unit -> unit

(** The whole registry as a JSON object:
    [{"counters":{...},"gauges":{...},"histograms":{name:{"count":..,"sum":..,
    "max":..,"mean":..,"p50":..,"p99":..,"buckets":[[le,n],...]},...}}].
    Keys are sorted, so equal registries render byte-identically. *)
val snapshot_json : unit -> string

(** Write {!snapshot_json} (plus a trailing newline) to [path]. *)
val write_json : string -> unit
